"""Set reconciliation with IBLT difference digests (Eppstein et al. style).

Two parties hold sets ``A`` and ``B`` that differ in only ``d`` elements.
Each builds an IBLT of size ``O(d)`` over its own set with a shared hash
family; one party ships its table to the other, who computes the cell-wise
difference and lists it.  Keys recovered with positive sign are in ``A\\B``,
keys recovered with negative sign are in ``B\\A``.  The listing step is the
signed peeling process, so everything the paper proves about parallel peeling
rounds applies to reconciliation latency as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.iblt.iblt import IBLT
from repro.utils.rng import SeedLike
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "ReconciliationResult",
    "SetReconciler",
    "StreamingReconciliationResult",
    "StreamingSetReconciler",
    "random_set_pair",
]


def random_set_pair(
    common: int,
    only_a: int,
    only_b: int,
    *,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate two overlapping key sets with the requested difference sizes.

    Returns
    -------
    (a, b):
        Arrays of distinct uint64 keys with ``|a ∩ b| = common``,
        ``|a \\ b| = only_a`` and ``|b \\ a| = only_b``.
    """
    from repro.apps.sparse_recovery import random_distinct_keys

    common = check_nonnegative_int(common, "common")
    only_a = check_nonnegative_int(only_a, "only_a")
    only_b = check_nonnegative_int(only_b, "only_b")
    keys = random_distinct_keys(common + only_a + only_b, seed)
    shared = keys[:common]
    a_only = keys[common: common + only_a]
    b_only = keys[common + only_a:]
    return np.concatenate([shared, a_only]), np.concatenate([shared, b_only])


@dataclass(frozen=True)
class ReconciliationResult:
    """Outcome of a set-reconciliation round trip.

    Attributes
    ----------
    a_minus_b, b_minus_a:
        Recovered difference sets.
    success:
        True when both recovered differences match the ground truth exactly
        (or, when no ground truth was supplied, when the difference digest
        decoded completely).
    rounds, subrounds:
        Decoder rounds (latency proxy).
    bytes_exchanged:
        Size of the transmitted digest in bytes (3 fields × 8 bytes × cells),
        the communication cost reconciliation is designed to minimize.
    """

    a_minus_b: np.ndarray
    b_minus_a: np.ndarray
    success: bool
    rounds: int
    subrounds: int
    bytes_exchanged: int


class SetReconciler:
    """Reconcile two key sets through IBLT difference digests.

    Parameters
    ----------
    num_cells:
        Digest size; must comfortably exceed the expected difference ``d``
        divided by the peeling threshold (≈ ``1.3 d`` for r=3, k=2).
    r:
        Hash functions per key.
    seed:
        Shared hash-family seed (both parties must agree on it).
    """

    def __init__(self, num_cells: int, r: int = 3, *, seed: int = 0) -> None:
        self.num_cells = check_positive_int(num_cells, "num_cells")
        self.r = check_positive_int(r, "r")
        self.seed = int(seed)

    def digest(self, keys: Sequence[int] | np.ndarray) -> IBLT:
        """Build this party's IBLT digest of ``keys``."""
        table = IBLT(self.num_cells, self.r, layout="subtables", seed=self.seed)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size:
            table.insert(arr)
        return table

    def reconcile(
        self,
        set_a: Sequence[int] | np.ndarray,
        set_b: Sequence[int] | np.ndarray,
        *,
        decoder: str = "parallel",
    ) -> ReconciliationResult:
        """Full round trip: digest both sets, subtract, decode, verify.

        ``decoder`` is any registered decoder name (see
        :func:`repro.iblt.available_decoders`); the registry also resolves
        the historical alias ``"parallel"`` (→ ``"subtable"``).  The
        ground-truth difference is computed locally (we hold both sets in
        this simulation) purely to grade the result.
        """
        a = np.asarray(set_a, dtype=np.uint64)
        b = np.asarray(set_b, dtype=np.uint64)
        difference = self.digest(a).subtract(self.digest(b))
        outcome = difference.decode(decoder=decoder)
        return self._grade(outcome, a, b)

    def reconcile_many(
        self,
        pairs: Sequence[Tuple[Sequence[int] | np.ndarray, Sequence[int] | np.ndarray]],
        *,
        decoder: str = "batched",
    ) -> List[ReconciliationResult]:
        """Reconcile many ``(set_a, set_b)`` pairs, in input order.

        Every pair's difference digest is built with this reconciler's
        shared hash family, so with the default ``decoder="batched"`` all
        digests are listed in one lockstep pass
        (:func:`repro.iblt.decode_many`) — the serving shape where one host
        reconciles against a fleet of peers at once.

        Note the default *schedule* differs from :meth:`reconcile`: the
        batched decoder runs the flat schedule, so its ``rounds`` /
        ``subrounds`` compare with ``decoder="flat"``, not with the
        single-pair default (``"parallel"`` → subtable, whose rounds count
        differently).  Recovered sets and ``success`` are identical across
        decoders; pass an explicit ``decoder=`` to match round statistics
        between the two entry points.
        """
        key_pairs = [
            (np.asarray(a, dtype=np.uint64), np.asarray(b, dtype=np.uint64))
            for a, b in pairs
        ]
        digests = [self.digest(a).subtract(self.digest(b)) for a, b in key_pairs]
        outcomes = IBLT.decode_many(digests, decoder=decoder)
        return [
            self._grade(outcome, a, b)
            for outcome, (a, b) in zip(outcomes, key_pairs)
        ]

    # ------------------------------------------------------------------ #
    # the wire path: reconciliation through the decode service
    # ------------------------------------------------------------------ #
    def digest_payload(self, keys: Sequence[int] | np.ndarray) -> bytes:
        """Serialize this party's digest of ``keys`` — the bytes the peer ships."""
        return self.digest(keys).to_bytes()

    async def reconcile_via_service(
        self,
        local_keys: Sequence[int] | np.ndarray,
        peer_digest: bytes,
        *,
        client,
    ) -> ReconciliationResult:
        """Reconcile against a peer's serialized digest via the decode service.

        The real deployment shape: the peer ships
        :meth:`digest_payload` bytes across the reconciliation link, we
        deserialize, subtract our own digest and hand the *difference
        table* to a :class:`repro.serve.client.DecodeClient` — where it is
        coalesced with whatever other digests are in flight and listed in
        one fused batch.  Keys recovered with positive sign are ours-only
        (``a_minus_b``), negative sign the peer's (``b_minus_a``).

        Unlike :meth:`reconcile`, no ground truth exists here (we never see
        the peer's set), so ``success`` reports only that the difference
        digest decoded completely.  ``bytes_exchanged`` counts the peer's
        digest payload — the reconciliation link's cost, not the local
        service round trip.
        """
        peer_table = IBLT.from_bytes(peer_digest)
        if (
            peer_table.num_cells != self.num_cells
            or peer_table.r != self.r
            or peer_table.hasher.seed != self.seed
        ):
            raise ValueError(
                "peer digest does not match this reconciler's hash family: got "
                f"(num_cells={peer_table.num_cells}, r={peer_table.r}, "
                f"seed={peer_table.hasher.seed}), expected (num_cells={self.num_cells}, "
                f"r={self.r}, seed={self.seed})"
            )
        difference = self.digest(local_keys).subtract(peer_table)
        outcome = await client.decode(difference, signed=True)
        return ReconciliationResult(
            a_minus_b=outcome.recovered,
            b_minus_a=outcome.removed,
            success=outcome.success,
            rounds=outcome.rounds,
            subrounds=outcome.rounds,
            bytes_exchanged=len(peer_digest),
        )

    def streaming(
        self,
        local_keys: Sequence[int] | np.ndarray,
        remote_digest: "IBLT | bytes",
        *,
        decoder: str = "serial",
        kernel=None,
    ) -> "StreamingSetReconciler":
        """Open a streaming reconciliation against a peer's (fixed) digest.

        The returned :class:`StreamingSetReconciler` consumes a live
        insert/delete stream on the *local* set and re-reconciles at each
        ``checkpoint()`` via incremental decode — only the churn is
        re-peeled, not the whole difference digest.
        """
        return StreamingSetReconciler(
            self,
            local_keys,
            remote_digest,
            decoder=decoder,
            kernel=kernel,
        )

    def _grade(self, outcome, a: np.ndarray, b: np.ndarray) -> ReconciliationResult:
        # The ground-truth difference is computed locally (we hold both
        # sets in this simulation) purely to grade the result.
        recovered_pos, recovered_neg = outcome.recovered, outcome.removed
        truth_a_minus_b: Set[int] = set(map(int, a)) - set(map(int, b))
        truth_b_minus_a: Set[int] = set(map(int, b)) - set(map(int, a))
        got_a_minus_b = set(map(int, recovered_pos))
        got_b_minus_a = set(map(int, recovered_neg))
        success = (
            outcome.success
            and got_a_minus_b == truth_a_minus_b
            and got_b_minus_a == truth_b_minus_a
        )
        return ReconciliationResult(
            a_minus_b=recovered_pos,
            b_minus_a=recovered_neg,
            success=success,
            rounds=outcome.rounds,
            subrounds=outcome.subrounds,
            bytes_exchanged=3 * 8 * self.num_cells,
        )


@dataclass(frozen=True)
class StreamingReconciliationResult:
    """Outcome of one :meth:`StreamingSetReconciler.checkpoint`.

    ``a_minus_b`` / ``b_minus_a`` are the *current* difference sets (local
    minus remote and vice versa), canonical (ascending) like every
    incremental decode result.  ``resumed_from_round`` /
    ``rounds_incremental`` expose the incremental-decode accounting: after
    the bootstrap checkpoint, ``rounds_incremental`` scales with the
    mutation batch, not with the digest size.
    """

    a_minus_b: np.ndarray
    b_minus_a: np.ndarray
    success: bool
    rounds: int
    resumed_from_round: int
    rounds_incremental: int
    bytes_exchanged: int


class StreamingSetReconciler:
    """Reconcile a *live* local set against a fixed peer digest, incrementally.

    The streaming deployment shape: the peer shipped its digest once; the
    local set keeps mutating.  Because the difference digest is linear
    (``diff = digest(local) − digest(remote)``), every local insert/delete
    applies directly to the resident difference table, and each
    :meth:`checkpoint` re-lists it via ``decode(incremental=True)`` — so a
    checkpoint after a small mutation batch costs rounds proportional to
    that batch, while remaining bit-identical to re-reconciling from
    scratch (the streaming tests and the CI console smoke pin this).

    Parameters
    ----------
    reconciler:
        The shared-hash-family :class:`SetReconciler` (geometry + seed).
    local_keys:
        The local set's initial contents.
    remote_digest:
        The peer's digest — an :class:`~repro.iblt.iblt.IBLT` or its
        :meth:`~repro.iblt.iblt.IBLT.to_bytes` payload.
    decoder:
        Decoder for the bootstrap decode (checkpoints after the first use
        the shared incremental re-peel regardless).
    kernel:
        Optional kernel backend forwarded to the decoder and the
        incremental re-peel.
    """

    def __init__(
        self,
        reconciler: SetReconciler,
        local_keys: Sequence[int] | np.ndarray,
        remote_digest: "IBLT | bytes",
        *,
        decoder: str = "serial",
        kernel=None,
    ) -> None:
        if isinstance(remote_digest, (bytes, bytearray, memoryview)):
            remote_digest = IBLT.from_bytes(bytes(remote_digest))
        if (
            remote_digest.num_cells != reconciler.num_cells
            or remote_digest.r != reconciler.r
            or remote_digest.hasher.seed != reconciler.seed
        ):
            raise ValueError(
                "remote digest does not match this reconciler's hash family: got "
                f"(num_cells={remote_digest.num_cells}, r={remote_digest.r}, "
                f"seed={remote_digest.hasher.seed}), expected "
                f"(num_cells={reconciler.num_cells}, r={reconciler.r}, "
                f"seed={reconciler.seed})"
            )
        self.reconciler = reconciler
        self.decoder = decoder
        self._decode_options = {} if kernel is None else {"kernel": kernel}
        self.diff = reconciler.digest(local_keys).subtract(remote_digest)
        self.mutations_applied = 0

    def apply(
        self,
        inserts: Sequence[int] | np.ndarray = (),
        deletes: Sequence[int] | np.ndarray = (),
    ) -> None:
        """Apply one local mutation batch (keys added / removed from the set).

        Deletes of keys the local set never held are legal — they show up
        with negative sign, exactly as a from-scratch digest of the mutated
        set would encode them.
        """
        inserts = np.asarray(inserts, dtype=np.uint64)
        deletes = np.asarray(deletes, dtype=np.uint64)
        if inserts.size:
            self.diff.insert(inserts)
        if deletes.size:
            self.diff.delete(deletes)
        self.mutations_applied += int(inserts.size + deletes.size)

    def checkpoint(self) -> StreamingReconciliationResult:
        """List the current difference; incremental after the first call."""
        outcome = self.diff.decode(
            incremental=True,
            signed=True,
            decoder=self.decoder,
            **self._decode_options,
        )
        return StreamingReconciliationResult(
            a_minus_b=outcome.recovered,
            b_minus_a=outcome.removed,
            success=outcome.success,
            rounds=outcome.rounds,
            resumed_from_round=outcome.resumed_from_round,
            rounds_incremental=outcome.rounds_incremental,
            bytes_exchanged=3 * 8 * self.reconciler.num_cells,
        )
