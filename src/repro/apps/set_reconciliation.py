"""Set reconciliation with IBLT difference digests (Eppstein et al. style).

Two parties hold sets ``A`` and ``B`` that differ in only ``d`` elements.
Each builds an IBLT of size ``O(d)`` over its own set with a shared hash
family; one party ships its table to the other, who computes the cell-wise
difference and lists it.  Keys recovered with positive sign are in ``A\\B``,
keys recovered with negative sign are in ``B\\A``.  The listing step is the
signed peeling process, so everything the paper proves about parallel peeling
rounds applies to reconciliation latency as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.iblt.iblt import IBLT
from repro.utils.rng import SeedLike
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = ["ReconciliationResult", "SetReconciler", "random_set_pair"]


def random_set_pair(
    common: int,
    only_a: int,
    only_b: int,
    *,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate two overlapping key sets with the requested difference sizes.

    Returns
    -------
    (a, b):
        Arrays of distinct uint64 keys with ``|a ∩ b| = common``,
        ``|a \\ b| = only_a`` and ``|b \\ a| = only_b``.
    """
    from repro.apps.sparse_recovery import random_distinct_keys

    common = check_nonnegative_int(common, "common")
    only_a = check_nonnegative_int(only_a, "only_a")
    only_b = check_nonnegative_int(only_b, "only_b")
    keys = random_distinct_keys(common + only_a + only_b, seed)
    shared = keys[:common]
    a_only = keys[common: common + only_a]
    b_only = keys[common + only_a:]
    return np.concatenate([shared, a_only]), np.concatenate([shared, b_only])


@dataclass(frozen=True)
class ReconciliationResult:
    """Outcome of a set-reconciliation round trip.

    Attributes
    ----------
    a_minus_b, b_minus_a:
        Recovered difference sets.
    success:
        True when both recovered differences match the ground truth exactly
        (or, when no ground truth was supplied, when the difference digest
        decoded completely).
    rounds, subrounds:
        Decoder rounds (latency proxy).
    bytes_exchanged:
        Size of the transmitted digest in bytes (3 fields × 8 bytes × cells),
        the communication cost reconciliation is designed to minimize.
    """

    a_minus_b: np.ndarray
    b_minus_a: np.ndarray
    success: bool
    rounds: int
    subrounds: int
    bytes_exchanged: int


class SetReconciler:
    """Reconcile two key sets through IBLT difference digests.

    Parameters
    ----------
    num_cells:
        Digest size; must comfortably exceed the expected difference ``d``
        divided by the peeling threshold (≈ ``1.3 d`` for r=3, k=2).
    r:
        Hash functions per key.
    seed:
        Shared hash-family seed (both parties must agree on it).
    """

    def __init__(self, num_cells: int, r: int = 3, *, seed: int = 0) -> None:
        self.num_cells = check_positive_int(num_cells, "num_cells")
        self.r = check_positive_int(r, "r")
        self.seed = int(seed)

    def digest(self, keys: Sequence[int] | np.ndarray) -> IBLT:
        """Build this party's IBLT digest of ``keys``."""
        table = IBLT(self.num_cells, self.r, layout="subtables", seed=self.seed)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size:
            table.insert(arr)
        return table

    def reconcile(
        self,
        set_a: Sequence[int] | np.ndarray,
        set_b: Sequence[int] | np.ndarray,
        *,
        decoder: str = "parallel",
    ) -> ReconciliationResult:
        """Full round trip: digest both sets, subtract, decode, verify.

        ``decoder`` is any registered decoder name (see
        :func:`repro.iblt.available_decoders`); the registry also resolves
        the historical alias ``"parallel"`` (→ ``"subtable"``).  The
        ground-truth difference is computed locally (we hold both sets in
        this simulation) purely to grade the result.
        """
        a = np.asarray(set_a, dtype=np.uint64)
        b = np.asarray(set_b, dtype=np.uint64)
        difference = self.digest(a).subtract(self.digest(b))
        outcome = difference.decode(decoder=decoder)
        return self._grade(outcome, a, b)

    def reconcile_many(
        self,
        pairs: Sequence[Tuple[Sequence[int] | np.ndarray, Sequence[int] | np.ndarray]],
        *,
        decoder: str = "batched",
    ) -> List[ReconciliationResult]:
        """Reconcile many ``(set_a, set_b)`` pairs, in input order.

        Every pair's difference digest is built with this reconciler's
        shared hash family, so with the default ``decoder="batched"`` all
        digests are listed in one lockstep pass
        (:func:`repro.iblt.decode_many`) — the serving shape where one host
        reconciles against a fleet of peers at once.

        Note the default *schedule* differs from :meth:`reconcile`: the
        batched decoder runs the flat schedule, so its ``rounds`` /
        ``subrounds`` compare with ``decoder="flat"``, not with the
        single-pair default (``"parallel"`` → subtable, whose rounds count
        differently).  Recovered sets and ``success`` are identical across
        decoders; pass an explicit ``decoder=`` to match round statistics
        between the two entry points.
        """
        key_pairs = [
            (np.asarray(a, dtype=np.uint64), np.asarray(b, dtype=np.uint64))
            for a, b in pairs
        ]
        digests = [self.digest(a).subtract(self.digest(b)) for a, b in key_pairs]
        outcomes = IBLT.decode_many(digests, decoder=decoder)
        return [
            self._grade(outcome, a, b)
            for outcome, (a, b) in zip(outcomes, key_pairs)
        ]

    # ------------------------------------------------------------------ #
    # the wire path: reconciliation through the decode service
    # ------------------------------------------------------------------ #
    def digest_payload(self, keys: Sequence[int] | np.ndarray) -> bytes:
        """Serialize this party's digest of ``keys`` — the bytes the peer ships."""
        return self.digest(keys).to_bytes()

    async def reconcile_via_service(
        self,
        local_keys: Sequence[int] | np.ndarray,
        peer_digest: bytes,
        *,
        client,
    ) -> ReconciliationResult:
        """Reconcile against a peer's serialized digest via the decode service.

        The real deployment shape: the peer ships
        :meth:`digest_payload` bytes across the reconciliation link, we
        deserialize, subtract our own digest and hand the *difference
        table* to a :class:`repro.serve.client.DecodeClient` — where it is
        coalesced with whatever other digests are in flight and listed in
        one fused batch.  Keys recovered with positive sign are ours-only
        (``a_minus_b``), negative sign the peer's (``b_minus_a``).

        Unlike :meth:`reconcile`, no ground truth exists here (we never see
        the peer's set), so ``success`` reports only that the difference
        digest decoded completely.  ``bytes_exchanged`` counts the peer's
        digest payload — the reconciliation link's cost, not the local
        service round trip.
        """
        peer_table = IBLT.from_bytes(peer_digest)
        if (
            peer_table.num_cells != self.num_cells
            or peer_table.r != self.r
            or peer_table.hasher.seed != self.seed
        ):
            raise ValueError(
                "peer digest does not match this reconciler's hash family: got "
                f"(num_cells={peer_table.num_cells}, r={peer_table.r}, "
                f"seed={peer_table.hasher.seed}), expected (num_cells={self.num_cells}, "
                f"r={self.r}, seed={self.seed})"
            )
        difference = self.digest(local_keys).subtract(peer_table)
        outcome = await client.decode(difference, signed=True)
        return ReconciliationResult(
            a_minus_b=outcome.recovered,
            b_minus_a=outcome.removed,
            success=outcome.success,
            rounds=outcome.rounds,
            subrounds=outcome.rounds,
            bytes_exchanged=len(peer_digest),
        )

    def _grade(self, outcome, a: np.ndarray, b: np.ndarray) -> ReconciliationResult:
        # The ground-truth difference is computed locally (we hold both
        # sets in this simulation) purely to grade the result.
        recovered_pos, recovered_neg = outcome.recovered, outcome.removed
        truth_a_minus_b: Set[int] = set(map(int, a)) - set(map(int, b))
        truth_b_minus_a: Set[int] = set(map(int, b)) - set(map(int, a))
        got_a_minus_b = set(map(int, recovered_pos))
        got_b_minus_a = set(map(int, recovered_neg))
        success = (
            outcome.success
            and got_a_minus_b == truth_a_minus_b
            and got_b_minus_a == truth_b_minus_a
        )
        return ReconciliationResult(
            a_minus_b=recovered_pos,
            b_minus_a=recovered_neg,
            success=success,
            rounds=outcome.rounds,
            subrounds=outcome.subrounds,
            bytes_exchanged=3 * 8 * self.num_cells,
        )
