"""A peeling-based erasure code (the coding application sketched in Section 6).

Each of the ``M`` message symbols chooses ``r`` of the ``m`` encoded symbols
uniformly at random and is XORed into them, exactly as the paper describes:
*"vertices correspond to encoded symbols, edges correspond to unrecovered
original message symbols, and a vertex can recover a message symbol when its
degree is 1."*  The receiver obtains a subset of the encoded symbols (the rest
are erased) and decodes by peeling: every surviving encoded symbol whose
residual degree is 1 reveals a message symbol, which is then XORed out of its
other encoded symbols.  Decoding succeeds iff the 2-core of the residual
hypergraph (restricted to the received vertices) is empty, so the threshold
``c*_{2,r}`` governs the tolerable erasure rate.

The decoder comes in serial (worklist) and round-synchronous parallel
flavours; the parallel flavour exposes round counts so the ``O(log log n)``
behaviour below threshold is observable here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Tuple

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["EncodedBlock", "DecodeOutcome", "PeelingErasureCode"]


@dataclass(frozen=True)
class EncodedBlock:
    """The output of :meth:`PeelingErasureCode.encode`.

    Attributes
    ----------
    symbols:
        ``(m,)`` array of encoded symbols (uint64 payloads).
    assignments:
        ``(M, r)`` array; row ``i`` lists the encoded symbols message symbol
        ``i`` was XORed into.
    """

    symbols: np.ndarray
    assignments: np.ndarray

    @property
    def num_encoded(self) -> int:
        """Number of encoded symbols ``m``."""
        return int(self.symbols.shape[0])

    @property
    def num_message(self) -> int:
        """Number of message symbols ``M``."""
        return int(self.assignments.shape[0])


@dataclass(frozen=True)
class DecodeOutcome:
    """Result of decoding an :class:`EncodedBlock` after erasures.

    Attributes
    ----------
    message:
        ``(M,)`` array of recovered message symbols (0 where unrecovered).
    recovered_mask:
        Boolean mask of the message symbols actually recovered.
    success:
        True when every message symbol was recovered.
    rounds:
        Peeling rounds used by the decoder (1 for the serial decoder).
    """

    message: np.ndarray
    recovered_mask: np.ndarray
    success: bool
    rounds: int

    @property
    def fraction_recovered(self) -> float:
        """Fraction of message symbols recovered."""
        if self.recovered_mask.size == 0:
            return 1.0
        return float(self.recovered_mask.mean())


class PeelingErasureCode:
    """Fixed-degree XOR erasure code decoded by peeling.

    Parameters
    ----------
    num_encoded:
        Number of encoded symbols ``m`` produced per block.
    r:
        Number of encoded symbols each message symbol contributes to.
    seed:
        Seed for the (pseudo-random but reproducible) symbol assignments; the
        sender and receiver must share it, exactly like a code description.
    """

    def __init__(self, num_encoded: int, r: int = 3, *, seed: int = 0) -> None:
        self.num_encoded = check_positive_int(num_encoded, "num_encoded")
        self.r = check_positive_int(r, "r")
        if self.r < 2:
            raise ValueError(f"r must be >= 2, got {self.r}")
        if self.r > self.num_encoded:
            raise ValueError("r cannot exceed the number of encoded symbols")
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    # encoding
    # ------------------------------------------------------------------ #
    def _assignments(self, num_message: int) -> np.ndarray:
        """Choose, reproducibly, the r encoded symbols for each message symbol."""
        from repro.hypergraph.generators import _sample_distinct_rows

        rng = resolve_rng(self.seed)
        return _sample_distinct_rows(rng, self.num_encoded, num_message, self.r)

    def encode(self, message: np.ndarray) -> EncodedBlock:
        """Encode ``message`` (array of uint64 payload symbols).

        Message symbols must be non-zero so an unrecovered symbol (0) is
        distinguishable from a recovered zero payload.
        """
        payload = np.asarray(message, dtype=np.uint64)
        if payload.ndim != 1:
            raise ValueError(f"message must be one-dimensional, got shape {payload.shape}")
        if (payload == 0).any():
            raise ValueError("message symbols must be non-zero")
        assignments = self._assignments(payload.size)
        symbols = np.zeros(self.num_encoded, dtype=np.uint64)
        for j in range(self.r):
            np.bitwise_xor.at(symbols, assignments[:, j], payload)
        return EncodedBlock(symbols=symbols, assignments=assignments)

    # ------------------------------------------------------------------ #
    # decoding
    # ------------------------------------------------------------------ #
    def decode(
        self,
        block: EncodedBlock,
        received_mask: np.ndarray,
        *,
        mode: Literal["serial", "parallel"] = "parallel",
        max_rounds: Optional[int] = None,
    ) -> DecodeOutcome:
        """Decode after erasures.

        Parameters
        ----------
        block:
            The encoded block (receiver knows the assignments via the shared
            seed; they are carried on the object for convenience).
        received_mask:
            Boolean mask over encoded symbols; False entries were erased in
            transit.
        mode:
            ``"serial"`` worklist peeling or ``"parallel"`` round-synchronous
            peeling.
        """
        received = np.asarray(received_mask, dtype=bool)
        if received.shape != (block.num_encoded,):
            raise ValueError(
                f"received_mask must have shape ({block.num_encoded},), got {received.shape}"
            )
        assignments = block.assignments
        num_message = block.num_message
        # Residual state: encoded symbol values and, per message symbol, how
        # many of its encoded copies survive (erased copies are useless).
        residual = block.symbols.copy()
        residual[~received] = 0
        message = np.zeros(num_message, dtype=np.uint64)
        recovered = np.zeros(num_message, dtype=bool)

        # degree[v] = number of *unrecovered* message symbols XORed into the
        # surviving encoded symbol v.
        degree = np.zeros(block.num_encoded, dtype=np.int64)
        for j in range(self.r):
            np.add.at(degree, assignments[:, j], 1)
        degree[~received] = 0
        # Message symbols all of whose copies were erased can never be
        # recovered; they simply stay unrecovered.
        usable = received[assignments]  # (M, r) which copies survived

        if mode == "serial":
            rounds = 1
            recovered, message = self._decode_serial(
                assignments, usable, residual, degree, received, recovered, message
            )
        elif mode == "parallel":
            rounds, recovered, message = self._decode_parallel(
                assignments, usable, residual, degree, received, recovered, message, max_rounds
            )
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return DecodeOutcome(
            message=message,
            recovered_mask=recovered,
            success=bool(recovered.all()),
            rounds=rounds,
        )

    # -- helpers -------------------------------------------------------- #
    def _cell_to_messages(self, assignments: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """CSR index mapping each encoded symbol to the message symbols using it."""
        m = self.num_encoded
        flat = assignments.reshape(-1)
        counts = np.bincount(flat, minlength=m)
        ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        order = np.argsort(flat, kind="stable")
        members = order // self.r
        return ptr, members

    def _decode_serial(self, assignments, usable, residual, degree, received, recovered, message):
        ptr, members = self._cell_to_messages(assignments)
        worklist = list(np.flatnonzero(received & (degree == 1)))
        while worklist:
            cell = int(worklist.pop())
            if degree[cell] != 1:
                continue
            # Find the unique unrecovered message symbol using this cell.
            using = members[ptr[cell]: ptr[cell + 1]]
            pending = using[~recovered[using]]
            if pending.size != 1:
                continue
            msg = int(pending[0])
            value = residual[cell]
            message[msg] = value
            recovered[msg] = True
            for target in assignments[msg]:
                target = int(target)
                if not received[target]:
                    continue
                residual[target] ^= value
                degree[target] -= 1
                if degree[target] == 1:
                    worklist.append(target)
        return recovered, message

    def _decode_parallel(
        self, assignments, usable, residual, degree, received, recovered, message, max_rounds
    ):
        limit = max_rounds if max_rounds is not None else 4 * self.num_encoded + 16
        ptr, members = self._cell_to_messages(assignments)
        rounds = 0
        for round_index in range(1, limit + 1):
            singleton_cells = np.flatnonzero(received & (degree == 1))
            if singleton_cells.size == 0:
                break
            # Identify the message symbol each singleton cell would reveal;
            # deduplicate so a symbol revealed by two cells at once is only
            # processed once (the double-peel hazard of Section 6).
            revealed_msgs = []
            revealed_values = []
            seen: set[int] = set()
            for cell in singleton_cells:
                cell = int(cell)
                using = members[ptr[cell]: ptr[cell + 1]]
                pending = using[~recovered[using]]
                if pending.size != 1:
                    continue
                msg = int(pending[0])
                if msg in seen:
                    continue
                seen.add(msg)
                revealed_msgs.append(msg)
                revealed_values.append(residual[cell])
            if not revealed_msgs:
                break
            rounds = round_index
            msgs = np.asarray(revealed_msgs, dtype=np.int64)
            values = np.asarray(revealed_values, dtype=np.uint64)
            message[msgs] = values
            recovered[msgs] = True
            for j in range(self.r):
                targets = assignments[msgs, j]
                ok = received[targets]
                np.bitwise_xor.at(residual, targets[ok], values[ok])
                np.subtract.at(degree, targets[ok], 1)
        return rounds, recovered, message
