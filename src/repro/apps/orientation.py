"""Hypergraph orientation / hash-table assignment via peeling (cuckoo-style).

The cuckoo-hashing connection cited in the paper's introduction: hash each of
``m`` items to ``r`` candidate buckets and ask for an assignment of every
item to one of its candidates such that no bucket receives more than ``ℓ``
items.  In hypergraph language this is an *orientation*: point every edge at
one of its vertices so that in-degrees stay ≤ ℓ.

Peeling gives a simple sufficient condition with an explicit construction:
if the ``(ℓ+1)``-core of the hypergraph is empty, process the edges in
**reverse peel order** and assign each edge to the vertex whose sub-threshold
degree caused its removal.  At the moment that vertex triggered the removal
it had at most ``ℓ`` incident edges left, all of which are assigned to it at
the latest now, so its final load is at most ``ℓ``.  Below the threshold
``c*_{ℓ+1, r}`` this succeeds with high probability, in linear time, and —
the subject of the paper — in ``O(log log n)`` parallel rounds.

This module implements the assigner on top of the peeling engines and a
small :class:`MultiChoiceHashTable` convenience wrapper that uses it to build
a static hash table with worst-case ``O(r)`` lookups and guaranteed bucket
loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.results import UNPEELED
from repro.engine import PeelingConfig, get_engine
from repro.hypergraph.hypergraph import Hypergraph
from repro.iblt.hashing import KeyHasher
from repro.utils.validation import check_positive_int

__all__ = ["OrientationResult", "PeelingOrienter", "MultiChoiceHashTable"]


@dataclass(frozen=True)
class OrientationResult:
    """Outcome of :meth:`PeelingOrienter.orient`.

    Attributes
    ----------
    success:
        True when every edge received a vertex and no vertex exceeds the load
        bound.
    assignment:
        ``(m,)`` array; entry ``e`` is the vertex edge ``e`` was assigned to,
        or ``-1`` for unassigned edges (only when ``success`` is False).
    loads:
        ``(n,)`` array of resulting vertex loads.
    max_load:
        Maximum entry of ``loads``.
    rounds:
        Peeling rounds used (parallel mode) — the parallel construction time.
    unassigned:
        Number of edges left unassigned (edges of the non-empty core).
    """

    success: bool
    assignment: np.ndarray
    loads: np.ndarray
    max_load: int
    rounds: int
    unassigned: int


class PeelingOrienter:
    """Assign each edge to one of its vertices with load at most ``max_load``.

    Parameters
    ----------
    max_load:
        Bucket capacity ``ℓ``; the construction peels to the ``(ℓ+1)``-core.
    mode:
        Registered peeling-engine name (see
        :func:`repro.engine.available_engines`): ``"parallel"``
        (round-synchronous peeling, reports rounds) or ``"sequential"``
        (greedy worklist).
    """

    def __init__(self, max_load: int = 1, *, mode: str = "parallel") -> None:
        self.max_load = check_positive_int(max_load, "max_load")
        get_engine(mode)  # fail fast, with the registry's name-listing error
        self.mode = mode

    def orient(self, graph: Hypergraph) -> OrientationResult:
        """Orient ``graph``; see :class:`OrientationResult`."""
        k = self.max_load + 1
        engine = PeelingConfig(engine=self.mode, k=k, track_stats=False).build()
        peel = engine.peel(graph)
        rounds = 1 if self.mode == "sequential" else peel.num_rounds

        m = graph.num_edges
        n = graph.num_vertices
        assignment = np.full(m, -1, dtype=np.int64)
        loads = np.zeros(n, dtype=np.int64)
        edges = graph.edges
        edge_rounds = peel.edge_peel_round
        vertex_rounds = peel.vertex_peel_round

        peeled = np.flatnonzero(edge_rounds != UNPEELED)
        # Assign each peeled edge to the vertex whose removal peeled it: that
        # vertex had fewer than k = max_load + 1 alive incident edges at the
        # time, and every one of them is assigned to it (then or earlier), so
        # its load never exceeds max_load.
        if peeled.size:
            members = edges[peeled]                              # (p, r)
            responsible = vertex_rounds[members] == edge_rounds[peeled, None]
            # Every peeled edge has at least one responsible endpoint; argmax
            # picks the first.
            column = np.argmax(responsible, axis=1)
            targets = members[np.arange(peeled.size), column]
            assignment[peeled] = targets
            np.add.at(loads, targets, 1)

        unassigned = int(m - peeled.size)
        success = unassigned == 0 and bool((loads <= self.max_load).all())
        return OrientationResult(
            success=success,
            assignment=assignment,
            loads=loads,
            max_load=int(loads.max()) if n else 0,
            rounds=rounds,
            unassigned=unassigned,
        )


class MultiChoiceHashTable:
    """A static r-choice hash table built with the peeling orienter.

    Each key hashes to ``r`` candidate buckets (one per subtable, as in the
    paper's IBLT layout); construction assigns every key to one candidate so
    that no bucket holds more than ``bucket_capacity`` keys.  Lookup probes
    the ``r`` candidates — worst-case ``O(r)`` — and membership is exact.

    Parameters
    ----------
    num_buckets:
        Total bucket count (must be divisible by ``r``).
    r:
        Number of candidate buckets per key.
    bucket_capacity:
        Maximum keys per bucket (``ℓ``); construction succeeds w.h.p. while
        the load ``num_keys / num_buckets`` stays below ``c*_{ℓ+1, r}``.
    seed:
        Hash-family seed.
    """

    def __init__(
        self,
        num_buckets: int,
        r: int = 3,
        *,
        bucket_capacity: int = 1,
        seed: int = 0,
    ) -> None:
        self.num_buckets = check_positive_int(num_buckets, "num_buckets")
        self.r = check_positive_int(r, "r")
        self.bucket_capacity = check_positive_int(bucket_capacity, "bucket_capacity")
        self.hasher = KeyHasher(num_cells=self.num_buckets, r=self.r, layout="subtables", seed=int(seed))
        self._bucket_keys: Optional[np.ndarray] = None
        self._bucket_ptr: Optional[np.ndarray] = None
        self.construction_rounds = 0

    def build(self, keys: Sequence[int] | np.ndarray) -> bool:
        """Attempt to place ``keys``; returns True on success.

        On failure (the (ℓ+1)-core of the choice hypergraph is non-empty) the
        table is left unbuilt and ``False`` is returned so the caller can
        rehash with a different seed or grow the table.
        """
        keys_arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if (keys_arr == 0).any():
            raise ValueError("keys must be non-zero")
        if np.unique(keys_arr).size != keys_arr.size:
            raise ValueError("keys must be distinct")
        cells = self.hasher.cell_indices(keys_arr) if keys_arr.size else np.empty((0, self.r), dtype=np.int64)
        graph = Hypergraph(self.num_buckets, cells, allow_duplicate_vertices=True, validate=False)
        orienter = PeelingOrienter(self.bucket_capacity, mode="parallel")
        result = orienter.orient(graph)
        self.construction_rounds = result.rounds
        if not result.success:
            return False
        # Bucket the keys by their assigned vertex into a CSR layout.
        order = np.argsort(result.assignment, kind="stable")
        sorted_buckets = result.assignment[order]
        sorted_keys = keys_arr[order]
        counts = np.bincount(sorted_buckets, minlength=self.num_buckets) if keys_arr.size else np.zeros(self.num_buckets, dtype=np.int64)
        ptr = np.zeros(self.num_buckets + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        self._bucket_keys = sorted_keys
        self._bucket_ptr = ptr
        return True

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has succeeded."""
        return self._bucket_keys is not None

    def __contains__(self, key: int) -> bool:
        if not self.is_built:
            raise RuntimeError("table has not been built; call build() first")
        assert self._bucket_keys is not None and self._bucket_ptr is not None
        key_u = np.uint64(key)
        for bucket in self.hasher.cell_indices(key_u):
            start, stop = self._bucket_ptr[bucket], self._bucket_ptr[bucket + 1]
            if (self._bucket_keys[start:stop] == key_u).any():
                return True
        return False

    def bucket_loads(self) -> np.ndarray:
        """Per-bucket key counts of the built table."""
        if not self.is_built:
            raise RuntimeError("table has not been built; call build() first")
        assert self._bucket_ptr is not None
        return np.diff(self._bucket_ptr)
