"""Random k-XORSAT solved by peeling plus Gaussian elimination (intro application).

A k-XORSAT instance is a system of linear equations over GF(2): each equation
XORs ``k`` distinct variables and equals a parity bit.  The classical solver
(Molloy's "pure literal rule" analysis is the basis of the paper's Section 2)
peels variables of degree 1 — a variable appearing in a single equation can
always be set to satisfy that equation once the rest is solved — and what
remains is exactly the 2-core of the hypergraph whose vertices are variables
and whose edges are equations.  Below the threshold ``c*_{2,k}`` the core is
empty and peeling alone solves the instance in linear time (and
``O(log log n)`` parallel rounds); above it the residual core must be solved
by Gaussian elimination (or declared unsatisfiable).

This module implements the full pipeline:

* :func:`random_xorsat` — draw a random instance with a planted solution
  (always satisfiable) or with uniform parities;
* :class:`XorSatSolver` — peel (sequentially or in parallel rounds), solve
  the core with dense GF(2) elimination, back-substitute in reverse peel
  order, and report which phase did the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.engine import PeelingConfig, get_engine
from repro.hypergraph.generators import random_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_positive_int

__all__ = ["XorSatInstance", "XorSatSolution", "random_xorsat", "XorSatSolver"]


@dataclass(frozen=True)
class XorSatInstance:
    """A k-XORSAT instance.

    Attributes
    ----------
    num_variables:
        Number of variables ``n``.
    clauses:
        ``(m, k)`` array; row ``i`` lists the variables of equation ``i``.
    parities:
        ``(m,)`` array of 0/1 right-hand sides.
    planted:
        The planted solution used to generate the parities, if any.
    """

    num_variables: int
    clauses: np.ndarray
    parities: np.ndarray
    planted: Optional[np.ndarray] = None

    @property
    def num_clauses(self) -> int:
        """Number of equations ``m``."""
        return int(self.clauses.shape[0])

    @property
    def clause_size(self) -> int:
        """Variables per equation ``k``."""
        return int(self.clauses.shape[1]) if self.num_clauses else 0

    @property
    def density(self) -> float:
        """Equations per variable (the edge density of the induced hypergraph)."""
        return self.num_clauses / self.num_variables if self.num_variables else 0.0

    def to_hypergraph(self) -> Hypergraph:
        """The hypergraph whose vertices are variables and edges are equations."""
        return Hypergraph(self.num_variables, self.clauses, validate=False,
                          allow_duplicate_vertices=True)

    def check(self, assignment: np.ndarray) -> bool:
        """True when ``assignment`` (0/1 per variable) satisfies every equation."""
        values = np.asarray(assignment, dtype=np.uint8)
        if values.shape != (self.num_variables,):
            raise ValueError(
                f"assignment must have shape ({self.num_variables},), got {values.shape}"
            )
        if self.num_clauses == 0:
            return True
        lhs = values[self.clauses].sum(axis=1) % 2
        return bool((lhs == self.parities).all())


def random_xorsat(
    num_variables: int,
    density: float,
    clause_size: int = 3,
    *,
    planted: bool = True,
    seed: SeedLike = None,
) -> XorSatInstance:
    """Draw a random k-XORSAT instance.

    Parameters
    ----------
    num_variables:
        Number of variables ``n``.
    density:
        Equations per variable ``c`` (``round(c*n)`` equations are drawn).
    clause_size:
        Variables per equation ``k`` (the hypergraph edge size ``r``).
    planted:
        If True (default) parities are generated from a random planted
        assignment, so the instance is satisfiable by construction; if False
        parities are uniform random bits (above the satisfiability threshold
        such instances are typically unsatisfiable).
    seed:
        RNG seed.
    """
    num_variables = check_positive_int(num_variables, "num_variables")
    clause_size = check_positive_int(clause_size, "clause_size")
    rng = resolve_rng(seed)
    graph = random_hypergraph(num_variables, density, clause_size, seed=rng)
    clauses = np.asarray(graph.edges)
    if planted:
        assignment = rng.integers(0, 2, size=num_variables, dtype=np.uint8)
        parities = (
            assignment[clauses].sum(axis=1) % 2 if clauses.size else np.zeros(0, dtype=np.uint8)
        ).astype(np.uint8)
        return XorSatInstance(num_variables, clauses, parities, planted=assignment)
    parities = rng.integers(0, 2, size=clauses.shape[0], dtype=np.uint8)
    return XorSatInstance(num_variables, clauses, parities, planted=None)


@dataclass(frozen=True)
class XorSatSolution:
    """Result of :meth:`XorSatSolver.solve`.

    Attributes
    ----------
    satisfiable:
        Whether a satisfying assignment was found.
    assignment:
        A satisfying 0/1 assignment when ``satisfiable`` (otherwise the
        partial assignment reached before inconsistency was detected).
    peeled_clauses:
        Number of equations eliminated by peeling.
    core_clauses:
        Number of equations left to Gaussian elimination (the 2-core size).
    peeling_rounds:
        Parallel peeling rounds used (1 when the sequential peeler ran).
    elimination_rank:
        Rank of the core system found by Gaussian elimination.
    """

    satisfiable: bool
    assignment: np.ndarray
    peeled_clauses: int
    core_clauses: int
    peeling_rounds: int
    elimination_rank: int


class XorSatSolver:
    """Peeling + GF(2) elimination solver for k-XORSAT.

    Parameters
    ----------
    mode:
        Registered peeling-engine name (see
        :func:`repro.engine.available_engines`): ``"parallel"`` uses the
        round-synchronous peeler (and reports its round count);
        ``"sequential"`` uses the greedy worklist peeler.
    """

    def __init__(self, mode: str = "parallel") -> None:
        get_engine(mode)  # fail fast, with the registry's name-listing error
        self.mode = mode

    # ------------------------------------------------------------------ #
    def solve(self, instance: XorSatInstance) -> XorSatSolution:
        """Solve ``instance``; see :class:`XorSatSolution` for the fields."""
        n = instance.num_variables
        clauses = instance.clauses
        parities = instance.parities.astype(np.uint8).copy()
        graph = instance.to_hypergraph()

        engine = PeelingConfig(engine=self.mode, k=2, track_stats=False).build()
        peel = engine.peel(graph)
        rounds = 1 if self.mode == "sequential" else peel.num_rounds

        core_mask = peel.core_edge_mask
        peeled_mask = ~core_mask
        assignment = np.zeros(n, dtype=np.uint8)
        assigned = np.zeros(n, dtype=bool)

        # 1. Solve the 2-core by dense GF(2) elimination (it is tiny below
        #    the threshold — usually empty — and a constant fraction above).
        core_clause_idx = np.flatnonzero(core_mask)
        rank = 0
        consistent = True
        if core_clause_idx.size:
            core_vars = np.unique(clauses[core_clause_idx].reshape(-1))
            var_col = {int(v): i for i, v in enumerate(core_vars)}
            rows = np.zeros((core_clause_idx.size, core_vars.size + 1), dtype=np.uint8)
            for row, clause_id in enumerate(core_clause_idx):
                for v in clauses[clause_id]:
                    rows[row, var_col[int(v)]] ^= 1
                rows[row, -1] = parities[clause_id]
            solved, rank, solution = _gf2_solve(rows)
            consistent = solved
            if solved:
                assignment[core_vars] = solution
                assigned[core_vars] = True

        # 2. Back-substitute the peeled equations in reverse peel order.  Each
        #    peeled equation has a "responsible" (pivot) variable — the vertex
        #    whose sub-k degree caused the removal — which appears in no
        #    later-peeled equation and not in the core, so by the time the
        #    equation is processed every *other* variable already has its
        #    final value (later pivots are set, core variables are set, and
        #    never-pivot variables stay 0), and setting the pivot satisfies
        #    the equation without disturbing anything processed earlier.
        if consistent and peeled_mask.any():
            order = self._peel_order(peel, peeled_mask)
            edge_rounds = peel.edge_peel_round
            vertex_rounds = peel.vertex_peel_round
            for clause_id in reversed(order):
                members = clauses[clause_id]
                pivot = None
                for v in members:
                    v = int(v)
                    if vertex_rounds[v] == edge_rounds[clause_id] and not assigned[v]:
                        pivot = v
                        break
                parity = int(parities[clause_id])
                parity ^= int(assignment[members].sum() % 2)
                if pivot is None:
                    # Cannot happen for a genuinely peeled equation; guard for
                    # duplicate-endpoint corner cases by falling back to any
                    # unassigned variable, or detecting inconsistency.
                    free = [int(v) for v in members if not assigned[v]]
                    if free:
                        pivot = free[0]
                    elif parity != 0:
                        consistent = False
                        break
                    else:
                        continue
                assignment[pivot] = parity
                assigned[pivot] = True

        satisfiable = consistent and instance.check(assignment)
        return XorSatSolution(
            satisfiable=satisfiable,
            assignment=assignment,
            peeled_clauses=int(peeled_mask.sum()),
            core_clauses=int(core_mask.sum()),
            peeling_rounds=rounds,
            elimination_rank=rank,
        )

    @staticmethod
    def _peel_order(peel, peeled_mask: np.ndarray) -> np.ndarray:
        """Clause indices in (an order consistent with) the peeling order."""
        if peel.peel_order.size:
            return peel.peel_order
        # Parallel peeler: order by peel round; ties are independent of each
        # other (they were peeled simultaneously), so any order within a
        # round is valid.
        peeled = np.flatnonzero(peeled_mask)
        rounds = peel.edge_peel_round[peeled]
        return peeled[np.argsort(rounds, kind="stable")]


def _gf2_solve(rows: np.ndarray) -> Tuple[bool, int, np.ndarray]:
    """Solve an augmented GF(2) system ``[A | b]`` by Gaussian elimination.

    Returns ``(consistent, rank, solution)`` where ``solution`` sets free
    variables to 0.
    """
    system = rows.astype(np.uint8).copy()
    num_rows, width = system.shape
    num_vars = width - 1
    pivot_cols = []
    row = 0
    for col in range(num_vars):
        pivot = None
        for candidate in range(row, num_rows):
            if system[candidate, col]:
                pivot = candidate
                break
        if pivot is None:
            continue
        system[[row, pivot]] = system[[pivot, row]]
        mask = system[:, col].astype(bool)
        mask[row] = False
        system[mask] ^= system[row]
        pivot_cols.append(col)
        row += 1
        if row == num_rows:
            break
    rank = row
    # Inconsistent iff a zero row has parity 1.
    inconsistent = bool((system[rank:, :-1].sum(axis=1) == 0).any() and
                        (system[rank:, -1] == 1).any())
    if inconsistent:
        # Pinpoint precisely: a row that is all-zero on the left with rhs 1.
        lhs_zero = (system[rank:, :-1] == 0).all(axis=1)
        inconsistent = bool((system[rank:, -1][lhs_zero] == 1).any())
    solution = np.zeros(num_vars, dtype=np.uint8)
    if not inconsistent:
        for i in reversed(range(rank)):
            col = pivot_cols[i]
            acc = int(system[i, -1])
            acc ^= int((system[i, col + 1: num_vars] & solution[col + 1:]).sum() % 2)
            solution[col] = acc
    return (not inconsistent), rank, solution
