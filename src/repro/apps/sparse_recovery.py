"""Sparse recovery with IBLTs (the motivating application of Section 6).

In the sparse recovery problem, ``N`` items are inserted into a set ``S`` and
subsequently all but ``n`` of them are deleted; the goal is to recover the
surviving set exactly, using space proportional to the *final* size ``n``
(which may be far smaller than ``N``).  An IBLT sized for ``n`` items does
exactly this: insertions and deletions are symmetric constant-time updates
and the final listing succeeds with high probability whenever the table load
``n / m`` is below the peeling threshold ``c*_{2,r}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence

import numpy as np

from repro.iblt.iblt import IBLT
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = ["SparseRecoveryResult", "SparseRecovery", "random_distinct_keys"]


def _first_occurrences(keys: np.ndarray) -> np.ndarray:
    """Deduplicate ``keys`` keeping the first occurrence of each, in draw order.

    ``np.unique`` alone would *sort* the survivors, which silently reshuffles
    which keys land where in positional splits like
    :meth:`SparseRecovery.run`'s ``keys[:survivors]``.
    """
    _, first_index = np.unique(keys, return_index=True)
    return keys[np.sort(first_index)]


def random_distinct_keys(count: int, seed: SeedLike = None) -> np.ndarray:
    """Draw ``count`` distinct non-zero uint64 keys uniformly at random.

    Draws cover ``[1, 2^63 - 1)`` — 63-bit values, not the full uint64 range
    — so keys stay representable as non-negative int64 everywhere (hash
    mixing, JSON round trips).  Draw order is preserved: deduplication keeps
    the first occurrence of a repeated key and replacement draws append at
    the end, so a positional split of the result is a split of the original
    stream.
    """
    count = check_nonnegative_int(count, "count")
    rng = resolve_rng(seed)
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    keys = rng.integers(1, 2**63 - 1, size=count, dtype=np.int64).astype(np.uint64)
    # Collisions among 63-bit draws are vanishingly rare; resolve them anyway.
    while np.unique(keys).size < count:
        keys = _first_occurrences(keys)
        extra = rng.integers(1, 2**63 - 1, size=count - keys.size, dtype=np.int64).astype(np.uint64)
        keys = np.concatenate([keys, extra])
    return keys


@dataclass(frozen=True)
class SparseRecoveryResult:
    """Outcome of a sparse-recovery experiment.

    Attributes
    ----------
    recovered:
        Keys recovered from the table.
    expected:
        The ground-truth surviving keys.
    success:
        True when recovery returned exactly the expected set.
    fraction_recovered:
        ``|recovered ∩ expected| / |expected|`` (1.0 when ``expected`` is
        empty); the "% Recovered" column of Tables 3 and 4.
    rounds, subrounds:
        Rounds used by the decoder (1/1 for serial decoding).
    """

    recovered: np.ndarray
    expected: np.ndarray
    success: bool
    fraction_recovered: float
    rounds: int
    subrounds: int


class SparseRecovery:
    """End-to-end sparse-recovery pipeline backed by an IBLT.

    Parameters
    ----------
    num_cells:
        IBLT size (proportional to the final set size, not the stream length).
    r:
        Hash functions per key.
    layout:
        ``"subtables"`` (required for the subtable-parallel decoder) or
        ``"flat"``.
    seed:
        Hash-family seed.
    """

    def __init__(
        self,
        num_cells: int,
        r: int = 3,
        *,
        layout: Literal["subtables", "flat"] = "subtables",
        seed: int = 0,
    ) -> None:
        self.num_cells = check_positive_int(num_cells, "num_cells")
        self.r = check_positive_int(r, "r")
        self.layout = layout
        self.seed = int(seed)

    def build_table(self, inserted: np.ndarray, deleted: np.ndarray) -> IBLT:
        """Insert ``inserted`` then delete ``deleted`` and return the table."""
        table = IBLT(self.num_cells, self.r, layout=self.layout, seed=self.seed)
        if np.asarray(inserted).size:
            table.insert(inserted)
        if np.asarray(deleted).size:
            table.delete(deleted)
        return table

    def run(
        self,
        stream_length: int,
        survivors: int,
        *,
        decoder: str = "parallel",
        seed: SeedLike = None,
    ) -> SparseRecoveryResult:
        """Simulate an insert-then-delete stream and recover the survivors.

        Parameters
        ----------
        stream_length:
            Total number of items ``N`` ever inserted.
        survivors:
            Number of items ``n`` never deleted (must satisfy
            ``survivors <= stream_length``).
        decoder:
            Registered decoder name — ``"serial"`` (worklist recovery),
            ``"subtable"`` (the paper's round-synchronous recovery) or
            ``"flat"`` — plus the historical aliases ``"parallel"`` and
            ``"flat-parallel"``.
        seed:
            Seed for the random key stream.
        """
        stream_length = check_positive_int(stream_length, "stream_length")
        survivors = check_nonnegative_int(survivors, "survivors")
        if survivors > stream_length:
            raise ValueError(
                f"survivors ({survivors}) cannot exceed stream_length ({stream_length})"
            )
        keys = random_distinct_keys(stream_length, seed)
        surviving = keys[:survivors]
        deleted = keys[survivors:]
        table = self.build_table(keys, deleted)
        return self.recover(table, surviving, decoder=decoder)

    def recover(
        self,
        table: IBLT,
        expected: np.ndarray,
        *,
        decoder: str = "parallel",
    ) -> SparseRecoveryResult:
        """Recover the contents of ``table`` and compare with ``expected``.

        ``decoder`` is any registered decoder name (see
        :func:`repro.iblt.available_decoders`); the registry also resolves
        the historical aliases ``"parallel"`` (→ ``"subtable"``) and
        ``"flat-parallel"`` (→ ``"flat"``).
        """
        expected = np.asarray(expected, dtype=np.uint64)
        result = table.decode(decoder=decoder)
        return self._grade(result, expected)

    def recover_many(
        self,
        tables: Sequence[IBLT],
        expected: Sequence[np.ndarray],
        *,
        decoder: str = "batched",
    ) -> List[SparseRecoveryResult]:
        """Recover a whole fleet of tables and grade each against its truth.

        With the default ``decoder="batched"`` all tables are decoded in one
        lockstep pass (:func:`repro.iblt.decode_many`) — the serving shape
        where many independent sketches built with one shared hash family
        arrive together.  Results come back in input order.

        Note the default *schedule* differs from :meth:`recover`: the
        batched decoder runs the flat schedule, so its ``rounds`` compare
        with ``decoder="flat"``, not with the single-table default
        (``"parallel"`` → subtable).  Recovered sets and ``success`` are
        identical across decoders; pass an explicit ``decoder=`` to match
        round statistics between the two entry points.
        """
        if len(tables) != len(expected):
            raise ValueError(
                f"got {len(tables)} tables but {len(expected)} expected key sets"
            )
        results = IBLT.decode_many(tables, decoder=decoder)
        return [
            self._grade(result, np.asarray(keys, dtype=np.uint64))
            for result, keys in zip(results, expected)
        ]

    @staticmethod
    def _grade(result, expected: np.ndarray) -> SparseRecoveryResult:
        recovered = result.recovered
        expected_set = set(int(x) for x in expected)
        recovered_set = set(int(x) for x in recovered)
        hits = len(expected_set & recovered_set)
        fraction = 1.0 if not expected_set else hits / len(expected_set)
        success = recovered_set == expected_set
        return SparseRecoveryResult(
            recovered=recovered,
            expected=expected,
            success=success,
            fraction_recovered=fraction,
            rounds=result.rounds,
            subrounds=result.subrounds,
        )
