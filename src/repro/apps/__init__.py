"""End-to-end applications built on peeling.

* :class:`~repro.apps.sparse_recovery.SparseRecovery` — recover the survivors
  of an insert/delete stream from an IBLT sized for the final set.
* :class:`~repro.apps.set_reconciliation.SetReconciler` — compute the
  symmetric difference of two remote sets from IBLT difference digests.
* :class:`~repro.apps.erasure_code.PeelingErasureCode` — fixed-degree XOR
  erasure code decoded by peeling the 2-core.
* :class:`~repro.apps.xorsat.XorSatSolver` — random k-XORSAT solved by
  peeling (the pure literal rule) plus GF(2) elimination on the core.
"""

from repro.apps.sparse_recovery import (
    SparseRecovery,
    SparseRecoveryResult,
    random_distinct_keys,
)
from repro.apps.set_reconciliation import (
    ReconciliationResult,
    SetReconciler,
    random_set_pair,
)
from repro.apps.erasure_code import DecodeOutcome, EncodedBlock, PeelingErasureCode
from repro.apps.xorsat import (
    XorSatInstance,
    XorSatSolution,
    XorSatSolver,
    random_xorsat,
)
from repro.apps.orientation import (
    MultiChoiceHashTable,
    OrientationResult,
    PeelingOrienter,
)

__all__ = [
    "SparseRecovery",
    "SparseRecoveryResult",
    "random_distinct_keys",
    "ReconciliationResult",
    "SetReconciler",
    "random_set_pair",
    "DecodeOutcome",
    "EncodedBlock",
    "PeelingErasureCode",
    "XorSatInstance",
    "XorSatSolution",
    "XorSatSolver",
    "random_xorsat",
    "MultiChoiceHashTable",
    "OrientationResult",
    "PeelingOrienter",
]
