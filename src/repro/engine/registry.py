"""The engine registry — one front door for every peeling schedule.

The paper's point is that sequential, round-synchronous parallel and
subtable (sub-round) peeling are *interchangeable schedules of the same
process*: they reach the same k-core and differ only in round structure and
work.  The registry makes that interchangeability a first-class API
property: every engine is a named entry behind the same
:class:`PeelingEngine` protocol, so callers select a schedule with a string
(``peel(graph, engine="subtable")``) and new engines plug in without
touching any call site.

The built-in engines are registered when :mod:`repro.engine` is imported:

========== ==================================================
name       engine class
========== ==================================================
sequential :class:`~repro.core.peeling.SequentialPeeler`
parallel   :class:`~repro.core.peeling.ParallelPeeler`
subtable   :class:`~repro.core.subtable.SubtablePeeler`
========== ==================================================
"""

from __future__ import annotations

from typing import Callable, Protocol, Tuple, runtime_checkable

from repro.core.results import PeelingResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.registry import Registry

__all__ = [
    "PeelingEngine",
    "EngineFactory",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
]


@runtime_checkable
class PeelingEngine(Protocol):
    """What every peeling engine must provide: ``peel(graph) -> PeelingResult``.

    Optional resumable surface
    --------------------------
    Engines supporting incremental peeling may additionally provide

    ``peel_resumable(graph) -> (PeelingResult, PeelState)``
        Like ``peel`` but keeps the fixed-point working state resident
        (owned buffers, ``rounds_completed`` recorded) so later churn can be
        peeled from the checkpoint instead of from round 0.

    ``resume(state, dirty) -> PeelingResult``
        Continue a resident state after edges were dropped
        (:func:`repro.kernels.rounds.drop_edges`); ``dirty`` lists the
        degree-changed vertices.  The result records ``resumed_from_round``
        and ``rounds_incremental``.

    Both are discovered by ``getattr`` (see :func:`repro.engine.resume`) —
    they are not part of the runtime-checkable protocol, and engines whose
    schedule has no incremental form (the lockstep/sharded ones today)
    simply omit them.
    """

    k: int

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run the engine's schedule on ``graph`` and return the outcome."""
        ...


EngineFactory = Callable[..., PeelingEngine]
"""A callable (usually the engine class) building an engine: ``factory(k, **options)``."""

_ENGINES: Registry[EngineFactory] = Registry("engine")


def register_engine(name: str, factory: EngineFactory, *, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Parameters
    ----------
    name:
        Registry key; the string callers pass as ``engine=``.
    factory:
        Engine class or callable with signature ``factory(k, **options)``
        returning an object satisfying :class:`PeelingEngine`.
    overwrite:
        Allow replacing an existing entry (default False: re-registering a
        taken name raises ``ValueError`` to surface accidental collisions).
    """
    _ENGINES.register(name, factory, overwrite=overwrite)


def unregister_engine(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests); unknown names raise."""
    _ENGINES.unregister(name)


def get_engine(name: str) -> EngineFactory:
    """Look up an engine factory by name.

    Raises
    ------
    ValueError
        If ``name`` is not registered; the message lists the available names.
    """
    return _ENGINES.get(name)


def available_engines() -> Tuple[str, ...]:
    """Sorted names of every registered engine."""
    return _ENGINES.names()
