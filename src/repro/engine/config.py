"""Reproducible peeling-run configuration.

A :class:`PeelingConfig` is the serializable description of a peeling run:
which engine, which threshold ``k``, and the engine-specific knobs.  It
round-trips through plain dicts (:meth:`PeelingConfig.to_dict` /
:meth:`PeelingConfig.from_dict`), so an experiment manifest can record
exactly how every result was produced and rebuild the identical engine
later — on this machine or a worker process.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.engine.registry import PeelingEngine, get_engine
from repro.utils.validation import check_positive_int

__all__ = ["PeelingConfig", "DEFAULT_ENGINE"]

DEFAULT_ENGINE = "parallel"
"""Engine used when the caller does not name one (the paper's main subject)."""

#: Config fields forwarded to every engine constructor that accepts them.
_SHARED_FIELDS = ("update", "max_rounds", "track_stats", "kernel")


@dataclass(frozen=True)
class PeelingConfig:
    """Frozen description of one peeling run.

    Attributes
    ----------
    engine:
        Registered engine name (see :func:`repro.engine.available_engines`).
    k:
        Degree threshold; vertices of degree ``< k`` are peeled.
    update:
        Work-accounting mode for engines that support it (``"full"`` or
        ``"frontier"`` for the parallel engine); silently ignored by engines
        whose constructor does not take it, mirroring the historical
        ``peel_to_kcore`` behaviour.
    max_rounds:
        Safety cap on rounds for engines that take one.
    track_stats:
        Record per-round :class:`~repro.core.results.RoundStats`.
    kernel:
        Kernel-backend name (see :func:`repro.kernels.available_kernels`)
        for engines built on the shared kernel layer; ``None`` selects the
        default backend (``"numpy"``).  Kept as a name (not an instance) so
        configs stay JSON-serializable.
    options:
        Engine-specific extras forwarded verbatim to the engine constructor.
        Unknown keys raise ``TypeError`` at :meth:`build` time.
    """

    engine: str = DEFAULT_ENGINE
    k: int = 2
    update: str = "full"
    max_rounds: Optional[int] = None
    track_stats: bool = True
    kernel: Optional[str] = None
    options: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        if not isinstance(self.engine, str) or not self.engine:
            raise TypeError(f"engine must be a non-empty string, got {self.engine!r}")
        if self.max_rounds is not None:
            check_positive_int(self.max_rounds, "max_rounds")
        if self.kernel is not None and (not isinstance(self.kernel, str) or not self.kernel):
            raise TypeError(
                f"kernel must be None or a non-empty string, got {self.kernel!r}"
            )
        # Detach from the caller's mapping so the frozen config stays frozen.
        object.__setattr__(self, "options", dict(self.options))

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_options(cls, engine: str = DEFAULT_ENGINE, **opts: Any) -> "PeelingConfig":
        """Split keyword options into config fields and engine extras.

        This is what :func:`repro.engine.peel` does with its ``**opts``:
        ``k``, ``update``, ``max_rounds``, ``track_stats`` and ``kernel``
        populate the corresponding fields; everything else lands in
        :attr:`options`.
        """
        known = {name: opts.pop(name) for name in ("k", *_SHARED_FIELDS) if name in opts}
        return cls(engine=engine, options=opts, **known)

    def replace(self, **changes: Any) -> "PeelingConfig":
        """Return a copy with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # dict round-trip (experiment manifests)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, suitable for JSON manifests."""
        return {
            "engine": self.engine,
            "k": self.k,
            "update": self.update,
            "max_rounds": self.max_rounds,
            "track_stats": self.track_stats,
            "kernel": self.kernel,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PeelingConfig":
        """Rebuild a config saved with :meth:`to_dict`; unknown keys raise."""
        payload = dict(data)
        fields = ("engine", "k", "update", "max_rounds", "track_stats", "kernel", "options")
        unknown = [key for key in payload if key not in fields]
        if unknown:
            raise ValueError(
                f"unknown PeelingConfig keys {sorted(unknown)}; expected a subset of {list(fields)}"
            )
        return cls(**payload)

    # ------------------------------------------------------------------ #
    # engine construction
    # ------------------------------------------------------------------ #
    def build(self) -> PeelingEngine:
        """Instantiate the configured engine via the registry.

        Shared fields (``update``, ``max_rounds``, ``track_stats``,
        ``kernel``) are passed only to engines whose constructor accepts
        them; entries in
        :attr:`options` the constructor does not accept raise ``TypeError``
        naming the offending keys.
        """
        factory = get_engine(self.engine)
        try:
            params = inspect.signature(factory).parameters
        except (TypeError, ValueError):  # uninspectable factory: pass everything
            return factory(self.k, **{f: getattr(self, f) for f in _SHARED_FIELDS}, **self.options)
        has_varkw = any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values())
        kwargs: Dict[str, Any] = {}
        for name in _SHARED_FIELDS:
            if name in params:
                kwargs[name] = getattr(self, name)
        if not has_varkw:
            rejected = sorted(key for key in self.options if key not in params)
            if rejected:
                raise TypeError(
                    f"engine {self.engine!r} does not accept option(s) {rejected}; "
                    f"its constructor takes {sorted(params)}"
                )
        kwargs.update(self.options)
        return factory(self.k, **kwargs)
