"""Unified engine subsystem: registry, config and the ``peel`` front door.

This package is the stable public surface over the peeling engines:

* :class:`~repro.engine.registry.PeelingEngine` — the protocol every engine
  satisfies, plus :func:`register_engine` / :func:`get_engine` /
  :func:`available_engines`.
* :class:`~repro.engine.config.PeelingConfig` — frozen, dict-round-trippable
  run configuration for reproducible experiment manifests.
* :func:`~repro.engine.api.peel` / :func:`~repro.engine.api.peel_many` —
  string-selectable single-graph and batched peeling, the latter dispatched
  through the execution backends of :mod:`repro.parallel.backend`.

Importing this package registers the five built-in engines under the names
``"sequential"``, ``"parallel"``, ``"subtable"``, ``"shm-parallel"`` (the
shared-memory intra-trial parallel engine of :mod:`repro.parallel.shm`) and
``"batched"`` (lockstep batch peeling; via ``peel`` it runs a batch of one,
its real face is ``peel_many(graphs, "parallel", backend="batched")``).
"""

from repro.engine.registry import (
    EngineFactory,
    PeelingEngine,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.engine.config import DEFAULT_ENGINE, PeelingConfig
from repro.engine.api import peel, peel_many, peel_resumable, resume

from repro.core.peeling import ParallelPeeler, SequentialPeeler
from repro.core.subtable import SubtablePeeler
from repro.engine.batched import BatchedPeeler
from repro.parallel.shm.peeler import ShmParallelPeeler

for _name, _factory in (
    ("sequential", SequentialPeeler),
    ("parallel", ParallelPeeler),
    ("subtable", SubtablePeeler),
    ("shm-parallel", ShmParallelPeeler),
    ("batched", BatchedPeeler),
):
    if _name not in available_engines():  # tolerate re-imports (e.g. importlib.reload)
        register_engine(_name, _factory)
del _name, _factory

__all__ = [
    "PeelingEngine",
    "EngineFactory",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "available_engines",
    "PeelingConfig",
    "DEFAULT_ENGINE",
    "BatchedPeeler",
    "peel",
    "peel_many",
    "peel_resumable",
    "resume",
]
