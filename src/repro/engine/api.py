"""Front-door API: ``peel`` one hypergraph, ``peel_many`` a batch.

These are the functions applications should call.  Both resolve the engine
through the registry, so every schedule — and any engine registered by
third-party code — is reachable with a string:

>>> from repro import peel, random_hypergraph
>>> graph = random_hypergraph(10_000, 0.7, 4, seed=1)
>>> peel(graph, "parallel", k=2).success
True

``peel_many`` dispatches independent graphs through an
:class:`~repro.parallel.backend.ExecutionBackend` (``"serial"``,
``"threads"`` or ``"processes"``), so multi-graph workloads scale with the
cores of the host.
"""

from __future__ import annotations

import functools
from typing import Iterable, List, Optional, Union

from repro.core.results import PeelingResult
from repro.engine.config import DEFAULT_ENGINE, PeelingConfig
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.backend import ExecutionBackend, get_backend

__all__ = ["peel", "peel_many"]


def _resolve_config(
    engine: Optional[str], config: Optional[PeelingConfig], opts: dict
) -> PeelingConfig:
    if config is None:
        return PeelingConfig.from_options(engine if engine is not None else DEFAULT_ENGINE, **opts)
    if engine is not None or opts:
        raise TypeError(
            "pass either a prebuilt config= or engine/keyword options, not both"
        )
    return config


def peel(
    graph: Hypergraph,
    engine: Optional[str] = None,
    *,
    config: Optional[PeelingConfig] = None,
    **opts,
) -> PeelingResult:
    """Peel ``graph`` with the named engine and return the result.

    Parameters
    ----------
    graph:
        Hypergraph to peel (the subtable engine additionally requires it to
        be partitioned).
    engine:
        Registered engine name (default ``"parallel"``); see
        :func:`repro.engine.available_engines`.
    config:
        A prebuilt :class:`PeelingConfig`; mutually exclusive with ``engine``
        and ``**opts``.
    **opts:
        ``k``, ``update``, ``max_rounds``, ``track_stats`` plus any
        engine-specific options (see :meth:`PeelingConfig.from_options`).
    """
    return _resolve_config(engine, config, opts).build().peel(graph)


def _peel_one(config: PeelingConfig, graph: Hypergraph) -> PeelingResult:
    # Module-level so process-pool backends can pickle the work function.
    return config.build().peel(graph)


def peel_many(
    graphs: Iterable[Hypergraph],
    engine: Optional[str] = None,
    *,
    backend: Union[str, ExecutionBackend] = "serial",
    max_workers: Optional[int] = None,
    config: Optional[PeelingConfig] = None,
    **opts,
) -> List[PeelingResult]:
    """Peel a batch of independent hypergraphs, in input order.

    Parameters
    ----------
    graphs:
        The hypergraphs to peel; results come back in the same order.
    engine, config, **opts:
        As in :func:`peel` — one configuration shared by every graph.
    backend:
        Backend name (``"serial"``, ``"threads"``, ``"processes"``) or an
        :class:`~repro.parallel.backend.ExecutionBackend` instance.  Named
        backends are created for the call and closed afterwards; instances
        are left open for the caller to reuse.
    max_workers:
        Worker count for named pool backends (ignored for ``"serial"`` and
        for backend instances).
    """
    resolved_config = _resolve_config(engine, config, opts)
    items = list(graphs)
    owned = isinstance(backend, str)
    resolved_backend = get_backend(backend, max_workers=max_workers) if owned else backend
    try:
        return resolved_backend.map(functools.partial(_peel_one, resolved_config), items)
    finally:
        if owned:
            resolved_backend.close()
