"""Front-door API: ``peel`` one hypergraph, ``peel_many`` a batch.

These are the functions applications should call.  Both resolve the engine
through the registry, so every schedule — and any engine registered by
third-party code — is reachable with a string:

>>> from repro import peel, random_hypergraph
>>> graph = random_hypergraph(10_000, 0.7, 4, seed=1)
>>> peel(graph, "parallel", k=2).success
True

``peel_many`` dispatches independent graphs through an
:class:`~repro.parallel.backend.ExecutionBackend` (``"serial"``,
``"threads"`` or ``"processes"``), so multi-graph workloads scale with the
cores of the host.  The ``"batched"`` backend instead *fuses* the batch:
for the parallel schedule, all graphs are stacked block-diagonally and
peeled in lockstep — one kernel pass per round for the whole batch — with
results bit-for-bit identical to the per-graph loop.
"""

from __future__ import annotations

import functools
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.results import PeelingResult
from repro.engine.config import DEFAULT_ENGINE, PeelingConfig
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.state import PeelState
from repro.parallel.backend import BatchedBackend, ExecutionBackend, get_backend

__all__ = ["peel", "peel_many", "peel_resumable", "resume"]


def _resolve_config(
    engine: Optional[str], config: Optional[PeelingConfig], opts: dict
) -> PeelingConfig:
    if config is None:
        return PeelingConfig.from_options(engine if engine is not None else DEFAULT_ENGINE, **opts)
    if engine is not None or opts:
        raise TypeError(
            "pass either a prebuilt config= or engine/keyword options, not both"
        )
    return config


def peel(
    graph: Hypergraph,
    engine: Optional[str] = None,
    *,
    config: Optional[PeelingConfig] = None,
    **opts,
) -> PeelingResult:
    """Peel ``graph`` with the named engine and return the result.

    Parameters
    ----------
    graph:
        Hypergraph to peel (the subtable engine additionally requires it to
        be partitioned).
    engine:
        Registered engine name (default ``"parallel"``); see
        :func:`repro.engine.available_engines`.
    config:
        A prebuilt :class:`PeelingConfig`; mutually exclusive with ``engine``
        and ``**opts``.
    **opts:
        ``k``, ``update``, ``max_rounds``, ``track_stats`` plus any
        engine-specific options (see :meth:`PeelingConfig.from_options`).
    """
    return _resolve_config(engine, config, opts).build().peel(graph)


def peel_resumable(
    graph: Hypergraph,
    engine: Optional[str] = None,
    *,
    config: Optional[PeelingConfig] = None,
    **opts,
) -> Tuple[PeelingResult, PeelState]:
    """Peel ``graph`` and keep the fixed-point state resident for :func:`resume`.

    Same resolution as :func:`peel`, but the engine must support the
    optional resumable surface (``parallel`` and ``sequential`` do); the
    returned :class:`~repro.kernels.state.PeelState` owns its buffers and
    carries ``rounds_completed``, so churn can later be applied to it
    (:func:`repro.kernels.rounds.drop_edges`) and peeled incrementally.
    """
    built = _resolve_config(engine, config, opts).build()
    hook = getattr(built, "peel_resumable", None)
    if hook is None:
        raise ValueError(
            f"engine {type(built).__name__!r} does not support resumable peeling; "
            "use 'parallel' or 'sequential'"
        )
    return hook(graph)


def resume(
    state: PeelState,
    dirty: np.ndarray,
    engine: Optional[str] = None,
    *,
    config: Optional[PeelingConfig] = None,
    **opts,
) -> PeelingResult:
    """Continue a resident fixed point after churn, via the named engine.

    ``state`` comes from :func:`peel_resumable` (mutated in the meantime by
    :func:`repro.kernels.rounds.drop_edges`); ``dirty`` lists the vertices
    whose degree the churn changed.  The engine configuration should match
    the one that produced the state — in particular ``k`` — since the state
    itself does not record it.  Engines without a ``resume`` hook raise
    ``ValueError`` naming the resumable ones.
    """
    built = _resolve_config(engine, config, opts).build()
    hook = getattr(built, "resume", None)
    if hook is None:
        raise ValueError(
            f"engine {type(built).__name__!r} does not support resumed peeling; "
            "use 'parallel' or 'sequential'"
        )
    return hook(state, dirty)


def _peel_one(config: PeelingConfig, graph: Hypergraph) -> PeelingResult:
    # Module-level so process-pool backends can pickle the work function.
    return config.build().peel(graph)


#: Engines whose schedule the fused batched path implements.  Other engines
#: selected with backend="batched" fall back to the serial per-graph loop
#: (the BatchedBackend contract: fuse what it can, degrade gracefully).
_BATCHABLE_ENGINES = ("parallel", "batched")


def _is_batchable(config: PeelingConfig, graphs: List[Hypergraph]) -> bool:
    """Whether the fused lockstep path can take this request.

    Unsupported engines and mixed-arity batches (whose endpoint rows cannot
    share one ``(m, r)`` array) degrade to the per-graph loop instead of
    failing — the BatchedBackend contract is that selecting it is safe for
    any input the other backends accept.
    """
    if config.engine not in _BATCHABLE_ENGINES:
        return False
    arities = {g.edge_size for g in graphs if g.num_edges > 0}
    return len(arities) <= 1


def _peel_many_fused(config: PeelingConfig, graphs: List[Hypergraph]) -> List[PeelingResult]:
    """Run a whole batch through the lockstep engine in fused chunks.

    Construction goes through the ordinary registry path
    (:meth:`PeelingConfig.build`), so shared fields and engine options —
    including the batched-only ``chunk_vertices`` knob — are validated
    exactly like everywhere else.
    """
    return config.replace(engine="batched").build().peel_many(graphs)


def _without_batched_only_options(config: PeelingConfig) -> PeelingConfig:
    """Drop options only the fused path understands before degrading.

    ``chunk_vertices`` tunes lockstep chunking and is documented as having
    no effect on results, so when a batched-backend request falls back to
    the per-graph loop it is ignored rather than rejected — the fallback
    must accept everything the fused path would have.
    """
    if "chunk_vertices" not in config.options:
        return config
    options = dict(config.options)
    options.pop("chunk_vertices")
    return config.replace(options=options)


def peel_many(
    graphs: Iterable[Hypergraph],
    engine: Optional[str] = None,
    *,
    backend: Union[str, ExecutionBackend] = "serial",
    max_workers: Optional[int] = None,
    config: Optional[PeelingConfig] = None,
    **opts,
) -> List[PeelingResult]:
    """Peel a batch of independent hypergraphs, in input order.

    Parameters
    ----------
    graphs:
        The hypergraphs to peel; results come back in the same order.
    engine, config, **opts:
        As in :func:`peel` — one configuration shared by every graph.
    backend:
        Backend name (``"serial"``, ``"batched"``, ``"threads"``,
        ``"processes"``) or an
        :class:`~repro.parallel.backend.ExecutionBackend` instance.  Named
        backends are created for the call and closed afterwards; instances
        are left open for the caller to reuse.  With ``"batched"`` and the
        parallel schedule the whole batch is stacked and peeled in lockstep
        (one kernel pass per round for all graphs); engines the fused path
        does not implement fall back to the serial per-graph loop.
    max_workers:
        Worker count for named pool backends (ignored for ``"serial"``,
        ``"batched"`` and backend instances).
    """
    resolved_config = _resolve_config(engine, config, opts)
    items = list(graphs)
    owned = isinstance(backend, str)
    resolved_backend = get_backend(backend, max_workers=max_workers) if owned else backend
    try:
        if isinstance(resolved_backend, BatchedBackend):
            if _is_batchable(resolved_config, items):
                return _peel_many_fused(resolved_config, items)
            resolved_config = _without_batched_only_options(resolved_config)
        return resolved_backend.map(functools.partial(_peel_one, resolved_config), items)
    finally:
        if owned:
            resolved_backend.close()
