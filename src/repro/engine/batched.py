"""The ``"batched"`` engine: lockstep parallel peeling over a whole batch.

:class:`BatchedPeeler` is the engine-registry face of
:func:`repro.kernels.batched.batched_peel`.  It implements the same
round-synchronous parallel schedule as
:class:`~repro.core.peeling.ParallelPeeler` — and produces bit-for-bit
identical :class:`~repro.core.results.PeelingResult`\\ s — but peels *many*
graphs per kernel pass instead of one, which is the difference between a
Python loop of B engine runs and ``max_g rounds`` fused vectorized rounds.

Use it directly (``BatchedPeeler(k).peel_many(graphs)``), through the
registry (``peel(graph, "batched", k=2)`` runs a batch of one), or — the
common path — via ``peel_many(graphs, "parallel", backend="batched")``,
which detects the batched execution backend and routes the whole batch
here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.results import PeelingResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import get_kernel
from repro.kernels.batched import batched_peel
from repro.utils.validation import check_positive_int

__all__ = ["BatchedPeeler", "DEFAULT_CHUNK_VERTICES"]

DEFAULT_CHUNK_VERTICES = 131_072
"""Default cap on stacked vertices per lockstep chunk.  Beyond roughly this
scale the stacked working set outgrows the cache hierarchy and per-round
passes turn memory-bound, so very large batches run *faster* as a short
sequence of cache-sized lockstep chunks (measured on the build host:
B=1024 graphs of n=10^3 peel ~1.4x faster in chunks of ~128 than as one
stack).  Chunks are independent, so results are unaffected."""


class BatchedPeeler:
    """Lockstep round-synchronous peeling of a batch of same-arity graphs.

    Parameters
    ----------
    k:
        Degree threshold; vertices of degree ``< k`` are removed each round.
    update:
        Work-accounting mode, ``"full"`` or ``"frontier"`` — identical
        semantics (and identical recorded work) to
        :class:`~repro.core.peeling.ParallelPeeler`.
    max_rounds:
        Safety cap on lockstep rounds (defaults to ``4 * max_n + 16``).
    track_stats:
        Record per-round :class:`~repro.core.results.RoundStats` per graph.
    kernel:
        Kernel backend name or instance (``None`` selects the default,
        ``"numpy"``).
    chunk_vertices:
        Cap on total stacked vertices per lockstep chunk (default
        :data:`DEFAULT_CHUNK_VERTICES`); batches exceeding it are processed
        as consecutive independent chunks.  Purely a performance knob —
        results are identical for any value.
    wide_ids:
        Force the wide ``int64`` stacked layout (compact 32-bit ids are
        the default whenever the chunk fits; results are bit-identical).
    """

    def __init__(
        self,
        k: int,
        *,
        update: str = "full",
        max_rounds: Optional[int] = None,
        track_stats: bool = True,
        kernel=None,
        chunk_vertices: int = DEFAULT_CHUNK_VERTICES,
        wide_ids: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if update not in ("full", "frontier"):
            raise ValueError(f"update must be 'full' or 'frontier', got {update!r}")
        self.update = update
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_stats = bool(track_stats)
        self.kernel = get_kernel(kernel)
        self.chunk_vertices = check_positive_int(chunk_vertices, "chunk_vertices")
        self.wide_ids = bool(wide_ids)

    def peel_many(self, graphs: Iterable[Hypergraph]) -> List[PeelingResult]:
        """Peel every graph in lockstep chunks; results in input order."""
        graphs = list(graphs)
        results: List[PeelingResult] = []
        start = 0
        while start < len(graphs):
            stop = start + 1  # a chunk always takes at least one graph
            total = graphs[start].num_vertices
            while (
                stop < len(graphs)
                and total + graphs[stop].num_vertices <= self.chunk_vertices
            ):
                total += graphs[stop].num_vertices
                stop += 1
            results.extend(
                batched_peel(
                    self.kernel,
                    graphs[start:stop],
                    self.k,
                    update=self.update,
                    max_rounds=self.max_rounds,
                    track_stats=self.track_stats,
                    wide_ids=self.wide_ids,
                )
            )
            start = stop
        return results

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Peel a single graph (a batch of one) — the engine-protocol face."""
        return self.peel_many([graph])[0]
