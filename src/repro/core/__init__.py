"""Peeling engines — the paper's primary contribution.

* :class:`~repro.core.peeling.ParallelPeeler` — round-synchronous parallel
  peeling (Sections 3–4): each round removes every vertex of degree ``< k``.
* :class:`~repro.core.peeling.SequentialPeeler` — the classical greedy
  one-at-a-time baseline.
* :class:`~repro.core.subtable.SubtablePeeler` — the Appendix B variant used
  by the GPU IBLT implementation: ``r`` serial subrounds per round, one per
  subtable.
* :func:`~repro.core.peeling.peel_to_kcore` — deprecated front door; use
  :func:`repro.peel` (the registry-backed API in :mod:`repro.engine`).

The engines are registered in the :mod:`repro.engine` registry under the
names ``"sequential"``, ``"parallel"`` and ``"subtable"``.
"""

from repro.core.peeling import ParallelPeeler, SequentialPeeler, peel_to_kcore
from repro.core.subtable import SubtablePeeler
from repro.core.results import PeelingResult, RoundStats, UNPEELED

__all__ = [
    "ParallelPeeler",
    "SequentialPeeler",
    "SubtablePeeler",
    "peel_to_kcore",
    "PeelingResult",
    "RoundStats",
    "UNPEELED",
]
