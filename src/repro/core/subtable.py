"""Subtable (sub-round) peeling — the Appendix B / GPU-implementation variant.

Any real parallel peeling implementation must avoid peeling the same edge
twice (in the IBLT setting, deleting the same item from the table twice
corrupts it).  The paper's fix is to partition the vertices into ``r``
subtables, hash each edge to exactly one vertex per subtable, and within each
round process the subtables *serially*: subround ``j`` removes, in parallel,
every vertex of subtable ``j`` whose degree is below ``k``.

Peeling subtable ``j`` can create newly peelable vertices in subtable
``j+1`` within the same round, which is why the process converges
"Fibonacci exponentially" (Theorem 7) instead of paying the naive factor-``r``
slowdown.  Table 5 reports the average number of *subrounds* and Table 6 the
per-subround survivor counts; both are reproduced from the
:class:`PeelingResult` this engine returns.

Each subround is one :func:`repro.kernels.peel_subround` step restricted to
the subtable's members — the same shared inner loop the parallel engine and
the IBLT decoders run, on whichever kernel backend was selected.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.core.results import PeelingResult, RoundStats
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import PeelingKernel, PeelState, get_kernel, peel_subround
from repro.kernels.arena import default_arena
from repro.utils.validation import check_positive_int

__all__ = ["SubtablePeeler"]


class SubtablePeeler:
    """Round-synchronous peeling with serial subtable subrounds (Appendix B).

    Parameters
    ----------
    k:
        Degree threshold.
    max_rounds:
        Safety cap on full rounds (defaults to ``4 * n + 16`` at run time).
    track_stats:
        Record one :class:`~repro.core.results.RoundStats` per subround.
    kernel:
        Kernel backend name or instance (``None`` selects the default,
        ``"numpy"``).
    wide_ids:
        Force the wide ``int64`` working layout (compact 32-bit ids are the
        default whenever the graph fits; results are bit-identical).

    Notes
    -----
    The hypergraph must be partitioned (built with
    :func:`repro.hypergraph.generators.partitioned_hypergraph` or carrying an
    explicit ``vertex_partition``); the number of subtables must equal the
    edge size ``r``, matching the IBLT layout the paper implements.
    """

    def __init__(
        self,
        k: int,
        *,
        max_rounds: Optional[int] = None,
        track_stats: bool = True,
        kernel: Union[str, PeelingKernel, None] = None,
        wide_ids: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_stats = bool(track_stats)
        self.kernel = get_kernel(kernel)
        self.wide_ids = bool(wide_ids)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run subtable peeling on a partitioned hypergraph.

        Returns
        -------
        PeelingResult
            ``num_subrounds`` is the index of the last subround that removed
            at least one vertex (the quantity averaged in Table 5);
            ``num_rounds`` is the number of full rounds started.
        """
        if not graph.is_partitioned:
            raise ValueError(
                "SubtablePeeler requires a partitioned hypergraph; build one "
                "with repro.hypergraph.partitioned_hypergraph"
            )
        r = graph.num_partitions
        if graph.num_edges and graph.edge_size != r:
            raise ValueError(
                f"number of subtables ({r}) must equal the edge size "
                f"({graph.edge_size}) for subtable peeling"
            )
        k = self.k
        kernel = self.kernel
        n = graph.num_vertices
        partition = graph.vertex_partition
        state = PeelState.from_graph(
            graph, wide_ids=self.wide_ids, arena=default_arena()
        )
        stats: List[RoundStats] = []

        subtable_members = [np.flatnonzero(partition == j) for j in range(r)]
        limit = self.max_rounds if self.max_rounds is not None else 4 * max(n, 1) + 16

        last_removing_subround = 0
        subround = 0

        for round_index in range(1, limit + 1):
            removed_this_round = 0
            for j in range(r):
                subround += 1
                outcome = peel_subround(
                    kernel,
                    state,
                    k,
                    round_index,
                    candidates=subtable_members[j],
                    arena=state.arena,
                )
                if outcome.num_removed:
                    removed_this_round += outcome.num_removed
                    last_removing_subround = subround
                if self.track_stats:
                    stats.append(
                        RoundStats(
                            round_index=subround,
                            vertices_peeled=outcome.num_removed,
                            edges_peeled=outcome.num_dying,
                            vertices_remaining=state.vertices_remaining,
                            edges_remaining=state.edges_remaining,
                            work=outcome.examined,
                            subtable=j,
                        )
                    )
            if removed_this_round == 0:
                break
        else:  # pragma: no cover - loop exhausted without fixed point
            raise RuntimeError(
                f"subtable peeling did not reach a fixed point within {limit} rounds"
            )

        # Trim trailing no-op subrounds from the stats so that
        # len(stats) mirrors the executed subrounds of the final partial round.
        if self.track_stats and last_removing_subround < len(stats):
            stats = stats[: max(last_removing_subround, 0)]

        num_rounds = 0
        if last_removing_subround:
            num_rounds = (last_removing_subround + r - 1) // r

        vertex_rounds, edge_rounds = state.result_peel_rounds()
        return PeelingResult(
            k=k,
            mode="subtable",
            num_rounds=num_rounds,
            num_subrounds=last_removing_subround,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
        )
