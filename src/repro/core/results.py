"""Result objects returned by the peeling engines.

Every engine produces a :class:`PeelingResult` carrying the full per-round
history of the process (survivor counts, peel rounds for every vertex and
edge, and work accounting used by the simulated parallel machine), so the
experiment harness can reproduce every column of the paper's tables from a
single run without re-executing the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["RoundStats", "PeelingResult", "UNPEELED", "DROPPED"]

UNPEELED = -1
"""Sentinel used in peel-round arrays for vertices/edges never peeled."""

DROPPED = -2
"""Sentinel used in edge peel-round arrays for edges deleted by *churn*
(:func:`repro.kernels.rounds.drop_edges`) rather than peeled by the process.
Distinct from :data:`UNPEELED` so a resumed run's core masks count only true
survivors."""


@dataclass(frozen=True)
class RoundStats:
    """Per-round bookkeeping emitted by the peeling engines.

    Attributes
    ----------
    round_index:
        1-based round number (for subtable peeling, the *subround* number).
    vertices_peeled:
        Number of vertices removed this round.
    edges_peeled:
        Number of edges removed this round.
    vertices_remaining:
        Vertices still unpeeled after this round.
    edges_remaining:
        Edges still present after this round.
    work:
        Number of vertex inspections performed this round (full scans inspect
        every live cell, frontier scans only the candidates); feeds the
        work/depth cost model of :mod:`repro.parallel`.
    subtable:
        Subtable processed this round (subtable engines only), else ``None``.
    """

    round_index: int
    vertices_peeled: int
    edges_peeled: int
    vertices_remaining: int
    edges_remaining: int
    work: int
    subtable: Optional[int] = None


@dataclass(frozen=True)
class PeelingResult:
    """Complete outcome of a peeling run.

    Attributes
    ----------
    k:
        Degree threshold used.
    mode:
        Engine identifier (``"parallel"``, ``"sequential"``, ``"subtable"``).
    num_rounds:
        Number of rounds in which at least one vertex was removed.  This is
        the quantity averaged in the paper's Table 1 ("Rounds") — the final
        fixed-point check that removes nothing is not counted.
    num_subrounds:
        Total subrounds executed (equal to ``num_rounds`` for non-subtable
        engines; for subtable peeling this is what Table 5 reports).
    success:
        True when the k-core is empty (no edges remain).
    vertex_peel_round:
        Array of shape ``(n,)``; entry ``v`` is the (1-based) round in which
        vertex ``v`` was peeled, or ``-1`` if it survives in the k-core.
        Subtable engines record the *round* (not subround) here.
    edge_peel_round:
        Array of shape ``(m,)``; analogous for edges.
    round_stats:
        Per-round :class:`RoundStats`, in execution order.
    peel_order:
        For sequential peeling, the order in which edges were removed (edge
        indices); empty for round-synchronous engines.
    resumed_from_round:
        Round the run was resumed from (0 for a from-scratch run).  Resumed
        runs continue stamping peel rounds after this value, so
        ``num_rounds`` stays the absolute round the process reached and
        :attr:`rounds_incremental` is the work this run actually did.
    """

    k: int
    mode: str
    num_rounds: int
    num_subrounds: int
    success: bool
    vertex_peel_round: np.ndarray
    edge_peel_round: np.ndarray
    round_stats: List[RoundStats] = field(default_factory=list)
    peel_order: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    resumed_from_round: int = 0

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the peeled hypergraph."""
        return int(self.vertex_peel_round.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of edges in the peeled hypergraph."""
        return int(self.edge_peel_round.shape[0])

    @property
    def rounds_incremental(self) -> int:
        """Productive rounds executed by this run (``num_rounds`` minus the
        resume origin).  Equal to ``num_rounds`` for from-scratch runs; for
        resumed runs this is what scales with the churn rather than ``n``."""
        return self.num_rounds - self.resumed_from_round

    @property
    def core_vertex_mask(self) -> np.ndarray:
        """Boolean mask of vertices never peeled (the k-core vertices)."""
        return self.vertex_peel_round == UNPEELED

    @property
    def core_edge_mask(self) -> np.ndarray:
        """Boolean mask of edges never peeled (the k-core edges)."""
        return self.edge_peel_round == UNPEELED

    @property
    def core_size(self) -> int:
        """Number of edges remaining in the k-core."""
        return int(self.core_edge_mask.sum())

    @property
    def vertices_remaining_per_round(self) -> np.ndarray:
        """Vertices still unpeeled after each executed (sub)round."""
        return np.array([s.vertices_remaining for s in self.round_stats], dtype=np.int64)

    @property
    def edges_remaining_per_round(self) -> np.ndarray:
        """Edges still present after each executed (sub)round."""
        return np.array([s.edges_remaining for s in self.round_stats], dtype=np.int64)

    @property
    def total_work(self) -> int:
        """Total vertex inspections across all rounds (work term of the cost model)."""
        return int(sum(s.work for s in self.round_stats))

    def survivors_after_round(self, round_index: int) -> int:
        """Vertices unpeeled after round ``round_index`` (1-based).

        Rounds past the last executed round return the final survivor count;
        round 0 returns the total vertex count.
        """
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        if round_index == 0:
            return self.num_vertices
        # Round-synchronous engines: one stats entry per round.  Subtable
        # engines: survivors after round i = survivors after its last subround.
        per_round = self._per_full_round_survivors()
        if round_index > len(per_round):
            return int(per_round[-1]) if per_round else self.num_vertices
        return int(per_round[round_index - 1])

    def _per_full_round_survivors(self) -> List[int]:
        if not self.round_stats:
            return []
        if self.mode != "subtable":
            return [s.vertices_remaining for s in self.round_stats]
        # Subtable engines emit one stats entry per subround; a new full round
        # starts whenever the subtable index wraps back to 0.
        survivors: List[int] = []
        for stats in self.round_stats:
            if stats.subtable in (None, 0):
                survivors.append(stats.vertices_remaining)
            else:
                survivors[-1] = stats.vertices_remaining
        return survivors

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "empty core" if self.success else f"core of {self.core_size} edges"
        resumed = (
            f", resumed_from_round={self.resumed_from_round}"
            f" rounds_incremental={self.rounds_incremental}"
            if self.resumed_from_round
            else ""
        )
        return (
            f"{self.mode} peeling (k={self.k}): {self.num_rounds} rounds"
            f" ({self.num_subrounds} subrounds), {status}{resumed}"
        )
