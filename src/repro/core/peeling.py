"""Sequential and round-synchronous parallel peeling engines.

The peeling process repeatedly removes vertices with degree less than ``k``
together with their incident edges; what remains is the k-core.  The paper's
subject is the *parallel* (round-synchronous) schedule: in each round every
vertex of degree ``< k`` is removed simultaneously.  Both schedules reach the
same k-core (it is order-independent); they differ only in round structure
and work, which is exactly what the experiments measure.

Implementation notes
--------------------
Both engines work on NumPy arrays: the ``(m, r)`` edge array plus live masks
and a degree vector.  The parallel engine's inner loop is fully vectorized
(boolean masks and ``np.subtract.at`` scatter updates), which is the
idiomatic pure-Python path to competitive throughput.  The sequential engine
keeps an explicit worklist and removes one vertex at a time, giving the
linear-time baseline the paper's serial implementation corresponds to.
"""

from __future__ import annotations

import warnings
from typing import List, Literal, Optional

import numpy as np

from repro.core.results import UNPEELED, PeelingResult, RoundStats
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import check_positive_int

__all__ = ["ParallelPeeler", "SequentialPeeler", "peel_to_kcore"]

UpdateMode = Literal["full", "frontier"]


class ParallelPeeler:
    """Round-synchronous parallel peeling (the process analyzed in Section 3).

    Parameters
    ----------
    k:
        Degree threshold; vertices of degree ``< k`` are removed each round.
    update:
        ``"full"`` re-examines every live vertex each round (this is what the
        paper's GPU implementation does — one thread per cell per round);
        ``"frontier"`` only re-examines vertices that lost an incident edge
        in the previous round.  Both produce identical results; they differ
        only in the recorded *work* (used by the cost model and the
        work-ablation benchmark).
    max_rounds:
        Safety cap on the number of rounds (defaults to ``4 * n + 16`` at run
        time, far above the theoretical maximum).
    track_stats:
        Record per-round :class:`~repro.core.results.RoundStats` (default
        True; disable for the tightest inner-loop benchmarks).
    """

    def __init__(
        self,
        k: int,
        *,
        update: UpdateMode = "full",
        max_rounds: Optional[int] = None,
        track_stats: bool = True,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if update not in ("full", "frontier"):
            raise ValueError(f"update must be 'full' or 'frontier', got {update!r}")
        self.update: UpdateMode = update
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_stats = bool(track_stats)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run the parallel peeling process on ``graph``.

        Returns
        -------
        PeelingResult
            ``num_rounds`` counts rounds that removed at least one vertex,
            matching the "Rounds" column of Table 1.
        """
        k = self.k
        n = graph.num_vertices
        m = graph.num_edges
        edges = graph.edges
        degrees = graph.degrees()
        vertex_alive = np.ones(n, dtype=bool)
        edge_alive = np.ones(m, dtype=bool)
        vertex_peel_round = np.full(n, UNPEELED, dtype=np.int64)
        edge_peel_round = np.full(m, UNPEELED, dtype=np.int64)
        stats: List[RoundStats] = []

        limit = self.max_rounds if self.max_rounds is not None else 4 * max(n, 1) + 16
        # Frontier mode starts by examining everything once.
        candidates = np.arange(n, dtype=np.int64)
        rounds = 0
        vertices_remaining = n
        edges_remaining = m

        for round_index in range(1, limit + 1):
            if self.update == "full":
                examined = int(vertex_alive.sum())
                removable_mask = vertex_alive & (degrees < k)
                removable = np.flatnonzero(removable_mask)
            else:
                if candidates.size:
                    cand = candidates[vertex_alive[candidates]]
                else:
                    cand = candidates
                examined = int(cand.size)
                removable = cand[degrees[cand] < k]
                removable_mask = np.zeros(n, dtype=bool)
                removable_mask[removable] = True

            if removable.size == 0:
                break
            rounds = round_index
            vertex_alive[removable] = False
            vertex_peel_round[removable] = round_index
            vertices_remaining -= int(removable.size)

            if m > 0:
                dying_mask = edge_alive & removable_mask[edges].any(axis=1)
                dying = np.flatnonzero(dying_mask)
            else:
                dying = np.empty(0, dtype=np.int64)
            touched: np.ndarray
            if dying.size:
                edge_alive[dying] = False
                edge_peel_round[dying] = round_index
                edges_remaining -= int(dying.size)
                endpoints = edges[dying].reshape(-1)
                np.subtract.at(degrees, endpoints, 1)
                touched = np.unique(endpoints)
            else:
                touched = np.empty(0, dtype=np.int64)

            if self.update == "frontier":
                candidates = touched[vertex_alive[touched]] if touched.size else touched

            if self.track_stats:
                stats.append(
                    RoundStats(
                        round_index=round_index,
                        vertices_peeled=int(removable.size),
                        edges_peeled=int(dying.size),
                        vertices_remaining=vertices_remaining,
                        edges_remaining=edges_remaining,
                        work=examined,
                    )
                )
        else:  # pragma: no cover - loop exhausted without fixed point
            raise RuntimeError(
                f"parallel peeling did not reach a fixed point within {limit} rounds"
            )

        return PeelingResult(
            k=k,
            mode="parallel",
            num_rounds=rounds,
            num_subrounds=rounds,
            success=edges_remaining == 0,
            vertex_peel_round=vertex_peel_round,
            edge_peel_round=edge_peel_round,
            round_stats=stats,
        )


class SequentialPeeler:
    """Greedy one-vertex-at-a-time peeling (the serial baseline).

    This is the classical linear-time algorithm: keep a worklist of vertices
    with degree ``< k``; repeatedly pop one, remove it and its incident
    edges, and push any neighbour whose degree drops below ``k``.  It reaches
    the same k-core as :class:`ParallelPeeler` but its "rounds" have no
    meaning — instead it reports the order in which edges were peeled, which
    the IBLT and erasure-code decoders rely on.
    """

    def __init__(self, k: int, *, track_stats: bool = True) -> None:
        self.k = check_positive_int(k, "k")
        self.track_stats = bool(track_stats)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run sequential peeling on ``graph``."""
        k = self.k
        n = graph.num_vertices
        m = graph.num_edges
        edges = graph.edges
        incidence_ptr = graph.incidence_ptr
        incidence_edges = graph.incidence_edges
        degrees = graph.degrees()
        vertex_alive = np.ones(n, dtype=bool)
        edge_alive = np.ones(m, dtype=bool)
        vertex_peel_round = np.full(n, UNPEELED, dtype=np.int64)
        edge_peel_round = np.full(m, UNPEELED, dtype=np.int64)
        peel_order: List[int] = []
        work = 0

        # Initial worklist: every vertex currently below the threshold.
        worklist = list(np.flatnonzero(degrees < k))
        step = 0
        while worklist:
            v = int(worklist.pop())
            work += 1
            if not vertex_alive[v] or degrees[v] >= k:
                continue
            step += 1
            vertex_alive[v] = False
            vertex_peel_round[v] = step
            for e in incidence_edges[incidence_ptr[v]: incidence_ptr[v + 1]]:
                e = int(e)
                if not edge_alive[e]:
                    continue
                edge_alive[e] = False
                edge_peel_round[e] = step
                peel_order.append(e)
                for u in edges[e]:
                    u = int(u)
                    degrees[u] -= 1
                    if vertex_alive[u] and degrees[u] < k:
                        worklist.append(u)

        edges_remaining = int(edge_alive.sum())
        stats: List[RoundStats] = []
        if self.track_stats:
            stats.append(
                RoundStats(
                    round_index=1,
                    vertices_peeled=int((~vertex_alive).sum()),
                    edges_peeled=m - edges_remaining,
                    vertices_remaining=int(vertex_alive.sum()),
                    edges_remaining=edges_remaining,
                    work=work,
                )
            )
        return PeelingResult(
            k=k,
            mode="sequential",
            num_rounds=step and 1 or 0,
            num_subrounds=step and 1 or 0,
            success=edges_remaining == 0,
            vertex_peel_round=vertex_peel_round,
            edge_peel_round=edge_peel_round,
            round_stats=stats,
            peel_order=np.asarray(peel_order, dtype=np.int64),
        )


def peel_to_kcore(
    graph: Hypergraph,
    k: int,
    *,
    mode: Literal["parallel", "sequential", "subtable"] = "parallel",
    update: UpdateMode = "full",
) -> PeelingResult:
    """Deprecated front door: peel ``graph`` to its k-core.

    .. deprecated::
        Use :func:`repro.peel` instead — ``peel(graph, mode, k=k)`` — which
        resolves engines through the registry and accepts engine-specific
        options.  This shim delegates to it and will be removed in a future
        release.

    Parameters
    ----------
    graph:
        The hypergraph to peel.
    k:
        Degree threshold.
    mode:
        Engine name: ``"parallel"`` (round-synchronous, the paper's main
        subject), ``"sequential"`` (greedy baseline) or ``"subtable"``
        (Appendix B; requires a partitioned hypergraph).
    update:
        Work-accounting mode for the parallel engine (ignored otherwise).
    """
    warnings.warn(
        "peel_to_kcore is deprecated; use repro.peel(graph, engine, k=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import peel  # local import avoids a cycle

    return peel(graph, mode, k=k, update=update)
