"""Sequential and round-synchronous parallel peeling engines.

The peeling process repeatedly removes vertices with degree less than ``k``
together with their incident edges; what remains is the k-core.  The paper's
subject is the *parallel* (round-synchronous) schedule: in each round every
vertex of degree ``< k`` is removed simultaneously.  Both schedules reach the
same k-core (it is order-independent); they differ only in round structure
and work, which is exactly what the experiments measure.

Implementation notes
--------------------
Both engines are thin *schedules* over the shared kernel layer
(:mod:`repro.kernels`): they own the loop structure and statistics while
every state mutation — removable selection, edge death, degree scatter —
runs through a :class:`~repro.kernels.base.PeelingKernel` backend selected
by the ``kernel=`` option (``"numpy"`` reference backend by default; the
compiled ``"numba"`` / ``"cffi"`` tiers when their toolchains are present).
Compiled backends additionally fuse the whole subround into one pass (see
:meth:`~repro.kernels.base.PeelingKernel.fused_subround`); the parallel
engine attaches the CSR incidence to the peel state so that fused path can
find dying edges in work proportional to the removals.  All backends are
bit-exact, so swapping one changes wall-clock time and nothing else.
"""

from __future__ import annotations

import warnings
from typing import List, Literal, Optional, Union

from repro.core.results import PeelingResult, RoundStats
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import PeelingKernel, PeelState, get_kernel, peel_subround
from repro.kernels.arena import default_arena
from repro.utils.validation import check_positive_int

__all__ = ["ParallelPeeler", "SequentialPeeler", "peel_to_kcore"]

UpdateMode = Literal["full", "frontier"]

KernelLike = Union[str, PeelingKernel, None]


class ParallelPeeler:
    """Round-synchronous parallel peeling (the process analyzed in Section 3).

    Parameters
    ----------
    k:
        Degree threshold; vertices of degree ``< k`` are removed each round.
    update:
        ``"full"`` re-examines every live vertex each round (this is what the
        paper's GPU implementation does — one thread per cell per round);
        ``"frontier"`` only re-examines vertices that lost an incident edge
        in the previous round.  Both produce identical results; they differ
        only in the recorded *work* (used by the cost model and the
        work-ablation benchmark).
    max_rounds:
        Safety cap on the number of rounds (defaults to ``4 * n + 16`` at run
        time, far above the theoretical maximum).
    track_stats:
        Record per-round :class:`~repro.core.results.RoundStats` (default
        True; disable for the tightest inner-loop benchmarks).
    kernel:
        Kernel backend supplying the round primitives: a registered name
        (see :func:`repro.kernels.available_kernels`) or a ready
        :class:`~repro.kernels.base.PeelingKernel` instance; ``None`` selects
        the default (``"numpy"``).
    wide_ids:
        Force the wide ``int64`` working layout; by default the state is
        compact (32-bit ids) whenever the graph fits, which halves the
        per-round memory traffic.  Results are bit-identical either way.
    """

    def __init__(
        self,
        k: int,
        *,
        update: UpdateMode = "full",
        max_rounds: Optional[int] = None,
        track_stats: bool = True,
        kernel: KernelLike = None,
        wide_ids: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if update not in ("full", "frontier"):
            raise ValueError(f"update must be 'full' or 'frontier', got {update!r}")
        self.update: UpdateMode = update
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_stats = bool(track_stats)
        self.kernel = get_kernel(kernel)
        self.wide_ids = bool(wide_ids)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run the parallel peeling process on ``graph``.

        Returns
        -------
        PeelingResult
            ``num_rounds`` counts rounds that removed at least one vertex,
            matching the "Rounds" column of Table 1.
        """
        k = self.k
        kernel = self.kernel
        frontier_mode = self.update == "frontier"
        n = graph.num_vertices
        # Fused backends find dying edges through the CSR incidence (work
        # proportional to the removals instead of an O(m·r) edge scan); the
        # graph caches these arrays across runs.  The NumPy reference path
        # never reads them, so it never pays for them.  The thread-local
        # arena backs the mutable arrays, so repeat trials on one worker
        # reuse the same buffers instead of reallocating the working set.
        state = PeelState.from_graph(
            graph,
            wide_ids=self.wide_ids,
            arena=default_arena(),
            attach_incidence=getattr(kernel, "fused_subround", None) is not None,
        )
        stats: List[RoundStats] = []

        limit = self.max_rounds if self.max_rounds is not None else 4 * max(n, 1) + 16
        # Frontier mode starts by examining everything once; full mode passes
        # candidates=None so the kernel scans every live vertex each round.
        if frontier_mode:
            state.frontier = default_arena().arange("engine/frontier", n)
        rounds = 0

        for round_index in range(1, limit + 1):
            outcome = peel_subround(
                kernel,
                state,
                k,
                round_index,
                candidates=state.frontier if frontier_mode else None,
                collect_touched=frontier_mode,
                arena=state.arena,
            )
            if outcome.num_removed == 0:
                break
            rounds = round_index
            if frontier_mode:
                kernel.refresh_frontier(state, outcome.touched)
            if self.track_stats:
                stats.append(
                    RoundStats(
                        round_index=round_index,
                        vertices_peeled=outcome.num_removed,
                        edges_peeled=outcome.num_dying,
                        vertices_remaining=state.vertices_remaining,
                        edges_remaining=state.edges_remaining,
                        work=outcome.examined,
                    )
                )
        else:  # pragma: no cover - loop exhausted without fixed point
            raise RuntimeError(
                f"parallel peeling did not reach a fixed point within {limit} rounds"
            )

        vertex_rounds, edge_rounds = state.result_peel_rounds()
        return PeelingResult(
            k=k,
            mode="parallel",
            num_rounds=rounds,
            num_subrounds=rounds,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
        )


class SequentialPeeler:
    """Greedy one-vertex-at-a-time peeling (the serial baseline).

    This is the classical linear-time algorithm: keep a worklist of vertices
    with degree ``< k``; repeatedly pop one, remove it and its incident
    edges, and push any neighbour whose degree drops below ``k``.  It reaches
    the same k-core as :class:`ParallelPeeler` but its "rounds" have no
    meaning — instead it reports the order in which edges were peeled, which
    the IBLT and erasure-code decoders rely on.  The worklist loop itself is
    a kernel primitive (:meth:`~repro.kernels.base.PeelingKernel.sequential_peel`),
    so JIT backends compile it.
    """

    def __init__(
        self,
        k: int,
        *,
        track_stats: bool = True,
        kernel: KernelLike = None,
        wide_ids: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.track_stats = bool(track_stats)
        self.kernel = get_kernel(kernel)
        self.wide_ids = bool(wide_ids)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run sequential peeling on ``graph``."""
        state = PeelState.from_graph(
            graph,
            wide_ids=self.wide_ids,
            arena=default_arena(),
            attach_incidence=True,
        )
        peel_order, work, step = self.kernel.sequential_peel(
            state, self.k, state.incidence_ptr, state.incidence_edges
        )

        stats: List[RoundStats] = []
        if self.track_stats:
            stats.append(
                RoundStats(
                    round_index=1,
                    vertices_peeled=state.num_vertices - state.vertices_remaining,
                    edges_peeled=state.num_edges - state.edges_remaining,
                    vertices_remaining=state.vertices_remaining,
                    edges_remaining=state.edges_remaining,
                    work=work,
                )
            )
        num_rounds = 1 if step else 0
        vertex_rounds, edge_rounds = state.result_peel_rounds()
        return PeelingResult(
            k=self.k,
            mode="sequential",
            num_rounds=num_rounds,
            num_subrounds=num_rounds,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
            peel_order=peel_order,
        )


def peel_to_kcore(
    graph: Hypergraph,
    k: int,
    *,
    mode: Literal["parallel", "sequential", "subtable"] = "parallel",
    update: UpdateMode = "full",
) -> PeelingResult:
    """Deprecated front door: peel ``graph`` to its k-core.

    .. deprecated::
        Use :func:`repro.peel` instead — ``peel(graph, mode, k=k)`` — which
        resolves engines through the registry and accepts engine-specific
        options.  This shim delegates to it and will be removed in a future
        release.

    Parameters
    ----------
    graph:
        The hypergraph to peel.
    k:
        Degree threshold.
    mode:
        Engine name: ``"parallel"`` (round-synchronous, the paper's main
        subject), ``"sequential"`` (greedy baseline) or ``"subtable"``
        (Appendix B; requires a partitioned hypergraph).
    update:
        Work-accounting mode for the parallel engine (ignored otherwise).
    """
    warnings.warn(
        "peel_to_kcore is deprecated; use repro.peel(graph, engine, k=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import peel  # local import avoids a cycle

    return peel(graph, mode, k=k, update=update)
