"""Sequential and round-synchronous parallel peeling engines.

The peeling process repeatedly removes vertices with degree less than ``k``
together with their incident edges; what remains is the k-core.  The paper's
subject is the *parallel* (round-synchronous) schedule: in each round every
vertex of degree ``< k`` is removed simultaneously.  Both schedules reach the
same k-core (it is order-independent); they differ only in round structure
and work, which is exactly what the experiments measure.

Implementation notes
--------------------
Both engines are thin *schedules* over the shared kernel layer
(:mod:`repro.kernels`): they own the loop structure and statistics while
every state mutation — removable selection, edge death, degree scatter —
runs through a :class:`~repro.kernels.base.PeelingKernel` backend selected
by the ``kernel=`` option (``"numpy"`` reference backend by default; the
compiled ``"numba"`` / ``"cffi"`` tiers when their toolchains are present).
Compiled backends additionally fuse the whole subround into one pass (see
:meth:`~repro.kernels.base.PeelingKernel.fused_subround`); the parallel
engine attaches the CSR incidence to the peel state so that fused path can
find dying edges in work proportional to the removals.  All backends are
bit-exact, so swapping one changes wall-clock time and nothing else.
"""

from __future__ import annotations

import warnings
from typing import List, Literal, Optional, Tuple, Union

import numpy as np

from repro.core.results import PeelingResult, RoundStats
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import PeelingKernel, PeelState, get_kernel, peel_subround
from repro.kernels.arena import default_arena
from repro.kernels.rounds import reseed_frontier
from repro.utils.validation import check_positive_int

__all__ = ["ParallelPeeler", "SequentialPeeler", "peel_to_kcore"]

UpdateMode = Literal["full", "frontier"]

KernelLike = Union[str, PeelingKernel, None]


class ParallelPeeler:
    """Round-synchronous parallel peeling (the process analyzed in Section 3).

    Parameters
    ----------
    k:
        Degree threshold; vertices of degree ``< k`` are removed each round.
    update:
        ``"full"`` re-examines every live vertex each round (this is what the
        paper's GPU implementation does — one thread per cell per round);
        ``"frontier"`` only re-examines vertices that lost an incident edge
        in the previous round.  Both produce identical results; they differ
        only in the recorded *work* (used by the cost model and the
        work-ablation benchmark).
    max_rounds:
        Safety cap on the number of rounds (defaults to ``4 * n + 16`` at run
        time, far above the theoretical maximum).
    track_stats:
        Record per-round :class:`~repro.core.results.RoundStats` (default
        True; disable for the tightest inner-loop benchmarks).
    kernel:
        Kernel backend supplying the round primitives: a registered name
        (see :func:`repro.kernels.available_kernels`) or a ready
        :class:`~repro.kernels.base.PeelingKernel` instance; ``None`` selects
        the default (``"numpy"``).
    wide_ids:
        Force the wide ``int64`` working layout; by default the state is
        compact (32-bit ids) whenever the graph fits, which halves the
        per-round memory traffic.  Results are bit-identical either way.
    """

    def __init__(
        self,
        k: int,
        *,
        update: UpdateMode = "full",
        max_rounds: Optional[int] = None,
        track_stats: bool = True,
        kernel: KernelLike = None,
        wide_ids: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        if update not in ("full", "frontier"):
            raise ValueError(f"update must be 'full' or 'frontier', got {update!r}")
        self.update: UpdateMode = update
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_stats = bool(track_stats)
        self.kernel = get_kernel(kernel)
        self.wide_ids = bool(wide_ids)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run the parallel peeling process on ``graph``.

        Returns
        -------
        PeelingResult
            ``num_rounds`` counts rounds that removed at least one vertex,
            matching the "Rounds" column of Table 1.
        """
        k = self.k
        kernel = self.kernel
        frontier_mode = self.update == "frontier"
        n = graph.num_vertices
        # Fused backends find dying edges through the CSR incidence (work
        # proportional to the removals instead of an O(m·r) edge scan); the
        # graph caches these arrays across runs.  The NumPy reference path
        # never reads them, so it never pays for them.  The thread-local
        # arena backs the mutable arrays, so repeat trials on one worker
        # reuse the same buffers instead of reallocating the working set.
        state = PeelState.from_graph(
            graph,
            wide_ids=self.wide_ids,
            arena=default_arena(),
            attach_incidence=getattr(kernel, "fused_subround", None) is not None,
        )
        # Frontier mode starts by examining everything once; full mode passes
        # candidates=None so the kernel scans every live vertex each round.
        if frontier_mode:
            state.frontier = default_arena().arange("engine/frontier", n)
        stats: List[RoundStats] = []
        rounds = self._run_rounds(state, frontier_mode=frontier_mode, stats=stats)

        vertex_rounds, edge_rounds = state.result_peel_rounds()
        return PeelingResult(
            k=k,
            mode="parallel",
            num_rounds=rounds,
            num_subrounds=rounds,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
        )

    def _run_rounds(
        self,
        state: PeelState,
        *,
        frontier_mode: bool,
        stats: List[RoundStats],
    ) -> int:
        """Drive ``state`` to its fixed point, starting after any completed rounds.

        The shared round loop behind both :meth:`peel` (``rounds_completed ==
        0``) and :meth:`resume` (a checkpointed fixed point with a reseeded
        frontier).  Round indices are absolute: a resumed run stamps rounds
        ``rounds_completed + 1, ...`` so the peel-round arrays of an
        incremental run line up with the process history.  Returns the last
        productive (absolute) round and records it on the state.
        """
        k = self.k
        kernel = self.kernel
        start = state.rounds_completed
        limit = (
            self.max_rounds
            if self.max_rounds is not None
            else 4 * max(state.num_vertices, 1) + 16
        )
        rounds = start

        for round_index in range(start + 1, start + limit + 1):
            outcome = peel_subround(
                kernel,
                state,
                k,
                round_index,
                candidates=state.frontier if frontier_mode else None,
                collect_touched=frontier_mode,
                arena=state.arena,
            )
            if outcome.num_removed == 0:
                break
            rounds = round_index
            if frontier_mode:
                kernel.refresh_frontier(state, outcome.touched)
            if self.track_stats:
                stats.append(
                    RoundStats(
                        round_index=round_index,
                        vertices_peeled=outcome.num_removed,
                        edges_peeled=outcome.num_dying,
                        vertices_remaining=state.vertices_remaining,
                        edges_remaining=state.edges_remaining,
                        work=outcome.examined,
                    )
                )
        else:  # pragma: no cover - loop exhausted without fixed point
            raise RuntimeError(
                f"parallel peeling did not reach a fixed point within {limit} rounds"
            )

        state.rounds_completed = rounds
        return rounds

    def peel_resumable(self, graph: Hypergraph) -> Tuple[PeelingResult, PeelState]:
        """Peel ``graph`` and keep the fixed-point state resident for :meth:`resume`.

        Unlike :meth:`peel`, the working arrays are *owned* (no arena): the
        thread-local arena buffers would be recycled by the next peel on this
        thread, and a resumable state must outlive arbitrary later work.  The
        returned result is identical to :meth:`peel`'s (the parity tests pin
        this); its peel-round arrays are copies, so later ``resume`` calls
        mutating the state never retroactively change a returned result.
        """
        frontier_mode = self.update == "frontier"
        state = PeelState.from_graph(
            graph,
            wide_ids=self.wide_ids,
            arena=None,
            attach_incidence=getattr(self.kernel, "fused_subround", None) is not None,
        )
        if frontier_mode:
            state.frontier = np.arange(graph.num_vertices, dtype=np.int64)
        stats: List[RoundStats] = []
        rounds = self._run_rounds(state, frontier_mode=frontier_mode, stats=stats)
        vertex_rounds, edge_rounds = state.result_peel_rounds(force_copy=True)
        result = PeelingResult(
            k=self.k,
            mode="parallel",
            num_rounds=rounds,
            num_subrounds=rounds,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
        )
        return result, state

    def resume(self, state: PeelState, dirty: np.ndarray) -> PeelingResult:
        """Continue peeling a checkpointed fixed point after churn.

        ``state`` is a resident state from :meth:`peel_resumable` (or a
        ``PeelState.resume``-restored checkpoint) whose graph was mutated by
        dropping edges (:func:`repro.kernels.rounds.drop_edges`); ``dirty``
        lists the vertices whose degree those mutations changed.  Only those
        vertices can have become newly removable — the fixed point is
        monotone everywhere else — so the resumed run always uses the
        frontier schedule seeded from ``dirty``
        (:func:`~repro.kernels.rounds.reseed_frontier`), regardless of the
        configured ``update`` mode: the whole point is churn-proportional
        work.  Round stamps continue after ``resumed_from_round``, and the
        surviving core is identical to a from-scratch peel of the mutated
        graph (order-independence of peeling; the resume tests pin this).
        """
        reseed_frontier(self.kernel, state, dirty)
        start = state.rounds_completed
        stats: List[RoundStats] = []
        rounds = self._run_rounds(state, frontier_mode=True, stats=stats)
        vertex_rounds, edge_rounds = state.result_peel_rounds(force_copy=True)
        return PeelingResult(
            k=self.k,
            mode="parallel",
            num_rounds=rounds,
            num_subrounds=rounds - start,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
            resumed_from_round=start,
        )


class SequentialPeeler:
    """Greedy one-vertex-at-a-time peeling (the serial baseline).

    This is the classical linear-time algorithm: keep a worklist of vertices
    with degree ``< k``; repeatedly pop one, remove it and its incident
    edges, and push any neighbour whose degree drops below ``k``.  It reaches
    the same k-core as :class:`ParallelPeeler` but its "rounds" have no
    meaning — instead it reports the order in which edges were peeled, which
    the IBLT and erasure-code decoders rely on.  The worklist loop itself is
    a kernel primitive (:meth:`~repro.kernels.base.PeelingKernel.sequential_peel`),
    so JIT backends compile it.
    """

    def __init__(
        self,
        k: int,
        *,
        track_stats: bool = True,
        kernel: KernelLike = None,
        wide_ids: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.track_stats = bool(track_stats)
        self.kernel = get_kernel(kernel)
        self.wide_ids = bool(wide_ids)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run sequential peeling on ``graph``."""
        state = PeelState.from_graph(
            graph,
            wide_ids=self.wide_ids,
            arena=default_arena(),
            attach_incidence=True,
        )
        peel_order, work, step = self.kernel.sequential_peel(
            state, self.k, state.incidence_ptr, state.incidence_edges
        )

        stats: List[RoundStats] = []
        if self.track_stats:
            stats.append(
                RoundStats(
                    round_index=1,
                    vertices_peeled=state.num_vertices - state.vertices_remaining,
                    edges_peeled=state.num_edges - state.edges_remaining,
                    vertices_remaining=state.vertices_remaining,
                    edges_remaining=state.edges_remaining,
                    work=work,
                )
            )
        num_rounds = 1 if step else 0
        vertex_rounds, edge_rounds = state.result_peel_rounds()
        return PeelingResult(
            k=self.k,
            mode="sequential",
            num_rounds=num_rounds,
            num_subrounds=num_rounds,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
            peel_order=peel_order,
        )

    def peel_resumable(self, graph: Hypergraph) -> Tuple[PeelingResult, PeelState]:
        """Peel ``graph`` keeping the fixed-point state resident for :meth:`resume`.

        The state owns its buffers (no arena — it must outlive later peels on
        this thread) and records the worklist *step* counter in
        ``rounds_completed``, so a resumed run continues stamping the
        per-vertex/edge removal steps where this run stopped.
        """
        state = PeelState.from_graph(
            graph,
            wide_ids=self.wide_ids,
            arena=None,
            attach_incidence=True,
        )
        peel_order, work, step = self.kernel.sequential_peel(
            state, self.k, state.incidence_ptr, state.incidence_edges
        )
        state.rounds_completed = step

        stats: List[RoundStats] = []
        if self.track_stats:
            stats.append(
                RoundStats(
                    round_index=1,
                    vertices_peeled=state.num_vertices - state.vertices_remaining,
                    edges_peeled=state.num_edges - state.edges_remaining,
                    vertices_remaining=state.vertices_remaining,
                    edges_remaining=state.edges_remaining,
                    work=work,
                )
            )
        num_rounds = 1 if step else 0
        vertex_rounds, edge_rounds = state.result_peel_rounds(force_copy=True)
        result = PeelingResult(
            k=self.k,
            mode="sequential",
            num_rounds=num_rounds,
            num_subrounds=num_rounds,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
            peel_order=peel_order,
        )
        return result, state

    def resume(self, state: PeelState, dirty: np.ndarray) -> PeelingResult:
        """Continue the greedy worklist from a checkpointed fixed point.

        Seeds the worklist with the live members of ``dirty`` (the vertices
        whose degree the churn changed — only they can have dropped below
        ``k``) and continues the per-vertex/edge step stamps from
        ``state.rounds_completed``.  The surviving core equals a from-scratch
        sequential peel of the mutated graph, and ``peel_order`` lists only
        the *incrementally* removed edges.  Requires the CSR incidence the
        resumable state attaches; the loop mirrors the kernel's
        ``sequential_peel`` worklist exactly, in plain Python — incremental
        work is churn-sized, so a compiled inner loop buys nothing here.
        """
        k = self.k
        edges = state.edges
        degrees = state.degrees
        vertex_alive = state.vertex_alive
        edge_alive = state.edge_alive
        vertex_peel_round = state.vertex_peel_round
        edge_peel_round = state.edge_peel_round
        incidence_ptr = state.incidence_ptr
        incidence_edges = state.incidence_edges
        if incidence_ptr is None or incidence_edges is None:
            raise ValueError(
                "sequential resume requires a state with the CSR incidence attached"
                " (use SequentialPeeler.peel_resumable to create one)"
            )
        dirty = np.unique(np.asarray(dirty, dtype=np.int64))
        worklist = [int(v) for v in dirty if vertex_alive[v] and degrees[v] < k]
        start_step = state.rounds_completed
        step = start_step
        work = 0
        peel_order: List[int] = []
        while worklist:
            v = worklist.pop()
            work += 1
            if not vertex_alive[v] or degrees[v] >= k:
                continue
            step += 1
            vertex_alive[v] = False
            vertex_peel_round[v] = step
            for e in incidence_edges[incidence_ptr[v]: incidence_ptr[v + 1]]:
                e = int(e)
                if not edge_alive[e]:
                    continue
                edge_alive[e] = False
                edge_peel_round[e] = step
                peel_order.append(e)
                for u in edges[e]:
                    u = int(u)
                    degrees[u] -= 1
                    if vertex_alive[u] and degrees[u] < k:
                        worklist.append(u)
        state.vertices_remaining = int(vertex_alive.sum())
        state.edges_remaining = int(edge_alive.sum())
        state.rounds_completed = step

        resumed_from = 1 if start_step else 0
        num_rounds = 1 if step else 0
        stats: List[RoundStats] = []
        if self.track_stats:
            stats.append(
                RoundStats(
                    round_index=resumed_from + 1,
                    vertices_peeled=step - start_step,
                    edges_peeled=len(peel_order),
                    vertices_remaining=state.vertices_remaining,
                    edges_remaining=state.edges_remaining,
                    work=work,
                )
            )
        vertex_rounds, edge_rounds = state.result_peel_rounds(force_copy=True)
        return PeelingResult(
            k=k,
            mode="sequential",
            num_rounds=max(num_rounds, resumed_from),
            num_subrounds=1 if step > start_step else 0,
            success=state.done,
            vertex_peel_round=vertex_rounds,
            edge_peel_round=edge_rounds,
            round_stats=stats,
            peel_order=np.asarray(peel_order, dtype=np.int64),
            resumed_from_round=resumed_from,
        )


def peel_to_kcore(
    graph: Hypergraph,
    k: int,
    *,
    mode: Literal["parallel", "sequential", "subtable"] = "parallel",
    update: UpdateMode = "full",
) -> PeelingResult:
    """Deprecated front door: peel ``graph`` to its k-core.

    .. deprecated::
        Use :func:`repro.peel` instead — ``peel(graph, mode, k=k)`` — which
        resolves engines through the registry and accepts engine-specific
        options.  This shim delegates to it and will be removed in a future
        release.

    Parameters
    ----------
    graph:
        The hypergraph to peel.
    k:
        Degree threshold.
    mode:
        Engine name: ``"parallel"`` (round-synchronous, the paper's main
        subject), ``"sequential"`` (greedy baseline) or ``"subtable"``
        (Appendix B; requires a partitioned hypergraph).
    update:
        Work-accounting mode for the parallel engine (ignored otherwise).
    """
    warnings.warn(
        "peel_to_kcore is deprecated; use repro.peel(graph, engine, k=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import peel  # local import avoids a cycle

    return peel(graph, mode, k=k, update=update)
