"""Atomic-XOR conflict accounting.

Section 6 of the paper: *"atomic operations can be a bottleneck in any
parallel implementation; if t threads try to write to the same memory
location, the algorithm will take at least t (serial) time steps."*

During a parallel IBLT insertion round every item issues ``r`` atomic XORs;
during a recovery round every recovered item issues up to ``r`` atomic XORs
into other cells.  The depth contribution of a round is therefore the maximum
number of XORs landing on any single cell.  :class:`AtomicConflictTracker`
computes that maximum from the list of target cells, and
:func:`atomic_xor_depth` is the stateless helper used by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["atomic_xor_depth", "AtomicConflictTracker"]


def atomic_xor_depth(targets: Sequence[int] | np.ndarray, num_cells: int) -> int:
    """Serial depth induced by atomic XORs onto ``targets``.

    Returns the maximum multiplicity of any cell among ``targets`` — the
    number of serialized steps a round needs when every conflicting write to
    the same cell must execute one after the other.  An empty target list has
    depth 0.
    """
    arr = np.asarray(targets, dtype=np.int64)
    if arr.size == 0:
        return 0
    if num_cells <= 0:
        raise ValueError(f"num_cells must be positive, got {num_cells}")
    if arr.min() < 0 or arr.max() >= num_cells:
        raise ValueError("atomic XOR target out of range")
    # Count only the cells actually hit: a bincount(minlength=num_cells)
    # would allocate one entry per *table cell*, which for a handful of
    # targets in a 10^8-cell table is hundreds of megabytes of zeros.
    _, counts = np.unique(arr, return_counts=True)
    return int(counts.max())


@dataclass
class AtomicConflictTracker:
    """Accumulates per-round atomic-conflict statistics.

    Attributes
    ----------
    num_cells:
        Size of the table the atomics target.
    round_depths:
        Per recorded round, the maximum number of conflicting XORs on one cell.
    round_ops:
        Per recorded round, the total number of XORs issued.
    """

    num_cells: int
    round_depths: List[int] = field(default_factory=list)
    round_ops: List[int] = field(default_factory=list)

    def record_round(self, targets: Sequence[int] | np.ndarray) -> int:
        """Record one round of atomic XORs and return its conflict depth."""
        depth = atomic_xor_depth(targets, self.num_cells)
        self.round_depths.append(depth)
        self.round_ops.append(int(np.asarray(targets).size))
        return depth

    @property
    def total_ops(self) -> int:
        """Total atomic XORs recorded across all rounds."""
        return int(sum(self.round_ops))

    @property
    def max_depth(self) -> int:
        """Worst conflict depth over all recorded rounds (0 if none)."""
        return max(self.round_depths, default=0)

    @property
    def total_depth(self) -> int:
        """Sum of per-round conflict depths (serialized critical-path steps)."""
        return int(sum(self.round_depths))

    def reset(self) -> None:
        """Forget all recorded rounds."""
        self.round_depths.clear()
        self.round_ops.clear()
