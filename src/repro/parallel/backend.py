"""Execution backends for running independent trials.

The experiment harness and :func:`repro.engine.peel_many` run many
independent peeling trials; trials are embarrassingly parallel, so they can
be distributed over a worker pool.  Three backends ship by default, all
behind the same tiny interface (``map``) so callers never special-case:

* ``"serial"`` — run in the calling thread (deterministic, zero overhead).
* ``"threads"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  CPython's GIL means this only helps to the extent the NumPy kernels
  release the GIL, but it exercises the code path and benefits on real
  multi-core hosts.
* ``"processes"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`,
  which sidesteps the GIL entirely; the work function and items must be
  picklable (module-level functions, ``functools.partial`` of them, plain
  data objects).
* ``"batched"`` — a marker backend requesting *fused* execution: layers
  that know how to stack their work items into one vectorized pass
  (``peel_many``, the sweep scheduler's cell batching) detect it and take
  the fused path; for opaque callables it degrades to serial execution, so
  it is safe to select anywhere a backend name is accepted.

Additional backends plug in through :func:`register_backend` and become
selectable by name everywhere a backend name is accepted (``peel_many``,
``run_trials``, the CLI's ``--backend`` flag).
"""

from __future__ import annotations

import inspect
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.utils.registry import Registry
from repro.utils.validation import check_positive_int

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "BatchedBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
]

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend:
    """Interface: map a function over a sequence of work items, in order."""

    name: str = "abstract"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item and return results in input order."""
        raise NotImplementedError

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        """Yield ``(input_index, result)`` pairs as results become available.

        Completion order is backend-dependent; the index identifies the input
        item.  The sweep scheduler consumes this to aggregate and checkpoint
        cells as soon as their trials finish.  The default delegates to
        :meth:`map` (correct for any backend, but yields only after every
        item is done); the built-in backends override it to stream.
        """
        for index, result in enumerate(self.map(fn, items)):
            yield index, result

    def close(self) -> None:
        """Release any resources held by the backend (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every item in the calling thread (deterministic, zero overhead)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        for index, item in enumerate(items):
            yield index, fn(item)


class BatchedBackend(SerialBackend):
    """Marker backend selecting fused (vectorized-batch) execution.

    Batch-aware layers check ``isinstance(backend, BatchedBackend)`` and
    stack their work items into one kernel pass instead of mapping a Python
    callable per item: :func:`repro.engine.peel_many` runs the whole batch
    through :func:`repro.kernels.batched.batched_peel`, and
    :func:`repro.sweeps.run_sweep` dispatches whole cells through a
    ``batch_trial`` when one is provided.  For opaque callables — layers
    that have no batch shape to exploit — it behaves exactly like the
    serial backend, so ``--backend batched`` is safe everywhere.
    """

    name = "batched"


def _consume_future_exception(future) -> None:
    """Done-callback retrieving (and discarding) a future's exception.

    Attached to every future :func:`_stream_completions` submits, so that
    futures abandoned with an exception set — a sibling failed first, or the
    consumer closed the iterator early — count as *retrieved* and are never
    reported as leaked ("Future exception was never retrieved") at garbage
    collection.  The exception itself still propagates through the future
    that the consumer actually pulled.
    """
    if not future.cancelled():
        future.exception()


def _stream_completions(
    executor: Executor, fn: Callable[[T], R], items: Sequence[T]
) -> Iterator[Tuple[int, R]]:
    """Submit every item at once and yield ``(index, result)`` as completed.

    Submitting the whole stream up front is what lets a sweep keep every
    worker busy across cell boundaries.  On a failure (or when the consumer
    abandons the iterator early) the pending futures are cancelled, and every
    future's exception is consumed by a done-callback so none is left
    unretrieved.
    """
    futures = {}
    for index, item in enumerate(items):
        future = executor.submit(fn, item)
        future.add_done_callback(_consume_future_exception)
        futures[future] = index
    try:
        for future in as_completed(futures):
            yield futures[future], future.result()
    finally:
        for future in futures:
            future.cancel()


class ThreadPoolBackend(ExecutionBackend):
    """Run items on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Number of worker threads (``>= 1``); defaults to the host's CPU
        count, matching :class:`ProcessPoolBackend`, so thread-level
        parallelism tracks the hardware wherever the kernels release the GIL.
    """

    name = "threads"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = check_positive_int(max_workers, "max_workers")
        self._executor: Optional[ThreadPoolExecutor] = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        executor = self._ensure_executor()
        return list(executor.map(fn, items))

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        yield from _stream_completions(self._ensure_executor(), fn, items)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ProcessPoolBackend(ExecutionBackend):
    """Run items on a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Unlike the thread pool this sidesteps the GIL, so CPU-bound trials scale
    with physical cores.  The work function and every item must be picklable
    — use module-level functions (or ``functools.partial`` of them) rather
    than closures.

    Parameters
    ----------
    max_workers:
        Number of worker processes; defaults to the host's CPU count.
    """

    name = "processes"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = check_positive_int(max_workers, "max_workers")
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        executor = self._ensure_executor()
        return list(executor.map(fn, items))

    def imap_unordered(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[Tuple[int, R]]:
        yield from _stream_completions(self._ensure_executor(), fn, items)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


BackendFactory = Callable[..., ExecutionBackend]

_BACKENDS: Registry[BackendFactory] = Registry("backend")
_BACKENDS.register("serial", SerialBackend)
_BACKENDS.register("batched", BatchedBackend)
_BACKENDS.register("threads", ThreadPoolBackend)
_BACKENDS.register("processes", ProcessPoolBackend)


def register_backend(name: str, factory: BackendFactory, *, overwrite: bool = False) -> None:
    """Register an execution-backend factory under ``name``.

    ``factory`` must be callable with no arguments; if it also accepts a
    ``max_workers`` keyword, :func:`get_backend` forwards the caller's
    worker count to it (that is how the built-in pool backends get theirs).
    """
    _BACKENDS.register(name, factory, overwrite=overwrite)


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests); unknown names raise."""
    _BACKENDS.unregister(name)


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered backend."""
    return _BACKENDS.names()


def _accepts_max_workers(factory: BackendFactory) -> bool:
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # uninspectable factory: assume it does
        return True
    return "max_workers" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def get_backend(
    name: Union[str, ExecutionBackend] = "serial", *, max_workers: Optional[int] = None
) -> ExecutionBackend:
    """Resolve a backend by name (instances pass through unchanged).

    Parameters
    ----------
    name:
        Registered backend name, or an :class:`ExecutionBackend` instance
        returned as-is (``max_workers`` is then ignored).
    max_workers:
        Worker count, forwarded to any backend factory that accepts a
        ``max_workers`` keyword (the built-in pools and registered
        third-party pools alike); ``None`` keeps each backend's default
        (the host's CPU count for both built-in pools).  Silently ignored
        by single-worker backends such as ``"serial"``.

    Raises
    ------
    ValueError
        Unknown names; the message lists the registered backends.
    """
    if isinstance(name, ExecutionBackend):
        return name
    factory = _BACKENDS.get(name)
    if max_workers is not None and _accepts_max_workers(factory):
        return factory(max_workers=max_workers)
    return factory()
