"""Execution backends for running independent trials.

The experiment harness runs many independent peeling trials; trials are
embarrassingly parallel, so they can be distributed over a thread pool.  Note
that CPython's GIL means thread-level parallelism only helps to the extent
the NumPy kernels release the GIL; on the single-core container used for this
reproduction the serial backend is the default and the thread-pool backend
exists to exercise the code path and to benefit on real multi-core hosts.

Both backends implement the same tiny interface (``map``) so callers never
special-case.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.utils.validation import check_positive_int

__all__ = ["ExecutionBackend", "SerialBackend", "ThreadPoolBackend", "get_backend"]

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend:
    """Interface: map a function over a sequence of work items, in order."""

    name: str = "abstract"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item and return results in input order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources held by the backend (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run every item in the calling thread (deterministic, zero overhead)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPoolBackend(ExecutionBackend):
    """Run items on a shared :class:`~concurrent.futures.ThreadPoolExecutor`.

    Parameters
    ----------
    max_workers:
        Number of worker threads (``>= 1``).
    """

    name = "threads"

    def __init__(self, max_workers: int = 4) -> None:
        self.max_workers = check_positive_int(max_workers, "max_workers")
        self._executor: Optional[ThreadPoolExecutor] = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        executor = self._ensure_executor()
        return list(executor.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def get_backend(name: str = "serial", *, max_workers: int = 4) -> ExecutionBackend:
    """Factory: return a backend by name (``"serial"`` or ``"threads"``)."""
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown backend {name!r}; expected 'serial' or 'threads'")
