"""Work/depth cost model for a synchronous parallel machine.

The paper's GPU numbers (Tables 3 and 4) are shaped by three facts:

1. insertion parallelizes embarrassingly over items (minus atomic conflicts);
2. each *recovery* round scans **every** cell ("the parallel implementation
   examines every cell in every round"), so the parallel cost per round is
   ``ceil(cells / threads)`` plus a kernel-launch overhead;
3. the number of rounds is tiny below the threshold (``O(log log n)``) and
   large above it (``Ω(log n)``), which is why the parallel speedup drops
   from ~20× to ~7× above the threshold.

:class:`ParallelMachine` turns the per-round work recorded in a
:class:`~repro.core.results.PeelingResult` (or raw round work sequences) into
simulated execution times under a configurable :class:`CostModel`, and also
prices the serial baseline so the two are comparable.  Absolute times are
arbitrary units; only ratios (speedups, crossovers) are meaningful, which is
all the reproduction claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional, Sequence

import numpy as np

from repro.core.results import PeelingResult, RoundStats
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = ["CostModel", "SimulatedTiming", "ParallelMachine"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs of the simulated machine (arbitrary time units).

    Attributes
    ----------
    cell_op_cost:
        Cost of inspecting one cell / processing one item on one thread.
    atomic_op_cost:
        Cost of one atomic XOR (uncontended).
    round_overhead:
        Fixed overhead per parallel round (kernel launch + barrier).
    serial_op_cost:
        Cost of one operation on the serial baseline machine.  Set equal to
        ``cell_op_cost`` by default; the paper's serial C++ baseline is
        roughly as fast per operation as one GPU thread, so the interesting
        ratios come from parallelism, not per-op disparity.
    transfer_cost_per_item:
        Host→device transfer cost per item (the paper includes transfer time
        in its GPU numbers).
    """

    cell_op_cost: float = 1.0
    atomic_op_cost: float = 1.0
    round_overhead: float = 100.0
    serial_op_cost: float = 1.0
    transfer_cost_per_item: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "cell_op_cost",
            "atomic_op_cost",
            "round_overhead",
            "serial_op_cost",
            "transfer_cost_per_item",
        ):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be a finite non-negative number, got {value}")


@dataclass(frozen=True)
class SimulatedTiming:
    """Simulated parallel and serial times for one workload.

    Attributes
    ----------
    parallel_time:
        Simulated time on the parallel machine.
    serial_time:
        Simulated time of the serial baseline doing the same job.
    rounds:
        Number of parallel rounds executed.
    parallel_work:
        Total operations performed by the parallel execution (it may do more
        work than the serial baseline, e.g. full-table scans every round).
    serial_work:
        Total operations of the serial baseline.
    """

    parallel_time: float
    serial_time: float
    rounds: int
    parallel_work: int
    serial_work: int

    @property
    def speedup(self) -> float:
        """Serial time divided by parallel time (``inf`` if parallel time is 0)."""
        if self.parallel_time == 0:
            return float("inf")
        return self.serial_time / self.parallel_time


class ParallelMachine:
    """A synchronous parallel machine with ``num_threads`` threads.

    Parameters
    ----------
    num_threads:
        Hardware parallelism.  The paper's Tesla C2070 exposes thousands of
        resident threads; the default of 4096 gives speedup magnitudes in the
        same regime as the paper's 10–20×, but any value > 1 preserves the
        qualitative shape (who wins and where the advantage shrinks).
    cost_model:
        Per-operation costs; see :class:`CostModel`.
    """

    def __init__(self, num_threads: int = 4096, cost_model: Optional[CostModel] = None) -> None:
        self.num_threads = check_positive_int(num_threads, "num_threads")
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # ------------------------------------------------------------------ #
    # Insertion / deletion phase
    # ------------------------------------------------------------------ #
    def time_insertions(
        self,
        num_items: int,
        edge_size: int,
        *,
        max_conflict_depth: int = 1,
        include_transfer: bool = True,
    ) -> SimulatedTiming:
        """Simulated timing of inserting (or deleting) ``num_items`` items.

        Each item hashes into ``edge_size`` cells and issues one atomic XOR
        per cell.  One thread is devoted to each item (Section 6), so the
        parallel depth is ``ceil(items / threads)`` item-steps, times the
        per-item cost, plus the worst atomic-conflict serialization observed
        (``max_conflict_depth`` atomic ops).

        ``num_items`` must be a non-negative integer: 0 is a legal empty
        phase, but non-integers (``None``, ``False``, ``0.0``) are rejected
        instead of being silently priced as zero items.
        """
        num_items = check_nonnegative_int(num_items, "num_items")
        edge_size = check_positive_int(edge_size, "edge_size")
        cm = self.cost_model
        per_item_cost = cm.cell_op_cost + edge_size * cm.atomic_op_cost
        serial_work = num_items * edge_size
        serial_time = num_items * per_item_cost if num_items else 0.0
        waves = ceil(num_items / self.num_threads) if num_items else 0
        parallel_time = waves * per_item_cost + cm.round_overhead * (1 if num_items else 0)
        parallel_time += max(0, max_conflict_depth - 1) * cm.atomic_op_cost
        if include_transfer and num_items:
            parallel_time += num_items * cm.transfer_cost_per_item
        return SimulatedTiming(
            parallel_time=float(parallel_time),
            serial_time=float(serial_time),
            rounds=1 if num_items else 0,
            parallel_work=serial_work,
            serial_work=serial_work,
        )

    # ------------------------------------------------------------------ #
    # Recovery phase
    # ------------------------------------------------------------------ #
    def time_recovery(
        self,
        round_stats: Sequence[RoundStats] | PeelingResult,
        *,
        num_cells: Optional[int] = None,
        edge_size: int = 3,
        full_scan: bool = True,
        conflict_depths: Optional[Sequence[int]] = None,
    ) -> SimulatedTiming:
        """Simulated timing of the round-based recovery phase.

        Parameters
        ----------
        round_stats:
            The per-round stats of a peeling run (or the
            :class:`~repro.core.results.PeelingResult` itself).
        num_cells:
            Table size; required when ``full_scan`` is True and
            ``round_stats`` entries do not already carry full-scan work.
        edge_size:
            Number of cells touched per recovered item (the ``r`` atomic
            XOR fan-out).
        full_scan:
            If True (the paper's GPU behaviour) every round scans every cell:
            per-round parallel work is ``num_cells`` regardless of how few
            items are recovered.  If False, per-round work is the recorded
            frontier work.
        conflict_depths:
            Optional per-round atomic conflict depths (from
            :class:`~repro.parallel.atomics.AtomicConflictTracker`); defaults
            to no contention.
        """
        if isinstance(round_stats, PeelingResult):
            stats = list(round_stats.round_stats)
        else:
            stats = list(round_stats)
        cm = self.cost_model
        edge_size = check_positive_int(edge_size, "edge_size")
        # Validate num_cells whenever it is supplied — a falsy-but-wrong
        # value (False, 0.0) must fail loudly rather than be ignored or
        # priced as an empty table.
        if num_cells is not None:
            num_cells = check_positive_int(num_cells, "num_cells")
        if full_scan and num_cells is None:
            raise ValueError("num_cells is required when full_scan=True")

        parallel_time = 0.0
        parallel_work = 0
        serial_work = 0
        for index, stat in enumerate(stats):
            scan_work = num_cells if full_scan else stat.work
            atomic_ops = stat.vertices_peeled * edge_size
            round_work = scan_work + atomic_ops
            parallel_work += round_work
            waves = ceil(scan_work / self.num_threads) if scan_work else 0
            atomic_waves = ceil(atomic_ops / self.num_threads) if atomic_ops else 0
            round_time = (
                waves * cm.cell_op_cost
                + atomic_waves * cm.atomic_op_cost
                + cm.round_overhead
            )
            if conflict_depths is not None and index < len(conflict_depths):
                round_time += max(0, conflict_depths[index] - 1) * cm.atomic_op_cost
            parallel_time += round_time
            # The serial baseline only touches cells as it pops them off its
            # worklist: its work is proportional to items recovered (plus the
            # one-time initial scan accounted below).
            serial_work += atomic_ops + stat.vertices_peeled

        # Serial baseline: one initial scan of the table to seed the worklist,
        # then work proportional to what was actually recovered.
        if full_scan and num_cells is not None:
            serial_work += num_cells
        serial_time = serial_work * cm.serial_op_cost
        return SimulatedTiming(
            parallel_time=float(parallel_time),
            serial_time=float(serial_time),
            rounds=len(stats),
            parallel_work=int(parallel_work),
            serial_work=int(serial_work),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ParallelMachine(num_threads={self.num_threads}, cost_model={self.cost_model})"
