"""Simulated parallel execution substrate (the GPU stand-in).

The paper evaluates its IBLT implementation on an NVIDIA Tesla C2070 GPU.
No GPU (and no CUDA) is available to this reproduction, so this subpackage
provides the closest synthetic equivalent exercising the same code paths:

* :class:`~repro.parallel.machine.ParallelMachine` — a synchronous work/depth
  cost model.  Each round of a peeling run has *work* (cells examined, items
  inserted, atomic XORs issued) and the machine converts it into simulated
  time given a thread count, per-operation costs, kernel-launch overhead and
  atomic-conflict serialization (t threads hitting one cell take t serial
  steps — exactly the caveat Section 6 discusses).
* :class:`~repro.parallel.atomics.AtomicConflictTracker` — counts, per round,
  the worst-case number of conflicting atomic XORs on one cell.
* :mod:`~repro.parallel.backend` — real execution backends (serial,
  thread-pool and process-pool) behind one name-selectable interface, used
  to distribute independent trials; CPython's GIL prevents intra-trial
  thread speedup, which EXPERIMENTS.md flags, so the cost model is the
  primary instrument for Tables 3–4 while the process pool scales
  multi-trial workloads with cores.
* :mod:`~repro.parallel.shm` — *intra-trial* parallelism: the
  ``"shm-parallel"`` peeling engine and ``"shm-flat"`` IBLT decoder run one
  round-synchronous process across a persistent pool of worker processes
  over a single shared-memory state segment, the real-hardware analogue of
  the paper's one-processor-per-vertex schedule.
"""

from repro.parallel.machine import CostModel, ParallelMachine, SimulatedTiming
from repro.parallel.atomics import AtomicConflictTracker, atomic_xor_depth
from repro.parallel.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.parallel.shm import (
    ShmBlock,
    ShmFlatDecoder,
    ShmLayout,
    ShmParallelPeeler,
    ShmPoolError,
    ShmWorkerPool,
)

__all__ = [
    "CostModel",
    "ParallelMachine",
    "SimulatedTiming",
    "AtomicConflictTracker",
    "atomic_xor_depth",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "ShmBlock",
    "ShmLayout",
    "ShmWorkerPool",
    "ShmPoolError",
    "ShmParallelPeeler",
    "ShmFlatDecoder",
]
