"""Shared-memory intra-trial parallelism: one peel, many processes.

Everything else under :mod:`repro.parallel` distributes *independent trials*;
this subpackage parallelizes a *single* peeling process — the regime the
paper's headline ~(1/2)·log log n round bound is actually about.  It has
three layers:

* :mod:`~repro.parallel.shm.block` — one shared-memory segment described by
  an :class:`ShmLayout` of named arrays; the parent creates it, workers
  attach zero-copy NumPy views.
* :mod:`~repro.parallel.shm.pool` — :class:`ShmWorkerPool`, a persistent
  pool of SPMD worker processes driven by one reusable round barrier, with
  timeouts on every wait so deadlocks fail fast instead of hanging.
* the engines — :class:`ShmParallelPeeler` (registered as
  ``"shm-parallel"``; bit-for-bit identical to the in-process parallel
  engine) and :class:`ShmFlatDecoder` (registered as ``"shm-flat"``;
  bit-for-bit identical to the flat IBLT decoder), both built on the
  partitioned variant of the round schedule: each worker owns a contiguous
  vertex/cell slice, and cross-partition updates travel through per-worker
  delta buffers exchanged at the round barrier.
"""

from repro.parallel.shm.block import ArraySpec, ShmBlock, ShmLayout, attach_shm
from repro.parallel.shm.decode import ShmFlatDecoder
from repro.parallel.shm.peeler import ShmParallelPeeler, partition_bounds
from repro.parallel.shm.pool import DEFAULT_BARRIER_TIMEOUT, ShmPoolError, ShmWorkerPool

__all__ = [
    "ArraySpec",
    "ShmLayout",
    "ShmBlock",
    "attach_shm",
    "ShmWorkerPool",
    "ShmPoolError",
    "DEFAULT_BARRIER_TIMEOUT",
    "ShmParallelPeeler",
    "ShmFlatDecoder",
    "partition_bounds",
]
