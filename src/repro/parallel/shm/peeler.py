"""Shared-memory intra-trial parallel peeling: the ``"shm-parallel"`` engine.

Everything the repo had before this module parallelizes *across* trials;
this engine parallelizes *one* peel, which is where the paper's result
actually lives: round-synchronous peeling converges in ~(1/2)·log log n
rounds when every vertex gets a processor.  The schedule is the PRAM/GPU
one, mapped onto ``P`` worker processes over a shared-memory
:class:`~repro.kernels.state.PeelState` laid out columnarly in one segment
(:mod:`repro.parallel.shm.block`):

* vertices and edges are partitioned into ``P`` contiguous slices;
* each round runs three barrier-separated phases — the partitioned variant
  of :func:`repro.kernels.rounds.peel_subround`:

  1. **find/kill vertices** — worker ``p`` scans its vertex slice for
     ``alive & degree < k``, marks them dead, stamps their peel round and
     publishes a shared removable mask;
  2. **kill edges + scatter** — worker ``p`` scans its *edge* slice for live
     edges with a removable endpoint, kills them, and writes the degree
     decrements for *all* their endpoints into its private per-round delta
     row (cross-partition updates are exchanged through these buffers —
     no worker ever writes another worker's slice directly);
  3. **apply deltas** — worker ``p`` folds every worker's delta column
     restricted to its own vertex slice into the shared degree vector and
     clears its removable-mask slice for the next round.

The parent process never touches the big arrays during a round; it drives
the barrier, aggregates the per-worker counters into the same
:class:`~repro.core.results.RoundStats` accounting the in-process
:class:`~repro.core.peeling.ParallelPeeler` produces, and decides
termination.  The result is bit-for-bit identical to
``ParallelPeeler(update="full")`` — same rounds, same removals, same work
terms, same peel-round arrays — which the golden-fingerprint parity suite
pins.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.results import UNPEELED, PeelingResult, RoundStats
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.shm.block import ShmBlock, ShmLayout, attach_shm
from repro.parallel.shm.pool import (
    CMD_RUN,
    CMD_STOP,
    DEFAULT_BARRIER_TIMEOUT,
    ShmWorkerPool,
)
from repro.utils.validation import check_positive_int

__all__ = ["ShmParallelPeeler", "partition_bounds", "resolve_num_workers"]

#: Control-word slots (the parent writes, workers read after the round barrier).
CTRL_CMD = 0
CTRL_ROUND = 1

#: Per-worker counter columns.
COUNTER_REMOVED = 0
COUNTER_DYING = 1


def partition_bounds(total: int, parts: int) -> List[int]:
    """Even contiguous split: ``parts + 1`` bounds with ``bounds[p] <= bounds[p+1]``."""
    return [(p * total) // parts for p in range(parts + 1)]


DEFAULT_MAX_WORKERS = 8
"""Cap on the *default* worker count.  Per-worker delta buffers make the
shared segment and the per-round fold cost O(num_workers · n), so an
uncapped ``os.cpu_count()`` default would allocate hundreds of megabytes
and invert the speedup on many-core hosts (and overflow small ``/dev/shm``
mounts in containers).  An explicit ``num_workers`` is never capped."""


def resolve_num_workers(num_workers: Optional[int]) -> int:
    """Default the worker count to the host's cores, capped at
    :data:`DEFAULT_MAX_WORKERS` (always at least 1)."""
    if num_workers is None:
        return max(1, min(os.cpu_count() or 1, DEFAULT_MAX_WORKERS))
    return check_positive_int(num_workers, "num_workers")


def _peel_layout(
    n: int, m: int, r: int, num_workers: int, compact: bool = False
) -> ShmLayout:
    """Columnar segment layout; ``compact`` halves the id-carrying columns.

    The compact layout mirrors :meth:`PeelState.from_graph`'s dtype policy —
    ``uint32`` edge ids, ``int32`` degrees / peel rounds / deltas (signed:
    rounds hold the ``UNPEELED`` sentinel and deltas are subtracted) — which
    halves both the segment size and the O(num_workers · n) per-round delta
    fold traffic.  Counters and the control word stay ``int64``.
    """
    edge_dt = "uint32" if compact else "int64"
    word_dt = "int32" if compact else "int64"
    return ShmLayout.build(
        [
            ("edges", (m, r), edge_dt),
            ("degrees", (n,), word_dt),
            ("vertex_alive", (n,), "bool"),
            ("edge_alive", (m,), "bool"),
            ("vertex_peel_round", (n,), word_dt),
            ("edge_peel_round", (m,), word_dt),
            ("removable_mask", (n,), "bool"),
            ("deltas", (num_workers, n), word_dt),
            ("counters", (num_workers, 2), "int64"),
            ("control", (2,), "int64"),
        ]
    )


def _peel_worker(
    worker_id: int, num_workers: int, barrier, timeout: float, payload: Dict[str, Any]
) -> None:
    """Worker entry point: attach to the segment, run the round loop, detach."""
    segment = attach_shm(payload["segment"])
    try:
        # The loop body lives in its own frame so that its array views are
        # gone by the time the mapping is closed (else close() raises
        # BufferError for the exported buffers).
        _peel_worker_loop(segment, worker_id, barrier, timeout, payload)
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views pinned by a traceback
            pass


def _peel_worker_loop(
    segment, worker_id: int, barrier, timeout: float, payload: Dict[str, Any]
) -> None:
    """Round loop of one shm peeling worker (see the module docstring)."""
    views = payload["layout"].views(segment.buf)
    k = payload["k"]
    n = views["degrees"].shape[0]
    vlo, vhi = payload["vertex_bounds"][worker_id], payload["vertex_bounds"][worker_id + 1]
    elo, ehi = payload["edge_bounds"][worker_id], payload["edge_bounds"][worker_id + 1]

    edges = views["edges"]
    degrees = views["degrees"]
    vertex_alive = views["vertex_alive"]
    edge_alive = views["edge_alive"]
    vertex_peel_round = views["vertex_peel_round"]
    edge_peel_round = views["edge_peel_round"]
    removable_mask = views["removable_mask"]
    deltas = views["deltas"]
    counters = views["counters"]
    control = views["control"]

    edge_slice = edges[elo:ehi]
    empty_endpoints = np.empty(0, dtype=np.int64)

    while True:
        barrier.wait(timeout)  # round start: the control word is now set
        if control[CTRL_CMD] == CMD_STOP:
            break
        round_index = int(control[CTRL_ROUND])

        # Phase 1: find and kill removable vertices in our vertex slice.
        local_removable = vertex_alive[vlo:vhi] & (degrees[vlo:vhi] < k)
        removable_mask[vlo:vhi] = local_removable
        removed = np.flatnonzero(local_removable) + vlo
        vertex_alive[removed] = False
        vertex_peel_round[removed] = round_index
        counters[worker_id, COUNTER_REMOVED] = removed.size
        barrier.wait(timeout)

        # Phase 2: kill dying edges in our edge slice, publish degree deltas.
        if ehi > elo:
            dying_local = edge_alive[elo:ehi] & removable_mask[edge_slice].any(axis=1)
            dying = np.flatnonzero(dying_local) + elo
            endpoints = edges[dying].reshape(-1) if dying.size else empty_endpoints
        else:
            dying = empty_endpoints
            endpoints = empty_endpoints
        edge_alive[dying] = False
        edge_peel_round[dying] = round_index
        deltas[worker_id, :] = np.bincount(endpoints, minlength=n)
        counters[worker_id, COUNTER_DYING] = dying.size
        barrier.wait(timeout)

        # Phase 3: fold every worker's deltas into our degree slice and
        # reset our removable-mask slice for the next round.
        degrees[vlo:vhi] -= deltas[:, vlo:vhi].sum(axis=0)
        removable_mask[vlo:vhi] = False
        barrier.wait(timeout)  # round end: the parent may now read counters


class ShmParallelPeeler:
    """Round-synchronous peeling with intra-trial shared-memory parallelism.

    Runs the same process as :class:`~repro.core.peeling.ParallelPeeler` with
    ``update="full"`` and produces bit-for-bit identical results and
    accounting, but executes every round across ``num_workers`` OS processes
    sharing one zero-copy state segment.  Pick it for single large peels on
    multi-core hosts; for many independent trials, trial-level parallelism
    (``peel_many(..., backend="processes")``) remains the better fit — see
    EXPERIMENTS.md ("Intra-trial parallelism").

    Parameters
    ----------
    k:
        Degree threshold; vertices of degree ``< k`` are removed each round.
    num_workers:
        Worker processes sharing the peel (default: the host's CPU count,
        capped at :data:`DEFAULT_MAX_WORKERS` — segment size and per-round
        fold cost grow as O(num_workers · n); an explicit count is not
        capped).
    max_rounds:
        Safety cap on rounds (defaults to ``4 * n + 16`` at run time).
    track_stats:
        Record per-round :class:`~repro.core.results.RoundStats`.
    barrier_timeout:
        Seconds any single round barrier may take before the run is aborted
        with :class:`~repro.parallel.shm.pool.ShmPoolError` (deadlock guard).
    mp_context:
        Optional multiprocessing context (``fork`` on Linux by default).
    wide_ids:
        Force the wide ``int64`` segment layout; by default the segment uses
        compact 32-bit columns whenever the graph fits (see
        :func:`_peel_layout`).  Results are bit-identical either way.
    """

    def __init__(
        self,
        k: int,
        *,
        num_workers: Optional[int] = None,
        max_rounds: Optional[int] = None,
        track_stats: bool = True,
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
        mp_context: Optional[Any] = None,
        wide_ids: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.num_workers = resolve_num_workers(num_workers)
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_stats = bool(track_stats)
        self.barrier_timeout = float(barrier_timeout)
        self.mp_context = mp_context
        self.wide_ids = bool(wide_ids)

    def peel(self, graph: Hypergraph) -> PeelingResult:
        """Run the shared-memory parallel peeling process on ``graph``."""
        k = self.k
        n = graph.num_vertices
        m = graph.num_edges
        r = graph.edge_size
        # More workers than vertices would only add idle barrier parties.
        num_workers = max(1, min(self.num_workers, n)) if n else 1

        compact = not self.wide_ids and graph.supports_compact_ids
        layout = _peel_layout(n, m, r, num_workers, compact)
        limit = self.max_rounds if self.max_rounds is not None else 4 * max(n, 1) + 16
        stats: List[RoundStats] = []
        rounds = 0
        vertices_remaining = n
        edges_remaining = m

        with ShmBlock(layout) as block:
            arrays = block.arrays
            arrays["edges"][...] = graph.edges  # setitem casts into the layout
            graph.degrees_into(arrays["degrees"])
            arrays["vertex_alive"][...] = True
            arrays["edge_alive"][...] = True
            arrays["vertex_peel_round"][...] = UNPEELED
            arrays["edge_peel_round"][...] = UNPEELED
            arrays["removable_mask"][...] = False
            arrays["deltas"][...] = 0
            arrays["counters"][...] = 0
            control = arrays["control"]
            control[...] = 0

            payload = {
                "segment": block.name,
                "layout": layout,
                "k": k,
                "vertex_bounds": partition_bounds(n, num_workers),
                "edge_bounds": partition_bounds(m, num_workers),
            }
            with ShmWorkerPool(
                num_workers,
                _peel_worker,
                payload,
                timeout=self.barrier_timeout,
                mp_context=self.mp_context,
            ) as pool:
                counters = arrays["counters"]
                for round_index in range(1, limit + 1):
                    control[CTRL_CMD] = CMD_RUN
                    control[CTRL_ROUND] = round_index
                    examined = vertices_remaining  # full-scan work term
                    pool.sync()  # release the round
                    pool.sync()  # phase 1 done: vertices killed
                    pool.sync()  # phase 2 done: edges killed, deltas published
                    pool.sync()  # phase 3 done: degrees consistent
                    removed = int(counters[:, COUNTER_REMOVED].sum())
                    dying = int(counters[:, COUNTER_DYING].sum())
                    if removed == 0:
                        break
                    rounds = round_index
                    vertices_remaining -= removed
                    edges_remaining -= dying
                    if self.track_stats:
                        stats.append(
                            RoundStats(
                                round_index=round_index,
                                vertices_peeled=removed,
                                edges_peeled=dying,
                                vertices_remaining=vertices_remaining,
                                edges_remaining=edges_remaining,
                                work=examined,
                            )
                        )
                else:  # pragma: no cover - loop exhausted without fixed point
                    raise RuntimeError(
                        f"shm-parallel peeling did not reach a fixed point within {limit} rounds"
                    )
                control[CTRL_CMD] = CMD_STOP
                pool.sync()  # workers observe the stop command and exit
                pool.join()

            # astype always copies here, widening the compact layout back to
            # the int64 result contract (fingerprints hash int64 bytes).
            vertex_peel_round = arrays["vertex_peel_round"].astype(np.int64)
            edge_peel_round = arrays["edge_peel_round"].astype(np.int64)
            # Drop every parent-side view before the block closes its mapping
            # (a mapping with exported buffers cannot be closed).
            del control, counters
            arrays = None

        return PeelingResult(
            k=k,
            mode="shm-parallel",
            num_rounds=rounds,
            num_subrounds=rounds,
            success=edges_remaining == 0,
            vertex_peel_round=vertex_peel_round,
            edge_peel_round=edge_peel_round,
            round_stats=stats,
        )
