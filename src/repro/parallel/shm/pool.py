"""Persistent, barrier-synchronized worker pool for the shm engines.

The paper's schedule is SPMD: every (virtual) processor runs the same round
program on its own slice of the state, separated by global barriers.  A
:class:`ShmWorkerPool` reproduces that shape with real processes: ``P``
workers are spawned once, attach to the parent's shared-memory block, and
then loop over rounds driven entirely by one reusable
:class:`multiprocessing.Barrier` — no per-round pickling, no per-round
process start-up, no queues on the hot path.

Deadlock safety: every barrier wait (parent and workers alike) carries a
timeout, and a worker that raises aborts the barrier before dying, so a bug
in a phase function surfaces as :class:`ShmPoolError` within seconds instead
of hanging the calling test or job forever.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from threading import BrokenBarrierError
from typing import Any, Callable, Dict, Optional

__all__ = ["ShmPoolError", "ShmWorkerPool", "DEFAULT_BARRIER_TIMEOUT"]

DEFAULT_BARRIER_TIMEOUT = 60.0
"""Seconds any single barrier wait may take before the run is declared dead."""

#: Control-word commands (index 0 of the engines' ``control`` array).
CMD_RUN = 0
CMD_STOP = 1


class ShmPoolError(RuntimeError):
    """A worker died, or a barrier wait timed out (likely deadlock)."""


WorkerFn = Callable[[int, int, Any, float, Dict[str, Any]], None]
"""Worker entry point: ``fn(worker_id, num_workers, barrier, timeout, payload)``.

Must be a module-level function (pickled under the ``spawn`` start method);
``payload`` is a dict of picklable run parameters, typically the shared
segment name, its :class:`~repro.parallel.shm.block.ShmLayout` and the
worker's slice bounds.
"""


def _worker_main(
    fn: WorkerFn,
    worker_id: int,
    num_workers: int,
    barrier,
    timeout: float,
    payload: Dict[str, Any],
) -> None:
    try:
        fn(worker_id, num_workers, barrier, timeout, payload)
    except BrokenBarrierError:  # parent (or a sibling) already gave up
        pass
    except BaseException:
        traceback.print_exc()
        barrier.abort()  # wake everyone else so the failure is visible at once
        raise


class ShmWorkerPool:
    """``P`` persistent worker processes plus the parent behind one barrier.

    Parameters
    ----------
    num_workers:
        Number of worker processes (the barrier has ``num_workers + 1``
        parties — the parent participates in every round).
    worker_fn:
        Module-level :data:`WorkerFn` each worker runs for the whole session.
    payload:
        Picklable parameters passed to every worker.
    timeout:
        Per-barrier-wait timeout in seconds.
    mp_context:
        Optional :func:`multiprocessing.get_context` instance (``fork`` on
        Linux by default; the pool is spawn-safe).
    """

    def __init__(
        self,
        num_workers: int,
        worker_fn: WorkerFn,
        payload: Dict[str, Any],
        *,
        timeout: float = DEFAULT_BARRIER_TIMEOUT,
        mp_context: Optional[Any] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        ctx = mp_context if mp_context is not None else mp.get_context()
        self.num_workers = num_workers
        self.timeout = float(timeout)
        self._barrier = ctx.Barrier(num_workers + 1)
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(worker_fn, w, num_workers, self._barrier, self.timeout, payload),
                daemon=True,
            )
            for w in range(num_workers)
        ]
        for proc in self._procs:
            proc.start()

    def sync(self) -> None:
        """Join the next barrier round (parent side)."""
        try:
            self._barrier.wait(self.timeout)
        except BrokenBarrierError:
            self.terminate()
            raise ShmPoolError(
                "shm worker pool barrier broken: a worker process failed or a "
                f"barrier wait exceeded {self.timeout:.0f}s (deadlock guard); "
                "see worker traceback on stderr"
            ) from None

    def join(self, grace: float = 10.0) -> None:
        """Wait for workers to exit after the stop command was synced."""
        for proc in self._procs:
            proc.join(timeout=grace)
        self.terminate()

    def terminate(self) -> None:
        """Force-kill any worker still alive (idempotent)."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - terminate is near-instant
                proc.join(timeout=1.0)

    def __enter__(self) -> "ShmWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._barrier.abort()
        self.terminate()
