"""One shared-memory segment holding many named NumPy arrays.

The shm engines keep their entire working set — edge matrix, degree vector,
alive masks, peel-round arrays, per-worker delta buffers, counters and the
control word — in a *single* :class:`multiprocessing.shared_memory.SharedMemory`
segment.  A :class:`ShmLayout` describes that segment as an ordered list of
``(name, shape, dtype)`` specs with 64-byte-aligned offsets; the parent
creates the segment once and every worker attaches to it by name, so all
processes operate on zero-copy views of the same physical pages.  The only
data that crosses the pickle boundary at worker start-up is the segment name
and the layout itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["ArraySpec", "ShmLayout", "ShmBlock", "attach_shm"]

_ALIGN = 64  # cache-line alignment between arrays avoids false sharing at seams


@dataclass(frozen=True)
class ArraySpec:
    """Description of one named array inside a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShmLayout:
    """Ordered array specs plus their computed byte offsets.

    The layout is a plain frozen dataclass of strings and ints, so it
    pickles cheaply to worker processes under any multiprocessing start
    method (``fork`` and ``spawn`` alike).
    """

    specs: Tuple[ArraySpec, ...]

    @classmethod
    def build(cls, specs: Sequence[Tuple[str, Tuple[int, ...], str]]) -> "ShmLayout":
        """Build a layout from ``(name, shape, dtype)`` triples."""
        seen = set()
        normalized = []
        for name, shape, dtype in specs:
            if name in seen:
                raise ValueError(f"duplicate array name {name!r} in shared layout")
            seen.add(name)
            normalized.append(ArraySpec(name, tuple(int(d) for d in shape), str(dtype)))
        return cls(specs=tuple(normalized))

    def offsets(self) -> Dict[str, int]:
        """Byte offset of every array, each aligned to a cache line."""
        out: Dict[str, int] = {}
        offset = 0
        for spec in self.specs:
            out[spec.name] = offset
            offset += spec.nbytes
            offset += (-offset) % _ALIGN
        return out

    @property
    def total_bytes(self) -> int:
        """Total segment size (shared memory cannot be zero-sized)."""
        offsets = self.offsets()
        last = self.specs[-1]
        return max(offsets[last.name] + last.nbytes, 1)

    def views(self, buffer) -> Dict[str, np.ndarray]:
        """NumPy views of every array over ``buffer`` (no copies)."""
        offsets = self.offsets()
        return {
            spec.name: np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=buffer, offset=offsets[spec.name]
            )
            for spec in self.specs
        }


def attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach a worker process to the parent's existing segment.

    The parent owns the segment's lifetime (it creates, and later unlinks,
    exactly once).  On Python 3.13+ the attach opts out of resource tracking
    with ``track=False``.  Older versions register attachments with the
    resource tracker too — harmless here, because multiprocessing children
    share the parent's tracker (its fd is inherited under ``fork`` and passed
    through spawn preparation data), so the duplicate registration is a
    set-add no-op and the parent's unlink retires the name exactly once.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


class ShmBlock:
    """A created-and-owned shared segment with named array views.

    The parent process creates the block (``ShmBlock(layout)``), fills the
    arrays, hands ``(segment name, layout)`` to the workers, and finally
    calls :meth:`destroy` to release the physical pages.  Workers never
    create blocks; they build views with :func:`attach_shm` +
    :meth:`ShmLayout.views`.
    """

    def __init__(self, layout: ShmLayout) -> None:
        self.layout = layout
        self._shm = shared_memory.SharedMemory(create=True, size=layout.total_bytes)
        self.arrays = layout.views(self._shm.buf)

    @property
    def name(self) -> str:
        """Segment name workers attach to."""
        return self._shm.name

    def destroy(self) -> None:
        """Drop the views, close the mapping and unlink the segment.

        Callers must drop any views they pulled out of :attr:`arrays` first;
        if some survive (e.g. on an error path, pinned by a traceback) the
        close is skipped — the pages are reclaimed at process exit — but the
        segment is still unlinked so nothing persists in ``/dev/shm``.
        """
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views pinned by a traceback
            pass
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "ShmBlock":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.destroy()
