"""Shared-memory round-synchronous IBLT recovery: the ``"shm-flat"`` decoder.

Recovery *is* peeling — cells are vertices, keys are edges — so the same
shared-memory schedule that drives
:class:`~repro.parallel.shm.peeler.ShmParallelPeeler` drives table recovery.
The decoder reproduces the flat (whole-table) round schedule of
:class:`~repro.iblt.parallel_decode.FlatParallelDecoder` bit-for-bit — same
rounds, same recovered keys, same work and conflict accounting — while
executing each round across ``num_workers`` processes over one shared
segment holding the three cell arrays:

1. **scan** — worker ``p`` finds the pure cells in its cell slice and
   publishes their indices;
2. *(parent, serial)* — global key deduplication, exactly the flat
   schedule's compare-and-mark step, plus recovered/removed bookkeeping;
3. **remove** — worker ``p`` takes a slice of the deduplicated keys,
   recomputes their cells and checksums, and writes the count/key/checksum
   updates into its private delta rows;
4. **apply** — worker ``p`` folds every worker's delta columns into its own
   cell slice (count by subtraction, key/checksum by XOR — both commutative,
   so the fold order cannot change the result).

Cross-partition writes only ever travel through the per-worker delta rows,
mirroring the peeler's degree exchange.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.results import RoundStats
from repro.kernels.numpy_backend import NumpyKernel
from repro.parallel.atomics import AtomicConflictTracker
from repro.parallel.shm.block import ShmBlock, ShmLayout, attach_shm
from repro.parallel.shm.peeler import partition_bounds, resolve_num_workers
from repro.parallel.shm.pool import (
    CMD_RUN,
    CMD_STOP,
    DEFAULT_BARRIER_TIMEOUT,
    ShmWorkerPool,
)
from repro.utils.validation import check_positive_int

__all__ = ["ShmFlatDecoder"]

CTRL_CMD = 0
CTRL_ROUND = 1
CTRL_NUM_KEYS = 2


def _decode_layout(num_cells: int, num_workers: int) -> ShmLayout:
    return ShmLayout.build(
        [
            ("count", (num_cells,), "int64"),
            ("key_sum", (num_cells,), "uint64"),
            ("check_sum", (num_cells,), "uint64"),
            ("pure_idx", (num_cells,), "int64"),
            ("keys", (num_cells,), "uint64"),
            ("signs", (num_cells,), "int64"),
            ("count_delta", (num_workers, num_cells), "int64"),
            ("key_delta", (num_workers, num_cells), "uint64"),
            ("check_delta", (num_workers, num_cells), "uint64"),
            ("counters", (num_workers,), "int64"),
            ("control", (3,), "int64"),
        ]
    )


def _decode_worker(
    worker_id: int, num_workers: int, barrier, timeout: float, payload: Dict[str, Any]
) -> None:
    """Worker entry point: attach, run the decode round loop, detach."""
    segment = attach_shm(payload["segment"])
    try:
        _decode_worker_loop(segment, worker_id, num_workers, barrier, timeout, payload)
    finally:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - views pinned by a traceback
            pass


def _decode_worker_loop(
    segment, worker_id: int, num_workers: int, barrier, timeout: float, payload: Dict[str, Any]
) -> None:
    views = payload["layout"].views(segment.buf)
    hasher = payload["hasher"]
    signed = payload["signed"]
    kernel = NumpyKernel()
    clo, chi = payload["cell_bounds"][worker_id], payload["cell_bounds"][worker_id + 1]

    count = views["count"]
    key_sum = views["key_sum"]
    check_sum = views["check_sum"]
    pure_idx = views["pure_idx"]
    keys = views["keys"]
    signs = views["signs"]
    count_delta = views["count_delta"]
    key_delta = views["key_delta"]
    check_delta = views["check_delta"]
    counters = views["counters"]
    control = views["control"]

    r = hasher.r

    while True:
        barrier.wait(timeout)  # round start
        if control[CTRL_CMD] == CMD_STOP:
            break

        # Phase 1: scan our cell slice for pure cells (absolute indices).
        pure = kernel.pure_cells(
            count, key_sum, check_sum, hasher.checksums, signed=signed, start=clo, stop=chi
        )
        pure_idx[clo: clo + pure.size] = pure
        counters[worker_id] = pure.size
        barrier.wait(timeout)  # parent deduplicates between these barriers
        barrier.wait(timeout)  # deduplicated keys are now published

        # Phase 2: remove our slice of the deduplicated keys via delta rows.
        total = int(control[CTRL_NUM_KEYS])
        chunk_bounds = partition_bounds(total, num_workers)
        klo, khi = chunk_bounds[worker_id], chunk_bounds[worker_id + 1]
        my_count = count_delta[worker_id]
        my_key = key_delta[worker_id]
        my_check = check_delta[worker_id]
        my_count[:] = 0
        my_key[:] = 0
        my_check[:] = 0
        if khi > klo:
            chunk = keys[klo:khi]
            chunk_signs = signs[klo:khi]
            cells = hasher.cell_indices(chunk)
            checks = hasher.checksums(chunk)
            # The row accumulates the *amounts to subtract*; the apply phase
            # does ``count -= row``, so signs are added here.
            np.add.at(my_count, cells.reshape(-1), np.repeat(chunk_signs, r))
            for j in range(r):
                np.bitwise_xor.at(my_key, cells[:, j], chunk)
                np.bitwise_xor.at(my_check, cells[:, j], checks)
        barrier.wait(timeout)

        # Phase 3: fold every worker's deltas into our cell slice.
        count[clo:chi] -= count_delta[:, clo:chi].sum(axis=0)
        key_sum[clo:chi] ^= np.bitwise_xor.reduce(key_delta[:, clo:chi], axis=0)
        check_sum[clo:chi] ^= np.bitwise_xor.reduce(check_delta[:, clo:chi], axis=0)
        barrier.wait(timeout)  # round end: the parent may now read the state


class ShmFlatDecoder:
    """Flat round-synchronous IBLT recovery over a shared-memory worker pool.

    Produces results and accounting bit-for-bit identical to
    :class:`~repro.iblt.parallel_decode.FlatParallelDecoder`, but executes
    the per-round scan and removal across ``num_workers`` OS processes.
    Registered as ``"shm-flat"``: ``table.decode(decoder="shm-flat",
    num_workers=4)``.

    Parameters
    ----------
    signed:
        Treat ``count == −1`` cells as pure as well (difference digests).
    max_rounds:
        Safety cap on the number of full rounds.
    track_conflicts:
        Record atomic-conflict depths per round (parent-side, identical to
        the flat decoder's accounting).
    num_workers:
        Worker processes sharing the decode (default: the host's CPU count,
        capped at :data:`~repro.parallel.shm.peeler.DEFAULT_MAX_WORKERS` —
        the three per-worker delta matrices grow as O(num_workers ·
        num_cells); an explicit count is not capped).
    barrier_timeout:
        Deadlock guard on every barrier wait, in seconds.
    mp_context:
        Optional multiprocessing context.
    """

    def __init__(
        self,
        *,
        signed: bool = True,
        max_rounds: Optional[int] = None,
        track_conflicts: bool = True,
        num_workers: Optional[int] = None,
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT,
        mp_context: Optional[Any] = None,
    ) -> None:
        self.signed = bool(signed)
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_conflicts = bool(track_conflicts)
        self.num_workers = resolve_num_workers(num_workers)
        self.barrier_timeout = float(barrier_timeout)
        self.mp_context = mp_context

    def decode(self, iblt, *, in_place: bool = False):
        """Run shared-memory flat recovery on ``iblt``.

        Returns a :class:`~repro.iblt.parallel_decode.ParallelDecodeResult`.
        With ``in_place=True`` the table's cell arrays are left in the
        decoder's final state (empty on success), matching the other
        decoders' contract.
        """
        # Imported here: repro.iblt imports this module at registry set-up.
        from repro.iblt.iblt import IBLTDecodeResult
        from repro.iblt.parallel_decode import ParallelDecodeResult

        num_cells = iblt.num_cells
        num_workers = max(1, min(self.num_workers, num_cells))
        hasher = iblt.hasher
        layout = _decode_layout(num_cells, num_workers)
        cell_bounds = partition_bounds(num_cells, num_workers)
        limit = self.max_rounds if self.max_rounds is not None else 4 * num_cells + 16
        tracker = AtomicConflictTracker(num_cells) if self.track_conflicts else None

        recovered: List[np.ndarray] = []
        removed: List[np.ndarray] = []
        stats: List[RoundStats] = []
        cells_scanned = 0
        rounds_executed = 0
        items_outstanding = abs(iblt.net_items)

        with ShmBlock(layout) as block:
            arrays = block.arrays
            arrays["count"][...] = iblt.count
            arrays["key_sum"][...] = iblt.key_sum
            arrays["check_sum"][...] = iblt.check_sum
            for name in ("pure_idx", "keys", "signs", "count_delta", "key_delta",
                         "check_delta", "counters", "control"):
                arrays[name][...] = 0
            control = arrays["control"]
            counters = arrays["counters"]
            count = arrays["count"]
            key_sum = arrays["key_sum"]
            check_sum = arrays["check_sum"]
            pure_idx = arrays["pure_idx"]
            key_buf = arrays["keys"]
            sign_buf = arrays["signs"]

            payload = {
                "segment": block.name,
                "layout": layout,
                "hasher": hasher,
                "signed": self.signed,
                "cell_bounds": cell_bounds,
            }
            with ShmWorkerPool(
                num_workers,
                _decode_worker,
                payload,
                timeout=self.barrier_timeout,
                mp_context=self.mp_context,
            ) as pool:
                for round_index in range(1, limit + 1):
                    control[CTRL_CMD] = CMD_RUN
                    control[CTRL_ROUND] = round_index
                    cells_scanned += num_cells
                    pool.sync()  # release the round
                    pool.sync()  # scan done; workers now idle at the next barrier

                    # Serial step: gather pure cells (ascending, as one full
                    # scan would produce) and deduplicate the keys — an item
                    # pure in several cells at once must be removed once.
                    pure = np.concatenate(
                        [
                            pure_idx[cell_bounds[p]: cell_bounds[p] + int(counters[p])]
                            for p in range(num_workers)
                        ]
                    ) if counters.any() else np.empty(0, dtype=np.int64)
                    if pure.size == 0:
                        stats.append(
                            RoundStats(
                                round_index=round_index,
                                vertices_peeled=0,
                                edges_peeled=0,
                                vertices_remaining=int(np.count_nonzero(count)),
                                edges_remaining=items_outstanding,
                                work=num_cells,
                            )
                        )
                        control[CTRL_NUM_KEYS] = 0
                        pool.sync()  # release the (empty) removal phase
                        pool.sync()  # removal no-op done
                        pool.sync()  # apply no-op done
                        break
                    keys, first = np.unique(key_sum[pure], return_index=True)
                    signs = count[pure][first]
                    positive = keys[signs > 0]
                    negative = keys[signs < 0]
                    if positive.size:
                        recovered.append(positive)
                    if negative.size:
                        removed.append(negative)
                    if tracker is not None:
                        tracker.record_round(hasher.cell_indices(keys).reshape(-1))
                    key_buf[: keys.size] = keys
                    sign_buf[: keys.size] = signs
                    control[CTRL_NUM_KEYS] = keys.size
                    pool.sync()  # publish the deduplicated keys
                    pool.sync()  # removal deltas written
                    pool.sync()  # deltas applied; cell arrays consistent
                    rounds_executed = round_index
                    items_outstanding = max(items_outstanding - int(keys.size), 0)
                    stats.append(
                        RoundStats(
                            round_index=round_index,
                            vertices_peeled=int(keys.size),
                            edges_peeled=int(keys.size),
                            vertices_remaining=int(np.count_nonzero(count)),
                            edges_remaining=items_outstanding,
                            work=num_cells,
                        )
                    )
                else:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"shm-flat recovery did not terminate within {limit} rounds"
                    )
                control[CTRL_CMD] = CMD_STOP
                pool.sync()  # workers observe the stop command and exit
                pool.join()

            final_count = count.copy()
            final_key_sum = key_sum.copy()
            final_check_sum = check_sum.copy()
            # Drop parent-side views before the block closes its mapping.
            del control, counters, count, key_sum, check_sum, pure_idx, key_buf, sign_buf
            arrays = None

        if in_place:
            iblt.count[...] = final_count
            iblt.key_sum[...] = final_key_sum
            iblt.check_sum[...] = final_check_sum

        success = bool(
            not final_count.any() and not final_key_sum.any() and not final_check_sum.any()
        )
        decode = IBLTDecodeResult(
            recovered=np.concatenate(recovered) if recovered else np.empty(0, dtype=np.uint64),
            removed=np.concatenate(removed) if removed else np.empty(0, dtype=np.uint64),
            success=success,
            rounds=rounds_executed,
            subrounds=rounds_executed,
            cells_scanned=cells_scanned,
        )
        return ParallelDecodeResult(
            decode=decode,
            round_stats=stats,
            conflict_depths=tracker.round_depths if tracker is not None else [],
        )
