"""JSON sweep artifacts: durable, resumable sweep results.

A :class:`SweepArtifact` binds three things together in one JSON file:

* the **spec** it was produced by (canonical dict + SHA-256 fingerprint),
* the **rows** aggregated so far, keyed by cell key,
* **env** metadata (package/python/numpy versions, machine, timestamp).

The scheduler checkpoints the artifact after every completed cell (atomic
write via a temp file + ``os.replace``), so a sweep killed at cell 30 of 36
keeps its first 29 rows.  ``load`` + :meth:`matches`/:meth:`require_spec`
implement resume: rows are only ever reused under an identical fingerprint
— any change to the grid, trial counts or seeds produces a different
fingerprint and a :class:`SweepSpecMismatch`.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro._version import __version__
from repro.sweeps.codec import decode, encode
from repro.sweeps.spec import SweepSpec

__all__ = ["SweepArtifact", "SweepSpecMismatch", "ARTIFACT_FORMAT"]

ARTIFACT_FORMAT = "repro-sweep-artifact-v1"
"""Format tag written into every artifact file."""


class SweepSpecMismatch(ValueError):
    """An artifact's spec fingerprint does not match the requested sweep."""


def _env_metadata() -> Dict[str, Any]:
    return {
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


@dataclass
class SweepArtifact:
    """In-memory form of one artifact file (see module docstring).

    Attributes
    ----------
    spec_dict:
        Canonical dict form of the producing :class:`SweepSpec`.
    fingerprint:
        The spec's SHA-256 fingerprint.
    rows:
        Aggregated rows keyed by cell key (decoded Python objects).
    env:
        Environment metadata captured when the artifact was first created.
    """

    spec_dict: Dict[str, Any]
    fingerprint: str
    rows: Dict[str, Any] = field(default_factory=dict)
    env: Dict[str, Any] = field(default_factory=_env_metadata)

    @classmethod
    def for_spec(cls, spec: SweepSpec) -> "SweepArtifact":
        """A fresh, empty artifact for ``spec``."""
        return cls(spec_dict=spec.to_dict(), fingerprint=spec.fingerprint())

    @property
    def name(self) -> str:
        """Sweep family name recorded in the spec."""
        return str(self.spec_dict.get("name", ""))

    def matches(self, spec: SweepSpec) -> bool:
        """True when this artifact was produced by exactly ``spec``."""
        return self.fingerprint == spec.fingerprint()

    def require_spec(self, spec: SweepSpec) -> None:
        """Raise :class:`SweepSpecMismatch` unless :meth:`matches` holds."""
        if not self.matches(spec):
            raise SweepSpecMismatch(
                f"artifact for sweep {self.name!r} has fingerprint "
                f"{self.fingerprint[:12]}..., but the requested spec "
                f"{spec.name!r} fingerprints to {spec.fingerprint()[:12]}...; "
                f"refusing to mix rows from different sweeps (delete the "
                f"artifact or change --out to start fresh)"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form of the whole artifact."""
        return {
            "format": ARTIFACT_FORMAT,
            "fingerprint": self.fingerprint,
            "spec": self.spec_dict,
            "env": self.env,
            "rows": {key: encode(row) for key, row in self.rows.items()},
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write atomically (temp file + rename), so readers never see a torn file."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepArtifact":
        """Read an artifact file; rejects files that are not sweep artifacts."""
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or data.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"{path} is not a sweep artifact (expected format={ARTIFACT_FORMAT!r})"
            )
        return cls(
            spec_dict=data["spec"],
            fingerprint=data["fingerprint"],
            rows={key: decode(row) for key, row in data.get("rows", {}).items()},
            env=data.get("env", {}),
        )
