"""Grid-level sweep scheduling over execution backends.

:func:`run_sweep` executes a :class:`~repro.sweeps.spec.SweepSpec` by
flattening the *entire* grid into one task stream — every (cell, trial)
pair — and dispatching it through a single
:class:`~repro.parallel.backend.ExecutionBackend`.  Because all tasks are
submitted up front, a pool backend keeps its workers saturated across cell
boundaries: the last slow trial of one cell overlaps the first trials of
the next, instead of the per-cell barrier the experiments used to pay.

Per-cell seed derivation matches the old per-experiment plumbing exactly:
each cell's trial generators are spawned from ``cell.seed`` with
:func:`repro.utils.rng.spawn_rngs`, so rows are reproducible independent of
backend, worker count and completion order.

As trials stream back (:meth:`ExecutionBackend.imap_unordered`), results
are slotted into their cell in trial order; the moment a cell's last trial
lands, the cell is aggregated into a row and — when ``out`` is given — the
:class:`~repro.sweeps.artifact.SweepArtifact` is checkpointed, so a killed
sweep loses at most the cells in flight.  ``resume=True`` reloads a
compatible artifact (identical spec fingerprint) and schedules only the
missing cells.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.parallel.backend import BatchedBackend, ExecutionBackend, get_backend
from repro.sweeps.artifact import SweepArtifact
from repro.sweeps.spec import SweepSpec
from repro.utils.rng import spawn_rngs

__all__ = [
    "run_sweep",
    "SweepProgress",
    "print_progress",
    "TrialFn",
    "BatchTrialFn",
    "AggregateFn",
    "ProgressFn",
]

TrialFn = Callable[[Dict[str, Any], np.random.Generator], Any]
"""One trial: ``(cell_params, rng) -> trial result``.  Must be a picklable
module-level function for the ``"processes"`` backend."""

BatchTrialFn = Callable[[Dict[str, Any], List[np.random.Generator]], List[Any]]
"""One whole cell at once: ``(cell_params, per-trial rngs) -> trial results
in trial order``.  Implementations typically stack the cell's trials into a
fused pass (e.g. ``peel_many(..., backend="batched")``); the contract is
that the returned list equals running the per-trial function on each rng."""

AggregateFn = Callable[[Dict[str, Any], List[Any]], Any]
"""Cell aggregation: ``(cell_params, trial results in trial order) -> row``."""


@dataclass(frozen=True)
class SweepProgress:
    """One progress event: a cell just completed (or was reused from cache).

    Attributes
    ----------
    sweep:
        Sweep family name.
    completed, total:
        Cells done so far (cached included) out of the whole grid.
    key:
        Key of the cell this event reports.
    trials:
        The cell's trial count.
    cached:
        True when the row came from a resumed artifact rather than a run.
    """

    sweep: str
    completed: int
    total: int
    key: str
    trials: int
    cached: bool


ProgressFn = Callable[[SweepProgress], None]


def print_progress(event: SweepProgress) -> None:
    """Default progress reporter: one per-cell line on stderr (CLI ``--progress``)."""
    origin = "cached" if event.cached else "done"
    print(
        f"[{event.sweep}] cell {event.completed}/{event.total} {origin}: "
        f"{event.key} ({event.trials} trial{'s' if event.trials != 1 else ''})",
        file=sys.stderr,
    )


def _run_trial_task(task: Tuple[TrialFn, Dict[str, Any], np.random.Generator]) -> Any:
    # Module-level so process-pool backends can pickle the task stream.
    trial, params, rng = task
    return trial(params, rng)


def _run_cell_task(
    task: Tuple[BatchTrialFn, Dict[str, Any], List[np.random.Generator]]
) -> List[Any]:
    # One whole cell fused into a single task (batched execution).
    batch_trial, params, rngs = task
    return batch_trial(params, rngs)


def _load_cached_rows(
    spec: SweepSpec, out: Optional[Path], resume: bool
) -> Tuple[SweepArtifact, Dict[str, Any]]:
    """The artifact to checkpoint into, plus rows reusable from a prior run."""
    if resume:
        if out is None:
            raise ValueError("resume=True requires an artifact path (out=...)")
        if not spec.is_deterministic:
            raise ValueError(
                f"sweep {spec.name!r} has non-integer cell seeds and cannot be "
                f"resumed reproducibly; pass an int seed to enable resume"
            )
        if out.exists():
            artifact = SweepArtifact.load(out)
            artifact.require_spec(spec)
            known = {cell.key for cell in spec.cells}
            return artifact, {k: v for k, v in artifact.rows.items() if k in known}
    return SweepArtifact.for_spec(spec), {}


def run_sweep(
    spec: SweepSpec,
    trial: TrialFn,
    aggregate: AggregateFn,
    *,
    batch_trial: Optional[BatchTrialFn] = None,
    backend: Optional[Union[str, ExecutionBackend]] = None,
    max_workers: Optional[int] = None,
    out: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> List[Any]:
    """Run every cell of ``spec`` and return its rows in cell order.

    Parameters
    ----------
    spec:
        The declarative grid to run.
    trial:
        Per-trial function ``(params, rng) -> result`` (module-level for the
        process backend).
    aggregate:
        Per-cell reduction ``(params, results) -> row``; results arrive in
        trial order regardless of completion order.
    batch_trial:
        Optional cell-level trial function ``(params, rngs) -> results`` —
        all of a cell's trials in one call, results in trial order.  Used
        instead of per-trial dispatch when the resolved backend is the
        ``"batched"`` marker backend, so same-cell trials fuse into one
        vectorized pass; other backends ignore it.
    backend:
        Execution backend name or instance (default serial); named backends
        are created for the call and closed afterwards, instances are left
        open — the same contract as
        :func:`repro.experiments.runner.run_trials`.
    max_workers:
        Worker count for named pool backends.
    out:
        Artifact path; when given, the sweep checkpoints after every
        completed cell and leaves the full artifact behind.  An existing
        file is only overwritten once the first newly-run cell completes
        (so a prior checkpoint survives a re-run aborted early, even
        without ``resume``).
    resume:
        Reuse rows from an existing artifact at ``out`` whose spec
        fingerprint matches; only missing cells are scheduled.  A mismatched
        artifact raises :class:`~repro.sweeps.artifact.SweepSpecMismatch`.
    progress:
        Callback invoked once per cell (cached cells first).
    """
    out_path = Path(out) if out is not None else None
    artifact, cached = _load_cached_rows(spec, out_path, resume)

    total = len(spec.cells)
    rows_by_key: Dict[str, Any] = {}
    completed = 0
    for cell in spec.cells:
        if cell.key in cached:
            rows_by_key[cell.key] = cached[cell.key]
            completed += 1
            if progress is not None:
                progress(
                    SweepProgress(spec.name, completed, total, cell.key, cell.trials, True)
                )

    pending = [i for i, cell in enumerate(spec.cells) if cell.key not in rows_by_key]

    # The artifact is (re)written only as cells complete: a re-run that
    # forgot --resume gets an abort window before the first new cell lands,
    # instead of an existing checkpoint being truncated at startup.
    artifact.rows = dict(rows_by_key)

    def finish_cell(cell_index: int, results: List[Any]) -> None:
        nonlocal completed
        cell = spec.cells[cell_index]
        row = aggregate(dict(cell.params), results)
        rows_by_key[cell.key] = row
        completed += 1
        if out_path is not None:
            artifact.rows[cell.key] = row
            artifact.save(out_path)
        if progress is not None:
            progress(
                SweepProgress(spec.name, completed, total, cell.key, cell.trials, False)
            )

    if pending:
        owned = backend is None or isinstance(backend, str)
        resolved = (
            get_backend(backend or "serial", max_workers=max_workers) if owned else backend
        )
        try:
            if batch_trial is not None and isinstance(resolved, BatchedBackend):
                # Fused execution: one task per cell, all of its trials in a
                # single call.  Seed derivation is identical to the
                # per-trial stream, so rows cannot move.
                cell_tasks = [
                    (
                        batch_trial,
                        dict(spec.cells[i].params),
                        list(spawn_rngs(spec.cells[i].seed, spec.cells[i].trials)),
                    )
                    for i in pending
                ]
                for task_index, results in resolved.imap_unordered(
                    _run_cell_task, cell_tasks
                ):
                    cell_index = pending[task_index]
                    cell = spec.cells[cell_index]
                    results = list(results)
                    if len(results) != cell.trials:
                        raise ValueError(
                            f"batch trial for cell {cell.key!r} returned "
                            f"{len(results)} results for {cell.trials} trials"
                        )
                    finish_cell(cell_index, results)
            else:
                # Flatten every pending (cell, trial) pair into one task
                # stream; the per-trial generators are spawned per cell
                # exactly as run_trials does, so results are independent of
                # scheduling.
                tasks: List[Tuple[TrialFn, Dict[str, Any], np.random.Generator]] = []
                owners: List[Tuple[int, int]] = []
                for cell_index in pending:
                    cell = spec.cells[cell_index]
                    for trial_index, rng in enumerate(spawn_rngs(cell.seed, cell.trials)):
                        tasks.append((trial, dict(cell.params), rng))
                        owners.append((cell_index, trial_index))
                buffers = {i: [None] * spec.cells[i].trials for i in pending}
                remaining = {i: spec.cells[i].trials for i in pending}
                for task_index, result in resolved.imap_unordered(_run_trial_task, tasks):
                    cell_index, trial_index = owners[task_index]
                    buffers[cell_index][trial_index] = result
                    remaining[cell_index] -= 1
                    if remaining[cell_index]:
                        continue
                    finish_cell(cell_index, buffers.pop(cell_index))
        finally:
            if owned:
                resolved.close()

    return [rows_by_key[cell.key] for cell in spec.cells]
