"""Declarative sweep layer: spec → scheduler → artifact.

Every piece of evidence in the paper is sweep-shaped — a parameter grid, a
number of independent trials per cell, and one aggregated row per cell.
This package owns that shape once, for all experiments and benchmarks:

* :class:`SweepSpec` / :class:`CellSpec` — the declarative grid, with
  cell-keyed deterministic seeds and a SHA-256 fingerprint,
* :func:`run_sweep` — grid-level scheduling: the whole grid becomes one
  task stream over an execution backend, with streaming per-cell
  aggregation,
* :class:`SweepArtifact` — durable JSON results with per-cell checkpointing
  and fingerprint-checked resume.

See the experiment modules (:mod:`repro.experiments`) and the benchmark
harness (:mod:`repro.bench`) for the spec builders riding on this layer.
"""

from repro.sweeps.artifact import ARTIFACT_FORMAT, SweepArtifact, SweepSpecMismatch
from repro.sweeps.scheduler import (
    AggregateFn,
    BatchTrialFn,
    ProgressFn,
    SweepProgress,
    TrialFn,
    print_progress,
    run_sweep,
)
from repro.sweeps.spec import CellSpec, SweepSpec

__all__ = [
    "ARTIFACT_FORMAT",
    "SweepArtifact",
    "SweepSpecMismatch",
    "SweepSpec",
    "CellSpec",
    "run_sweep",
    "SweepProgress",
    "print_progress",
    "TrialFn",
    "BatchTrialFn",
    "AggregateFn",
    "ProgressFn",
]
