"""Declarative sweep specifications.

A sweep is a grid of *cells* — one per parameter combination — each run for
a number of independent trials.  :class:`SweepSpec` captures the whole grid
declaratively: every cell carries its parameter dict, its trial count and
its own deterministic seed (derived by the experiment at spec-build time,
e.g. ``derive_seed(base, "table1", c_token, n)``), so the execution layer
never re-invents seed plumbing and any cell can be re-run in isolation.

``fingerprint()`` hashes the canonical JSON form of the spec.  Two specs
with the same fingerprint run exactly the same trials with exactly the same
seeds, which is the compatibility contract behind artifact resume: rows
stored under a matching fingerprint can be reused verbatim; anything else
is rejected.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

__all__ = ["CellSpec", "SweepSpec"]


def _seed_token(seed: SeedLike) -> Optional[int]:
    """JSON form of a cell seed; non-reproducible seeds collapse to ``None``.

    Generators and SeedSequences draw fresh state per use, so a spec built
    from one is not resumable (:attr:`SweepSpec.is_deterministic` is False);
    ints and ``None`` round-trip as themselves.
    """
    if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
        return None
    return int(seed) if seed is not None else None


@dataclass(frozen=True)
class CellSpec:
    """One cell of a sweep grid.

    Attributes
    ----------
    key:
        Human-readable identifier, unique within the sweep (artifact rows
        are stored under it).
    params:
        JSON-serializable parameters handed to the trial and aggregate
        functions.
    seed:
        Seed for this cell's trial RNGs; per-trial generators are spawned
        from it exactly as :func:`repro.experiments.runner.run_trials` does.
    trials:
        Number of independent trials for this cell.
    """

    key: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: SeedLike = None
    trials: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.trials, "trials")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (used for artifacts and fingerprinting)."""
        return {
            "key": self.key,
            "params": dict(self.params),
            "seed": _seed_token(self.seed),
            "trials": int(self.trials),
        }


@dataclass(frozen=True)
class SweepSpec:
    """A named parameter grid: the declarative description of one sweep.

    Attributes
    ----------
    name:
        Sweep family name (``"table1"``, ``"bench"``, ...).
    cells:
        The grid, flattened in output-row order.
    meta:
        Extra JSON-serializable identity (experiment-level settings that
        affect results but live outside any one cell); part of the
        fingerprint.
    """

    name: str
    cells: Tuple[CellSpec, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        keys = [cell.key for cell in self.cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate cell keys in sweep {self.name!r}: {dupes}")

    @property
    def is_deterministic(self) -> bool:
        """True when every cell seed is an int (the spec is resumable)."""
        return all(
            cell.seed is not None and _seed_token(cell.seed) is not None
            for cell in self.cells
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "name": self.name,
            "meta": dict(self.meta),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form; the resume compatibility key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
