"""JSON codec for sweep rows.

Experiment rows are frozen dataclasses whose fields are JSON scalars,
sequences, nested dataclasses (e.g. the :class:`GapAnalysis` inside a
:class:`Figure1Series`) or numpy arrays.  ``encode`` turns any such value
into plain JSON; ``decode`` reconstructs the original objects, importing
dataclass types by their recorded ``module:qualname``.  Plain dicts and
lists pass through untouched, so benchmark records (raw dicts) need no
special casing.

The encoding round-trips floats exactly (JSON serializes Python floats via
``repr``), which is what lets a resumed sweep reproduce an uninterrupted
run bit for bit.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any

import numpy as np

__all__ = ["encode", "decode"]

_DATACLASS_TAG = "__dataclass__"
_NDARRAY_TAG = "__ndarray__"


def encode(obj: Any) -> Any:
    """Encode ``obj`` into JSON-serializable data (see module docstring)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = {
            f.name: encode(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        return {_DATACLASS_TAG: f"{cls.__module__}:{cls.__qualname__}", "fields": fields}
    if isinstance(obj, np.ndarray):
        return {_NDARRAY_TAG: obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        bad = [k for k in obj if not isinstance(k, str)]
        if bad:
            raise TypeError(f"dict keys must be strings to encode, got {bad!r}")
        if _DATACLASS_TAG in obj or _NDARRAY_TAG in obj:
            raise TypeError(f"dict uses a reserved codec key: {obj.keys()!r}")
        return {k: encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} into a sweep artifact")


def _resolve_dataclass(path: str) -> type:
    module_name, _, qualname = path.partition(":")
    # Artifacts are data, not code: only row types from this package may be
    # imported, so a tampered artifact cannot trigger arbitrary imports.
    if module_name != "repro" and not module_name.startswith("repro."):
        raise ValueError(
            f"refusing to decode dataclass {path!r}: sweep artifacts may only "
            f"reference repro.* row types"
        )
    target: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    if not dataclasses.is_dataclass(target):
        raise TypeError(f"{path} is not a dataclass")
    return target


def decode(obj: Any) -> Any:
    """Invert :func:`encode`."""
    if isinstance(obj, dict):
        if _DATACLASS_TAG in obj:
            cls = _resolve_dataclass(obj[_DATACLASS_TAG])
            return cls(**{k: decode(v) for k, v in obj["fields"].items()})
        if _NDARRAY_TAG in obj:
            return np.asarray(obj[_NDARRAY_TAG], dtype=np.dtype(obj["dtype"]))
        return {k: decode(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode(v) for v in obj]
    return obj
