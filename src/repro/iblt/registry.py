"""Name-selectable IBLT decoders, mirroring the peeling-engine registry.

The serial worklist decoder, the flat round-synchronous decoder and the
paper's subtable decoder are interchangeable schedules of the same recovery
process — exactly like the peeling engines.  This registry gives them the
same string-selectable front door, used by
:meth:`repro.iblt.iblt.IBLT.decode` via its ``decoder=`` argument:

========= =====================================================
name      decoder
========= =====================================================
serial    :class:`SerialDecoder` (the classical worklist recovery)
flat      :class:`~repro.iblt.parallel_decode.FlatParallelDecoder`
subtable  :class:`~repro.iblt.parallel_decode.SubtableParallelDecoder`
shm-flat  :class:`~repro.parallel.shm.decode.ShmFlatDecoder` (flat
          schedule across shared-memory worker processes)
batched   :class:`~repro.iblt.batched_decode.BatchedFlatDecoder` (flat
          schedule over a whole batch of tables in lockstep; the batch
          face is :func:`repro.iblt.decode_many`)
========= =====================================================

The historical spellings ``"parallel"`` (→ ``"subtable"``) and
``"flat-parallel"`` (→ ``"flat"``) resolve as aliases everywhere a decoder
name is accepted, but are not listed by :func:`available_decoders`.

Every decoder factory is called as ``factory(signed=..., **options)`` and
the resulting object exposes ``decode(iblt, *, in_place=False)``.

Incremental decoding (``IBLT.decode(incremental=True)``) goes through this
registry only for its *bootstrap* decode; every later checkpoint runs the
shared decoder-independent re-peel of
:class:`~repro.iblt.incremental.IncrementalDecodeSession`, so incremental
results are identical for every decoder name by construction.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.iblt.batched_decode import BatchedFlatDecoder
from repro.iblt.iblt import IBLT, IBLTDecodeResult
from repro.iblt.parallel_decode import FlatParallelDecoder, SubtableParallelDecoder
from repro.parallel.shm.decode import ShmFlatDecoder
from repro.utils.registry import Registry

__all__ = [
    "SerialDecoder",
    "register_decoder",
    "unregister_decoder",
    "get_decoder",
    "available_decoders",
]


class SerialDecoder:
    """Adapter giving the classical serial recovery the decoder interface.

    Parameters
    ----------
    signed:
        Treat ``count == −1`` cells as pure as well (difference digests).
    kernel:
        Accepted for interface uniformity with the parallel decoders (so
        callers can pass ``kernel=`` regardless of the decoder name, e.g.
        through ``decode(incremental=True)``); the worklist recovery runs
        in pure Python and ignores it.
    """

    def __init__(self, *, signed: bool = True, kernel=None) -> None:
        self.signed = bool(signed)

    def decode(self, iblt: IBLT, *, in_place: bool = False) -> IBLTDecodeResult:
        """Run the worklist recovery of :meth:`IBLT.decode` on ``iblt``."""
        return iblt._decode_serial(signed=self.signed, in_place=in_place)


DecoderFactory = Callable[..., object]

_DECODERS: Registry[DecoderFactory] = Registry("decoder")
_DECODERS.register("serial", SerialDecoder)
_DECODERS.register("flat", FlatParallelDecoder)
_DECODERS.register("subtable", SubtableParallelDecoder)
_DECODERS.register("shm-flat", ShmFlatDecoder)
_DECODERS.register("batched", BatchedFlatDecoder)
_DECODERS.register_alias("parallel", "subtable")
_DECODERS.register_alias("flat-parallel", "flat")


def register_decoder(name: str, factory: DecoderFactory, *, overwrite: bool = False) -> None:
    """Register a decoder factory under ``name`` (see module docstring)."""
    _DECODERS.register(name, factory, overwrite=overwrite)


def unregister_decoder(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests); unknown names raise."""
    _DECODERS.unregister(name)


def get_decoder(name: str) -> DecoderFactory:
    """Look up a decoder factory by name or alias; unknown names raise ``ValueError``."""
    return _DECODERS.get(name)


def available_decoders() -> Tuple[str, ...]:
    """Sorted primary names of every registered decoder (aliases excluded)."""
    return _DECODERS.names()
