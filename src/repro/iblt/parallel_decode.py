"""Round-synchronous parallel IBLT recovery (Section 6 / Appendix B).

The paper's GPU recovery proceeds in rounds.  In each round, one (virtual)
thread per cell checks whether its cell is pure; pure cells recover their
item and XOR it out of the item's other cells with atomic operations.  The
implementation must never delete the same item twice, so the table is split
into ``r`` subtables processed serially within a round: the first pure cell
found for an item removes it from every other subtable before those subtables
are scanned.

Two decoders are provided:

* :class:`SubtableParallelDecoder` — the paper's scheme (requires the
  ``"subtables"`` layout); rounds consist of ``r`` subrounds.
* :class:`FlatParallelDecoder` — the ablation alternative: scan the whole
  table each round and deduplicate recovered keys before removal (a
  "compare-and-mark" scheme), which also avoids double deletion but needs a
  global duplicate-elimination step each round.

Both record per-(sub)round :class:`~repro.core.results.RoundStats` and
atomic-conflict depths so the :class:`~repro.parallel.machine.ParallelMachine`
cost model can price them, and both mutate a scratch copy unless asked to
work in place.

Recovery *is* peeling — cells are vertices, keys are edges — so both
decoders run on the shared kernel layer (:mod:`repro.kernels`): pure-cell
selection is the kernel's cell-space ``find_removable`` and key removal is
:func:`~repro.kernels.rounds.remove_hyperedges`, the same scatter inner loop
the k-core engines use, with the key/checksum XOR as the payload effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.results import RoundStats
from repro.iblt.iblt import IBLT, IBLTDecodeResult
from repro.kernels import PeelingKernel, get_kernel, remove_hyperedges
from repro.parallel.atomics import AtomicConflictTracker
from repro.utils.validation import check_positive_int

__all__ = [
    "ParallelDecodeResult",
    "SubtableParallelDecoder",
    "FlatParallelDecoder",
]


@dataclass(frozen=True)
class ParallelDecodeResult:
    """Outcome of a round-synchronous recovery, with work/conflict accounting.

    Extends the information in :class:`~repro.iblt.iblt.IBLTDecodeResult`
    with per-round statistics consumed by the simulated parallel machine.
    """

    decode: IBLTDecodeResult
    round_stats: List[RoundStats]
    conflict_depths: List[int]

    @property
    def rounds(self) -> int:
        """Number of full rounds executed."""
        return self.decode.rounds

    @property
    def subrounds(self) -> int:
        """Number of subrounds executed (equals rounds for the flat decoder)."""
        return self.decode.subrounds

    @property
    def success(self) -> bool:
        """True when the table fully decoded."""
        return self.decode.success

    @property
    def recovered(self) -> np.ndarray:
        """Keys recovered with positive sign."""
        return self.decode.recovered

    @property
    def removed(self) -> np.ndarray:
        """Keys recovered with negative sign."""
        return self.decode.removed

    @property
    def num_recovered(self) -> int:
        """Total keys recovered, regardless of sign."""
        return self.decode.num_recovered


def _pure_cells_in_range(
    kernel: PeelingKernel, table: IBLT, start: int, stop: int, signed: bool
) -> np.ndarray:
    """Indices of pure cells within ``[start, stop)`` (absolute indices)."""
    return kernel.pure_cells(
        table.count,
        table.key_sum,
        table.check_sum,
        table.hasher.checksums,
        signed=signed,
        start=start,
        stop=stop,
    )


def _remove_keys(
    kernel: PeelingKernel,
    table: IBLT,
    keys: np.ndarray,
    signs: np.ndarray,
    tracker: Optional[AtomicConflictTracker],
) -> int:
    """Remove ``keys`` (with per-key ``signs``) from all their cells.

    Returns the number of atomic XOR operations issued.  Removal is the
    vectorized analogue of what each GPU thread does after recovering its
    cell's item: the recovered keys are the dying hyperedges, their cells the
    endpoints, and the key/checksum XOR the payload edge effect.
    """
    if keys.size == 0:
        return 0
    cells = table.hasher.cell_indices(keys)
    checks = table.hasher.checksums(keys)
    flat_cells = cells.reshape(-1)
    if tracker is not None:
        tracker.record_round(flat_cells)
    remove_hyperedges(
        kernel,
        cells,
        table.count,
        signs,
        payloads=((table.key_sum, keys), (table.check_sum, checks)),
    )
    return int(flat_cells.size)


class SubtableParallelDecoder:
    """The paper's recovery scheme: ``r`` serial subrounds per round.

    Parameters
    ----------
    signed:
        Treat ``count == −1`` cells as pure as well (difference digests).
    max_rounds:
        Safety cap on the number of full rounds.
    track_conflicts:
        Record atomic-conflict depths per subround (slightly more work).
    kernel:
        Kernel backend name or instance (``None`` selects the default,
        ``"numpy"``).
    """

    def __init__(
        self,
        *,
        signed: bool = True,
        max_rounds: Optional[int] = None,
        track_conflicts: bool = True,
        kernel: Union[str, PeelingKernel, None] = None,
    ) -> None:
        self.signed = bool(signed)
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_conflicts = bool(track_conflicts)
        self.kernel = get_kernel(kernel)

    def decode(self, iblt: IBLT, *, in_place: bool = False) -> ParallelDecodeResult:
        """Run subtable-parallel recovery on ``iblt``."""
        if iblt.layout != "subtables":
            raise ValueError(
                "SubtableParallelDecoder requires an IBLT built with the "
                "'subtables' layout"
            )
        table = iblt if in_place else iblt.copy()
        kernel = self.kernel
        r = table.r
        subtable_size = table.hasher.subtable_size
        tracker = AtomicConflictTracker(table.num_cells) if self.track_conflicts else None
        recovered: List[np.ndarray] = []
        removed: List[np.ndarray] = []
        stats: List[RoundStats] = []
        limit = self.max_rounds if self.max_rounds is not None else 4 * table.num_cells + 16

        cells_scanned = 0
        subround = 0
        last_active_subround = 0
        rounds_executed = 0
        items_outstanding = abs(table.net_items)

        for round_index in range(1, limit + 1):
            recovered_this_round = 0
            for j in range(r):
                subround += 1
                start = j * subtable_size
                stop = start + subtable_size
                cells_scanned += subtable_size
                pure = _pure_cells_in_range(kernel, table, start, stop, self.signed)
                if pure.size:
                    keys = table.key_sum[pure].copy()
                    signs = table.count[pure].copy()
                    positive = keys[signs > 0]
                    negative = keys[signs < 0]
                    if positive.size:
                        recovered.append(positive)
                    if negative.size:
                        removed.append(negative)
                    _remove_keys(kernel, table, keys, signs, tracker)
                    recovered_this_round += int(pure.size)
                    last_active_subround = subround
                    items_outstanding = max(items_outstanding - int(pure.size), 0)
                elif tracker is not None:
                    tracker.record_round(np.empty(0, dtype=np.int64))
                stats.append(
                    RoundStats(
                        round_index=subround,
                        vertices_peeled=int(pure.size),
                        edges_peeled=int(pure.size),
                        vertices_remaining=int(np.count_nonzero(table.count)),
                        edges_remaining=items_outstanding,
                        work=subtable_size,
                        subtable=j,
                    )
                )
            if recovered_this_round == 0:
                break
            rounds_executed = round_index
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"parallel recovery did not terminate within {limit} rounds")

        recovered_arr = (
            np.concatenate(recovered) if recovered else np.empty(0, dtype=np.uint64)
        )
        removed_arr = np.concatenate(removed) if removed else np.empty(0, dtype=np.uint64)
        decode = IBLTDecodeResult(
            recovered=recovered_arr,
            removed=removed_arr,
            success=table.is_empty(),
            rounds=rounds_executed,
            subrounds=last_active_subround,
            cells_scanned=cells_scanned,
        )
        conflict_depths = tracker.round_depths if tracker is not None else []
        return ParallelDecodeResult(decode=decode, round_stats=stats, conflict_depths=conflict_depths)


class FlatParallelDecoder:
    """Whole-table rounds with key deduplication (the ablation variant).

    Every round scans all cells at once; an item pure in several cells at the
    same instant would be recovered (and deleted) several times, so recovered
    keys are deduplicated with a global unique pass before removal.  The
    paper's subtable scheme avoids the need for this global step; the
    ablation benchmark compares the two.

    Parameters
    ----------
    signed, max_rounds, track_conflicts, kernel:
        As for :class:`SubtableParallelDecoder`.
    """

    def __init__(
        self,
        *,
        signed: bool = True,
        max_rounds: Optional[int] = None,
        track_conflicts: bool = True,
        kernel: Union[str, PeelingKernel, None] = None,
    ) -> None:
        self.signed = bool(signed)
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_conflicts = bool(track_conflicts)
        self.kernel = get_kernel(kernel)

    def decode(self, iblt: IBLT, *, in_place: bool = False) -> ParallelDecodeResult:
        """Run flat round-synchronous recovery on ``iblt``."""
        table = iblt if in_place else iblt.copy()
        kernel = self.kernel
        tracker = AtomicConflictTracker(table.num_cells) if self.track_conflicts else None
        recovered: List[np.ndarray] = []
        removed: List[np.ndarray] = []
        stats: List[RoundStats] = []
        limit = self.max_rounds if self.max_rounds is not None else 4 * table.num_cells + 16
        cells_scanned = 0
        rounds_executed = 0
        items_outstanding = abs(table.net_items)

        for round_index in range(1, limit + 1):
            cells_scanned += table.num_cells
            pure = _pure_cells_in_range(kernel, table, 0, table.num_cells, self.signed)
            if pure.size == 0:
                stats.append(
                    RoundStats(
                        round_index=round_index,
                        vertices_peeled=0,
                        edges_peeled=0,
                        vertices_remaining=int(np.count_nonzero(table.count)),
                        edges_remaining=items_outstanding,
                        work=table.num_cells,
                    )
                )
                break
            keys = table.key_sum[pure].copy()
            signs = table.count[pure].copy()
            # An item may be pure in several cells simultaneously; keep one
            # occurrence of each (its sign is the same everywhere).
            keys, first = np.unique(keys, return_index=True)
            signs = signs[first]
            positive = keys[signs > 0]
            negative = keys[signs < 0]
            if positive.size:
                recovered.append(positive)
            if negative.size:
                removed.append(negative)
            _remove_keys(kernel, table, keys, signs, tracker)
            rounds_executed = round_index
            items_outstanding = max(items_outstanding - int(keys.size), 0)
            stats.append(
                RoundStats(
                    round_index=round_index,
                    vertices_peeled=int(keys.size),
                    edges_peeled=int(keys.size),
                    vertices_remaining=int(np.count_nonzero(table.count)),
                    edges_remaining=items_outstanding,
                    work=table.num_cells,
                )
            )
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"parallel recovery did not terminate within {limit} rounds")

        recovered_arr = (
            np.concatenate(recovered) if recovered else np.empty(0, dtype=np.uint64)
        )
        removed_arr = np.concatenate(removed) if removed else np.empty(0, dtype=np.uint64)
        decode = IBLTDecodeResult(
            recovered=recovered_arr,
            removed=removed_arr,
            success=table.is_empty(),
            rounds=rounds_executed,
            subrounds=rounds_executed,
            cells_scanned=cells_scanned,
        )
        conflict_depths = tracker.round_depths if tracker is not None else []
        return ParallelDecodeResult(decode=decode, round_stats=stats, conflict_depths=conflict_depths)
