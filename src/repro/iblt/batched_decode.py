"""Batched lockstep IBLT recovery: one fused pass over many tables.

The serving shape of set reconciliation and sparse recovery is *many small
tables* sharing one hash family — a fleet of difference digests, one per
peer — decoded independently.  Looping ``table.decode()`` over them pays
the per-table Python round loop B times.  This module stacks the cell
arrays of B same-geometry tables into flat columns (table ``g`` owns cells
``[g·m, (g+1)·m)``) and runs the flat round-synchronous recovery of
:class:`~repro.iblt.parallel_decode.FlatParallelDecoder` on all of them in
lockstep: one pure-cell scan and one XOR-removal scatter per round for the
whole batch.

Because a key's cells never leave its own table, round ``t`` of the
lockstep process recovers exactly the union of what round ``t`` of each
per-table decode recovers, and the per-table results — recovered keys and
their order, round counts, per-round statistics, conflict depths — are
identical to ``[FlatParallelDecoder(...).decode(t) for t in tables]``
(``tests/test_batched_decode.py`` pins this property, including failing
and partially-decoding tables).

:class:`BatchedFlatDecoder` is registered in the decoder registry as
``"batched"``; the batch entry point is
:func:`decode_many` / :meth:`IBLT.decode_many`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.results import RoundStats
from repro.iblt.iblt import IBLT, IBLTDecodeResult
from repro.iblt.parallel_decode import ParallelDecodeResult
from repro.kernels import PeelingKernel, get_kernel, remove_hyperedges
from repro.kernels.arena import default_arena
from repro.utils.validation import check_positive_int

__all__ = ["BatchedFlatDecoder", "decode_many"]


def _stack(columns: List[np.ndarray], name: str) -> np.ndarray:
    """Concatenate same-dtype columns into a reused thread-local arena buffer.

    The stack is mutable scratch that lives only for one ``_decode_stacked``
    call, so successive batches on a worker reuse one allocation instead of
    concatenating into a fresh array per call.  (Compaction rounds may later
    rebind the stack to a fresh smaller array; that is fine — the arena
    buffer simply becomes reusable scratch again.)
    """
    total = sum(c.size for c in columns)
    out = default_arena().take(name, total, columns[0].dtype)
    return np.concatenate(columns, out=out)


def _require_shared_family(tables: Sequence[IBLT]) -> IBLT:
    """All tables must share geometry, layout and hash seed; returns the first."""
    first = tables[0]
    for index, table in enumerate(tables[1:], start=1):
        if (
            table.num_cells != first.num_cells
            or table.r != first.r
            or table.layout != first.layout
            or table.hasher.seed != first.hasher.seed
        ):
            raise ValueError(
                "batched decoding requires tables sharing geometry, layout and "
                f"hash seed; table {index} differs from table 0"
            )
    return first


class BatchedFlatDecoder:
    """Lockstep flat recovery of a batch of same-hash-family tables.

    Parameters
    ----------
    signed:
        Treat ``count == −1`` cells as pure as well (difference digests).
    max_rounds:
        Safety cap on the number of lockstep rounds.
    track_conflicts:
        Record per-table atomic-conflict depths per round.
    kernel:
        Kernel backend name or instance (``None`` selects the default,
        ``"numpy"``).
    """

    def __init__(
        self,
        *,
        signed: bool = True,
        max_rounds: Optional[int] = None,
        track_conflicts: bool = True,
        kernel: Union[str, PeelingKernel, None] = None,
    ) -> None:
        self.signed = bool(signed)
        if max_rounds is not None:
            max_rounds = check_positive_int(max_rounds, "max_rounds")
        self.max_rounds = max_rounds
        self.track_conflicts = bool(track_conflicts)
        self.kernel = get_kernel(kernel)

    # ------------------------------------------------------------------ #
    # single-table face (the decoder-registry protocol)
    # ------------------------------------------------------------------ #
    def decode(self, iblt: IBLT, *, in_place: bool = False) -> ParallelDecodeResult:
        """Decode a single table (a batch of one).

        ``in_place`` writes the residual cell state back into the caller's
        table — empty on success, the undecodable remainder on failure —
        matching the other decoders' contract (the lockstep pass itself
        always works on stacked scratch columns).
        """
        results, residuals = self._decode_stacked([iblt], keep_residuals=True)
        if in_place:
            residual_count, residual_keys, residual_checks = residuals[0]
            iblt.count[:] = residual_count
            iblt.key_sum[:] = residual_keys
            iblt.check_sum[:] = residual_checks
        return results[0]

    # ------------------------------------------------------------------ #
    # the batch entry point
    # ------------------------------------------------------------------ #
    def decode_many(self, tables: Sequence[IBLT]) -> List[ParallelDecodeResult]:
        """Decode every table in one lockstep run; results in input order."""
        return self._decode_stacked(tables)[0]

    def _decode_stacked(self, tables: Sequence[IBLT], *, keep_residuals: bool = False):
        """Lockstep decode; returns ``(results, residuals)``.

        ``residuals`` (captured only when ``keep_residuals``) holds each
        table's final ``(count, key_sum, check_sum)`` segment — empty on
        success, the undecodable remainder on failure.
        """
        tables = list(tables)
        residuals: List[Optional[tuple]] = [None] * len(tables)
        if not tables:
            return [], residuals
        first = _require_shared_family(tables)
        kernel = self.kernel
        hasher = first.hasher
        m = first.num_cells
        num_tables = len(tables)

        # Stack the cell columns; the stack is the scratch copy, so the
        # input tables are never mutated.  ``stacked_ids`` maps each stack
        # position to its original table index — a table leaves the stack
        # (via compaction below) the round after its last recovery, exactly
        # when its own loop would have observed "no pure cells", recorded
        # the empty round and broken out.
        count = _stack([t.count for t in tables], "iblt/count")
        key_sum = _stack([t.key_sum for t in tables], "iblt/key_sum")
        check_sum = _stack([t.check_sum for t in tables], "iblt/check_sum")
        stacked_ids = np.arange(num_tables, dtype=np.int64)
        open_local = np.ones(num_tables, dtype=bool)

        limit = self.max_rounds if self.max_rounds is not None else 4 * m + 16
        # Per-table bookkeeping (original indices), mirroring
        # FlatParallelDecoder's loop state.
        recovered: List[List[np.ndarray]] = [[] for _ in range(num_tables)]
        removed: List[List[np.ndarray]] = [[] for _ in range(num_tables)]
        stats: List[List[RoundStats]] = [[] for _ in range(num_tables)]
        conflicts: List[List[int]] = [[] for _ in range(num_tables)]
        items_outstanding = np.asarray([abs(t.net_items) for t in tables], dtype=np.int64)
        rounds_executed = np.zeros(num_tables, dtype=np.int64)
        rounds_recorded = np.zeros(num_tables, dtype=np.int64)
        success = np.zeros(num_tables, dtype=bool)

        for round_index in range(1, limit + 1):
            stack_size = stacked_ids.size
            pure = kernel.pure_cells(
                count, key_sum, check_sum, hasher.checksums, signed=self.signed,
                start=0, stop=stack_size * m,
            )
            seg = pure // m  # local stack position
            keys = key_sum[pure]
            signs = count[pure]
            # Per-table dedup with per-table sorted order — exactly what
            # np.unique does inside each table's own flat decode round.
            order = np.lexsort((keys, seg))
            seg, keys, signs = seg[order], keys[order], signs[order]
            if keys.size:
                first_occurrence = np.ones(keys.size, dtype=bool)
                first_occurrence[1:] = (keys[1:] != keys[:-1]) | (seg[1:] != seg[:-1])
                seg = seg[first_occurrence]
                keys = keys[first_occurrence]
                signs = signs[first_occurrence]

            recovered_per_local = np.zeros(stack_size, dtype=np.int64)
            if seg.size:
                np.add.at(recovered_per_local, seg, 1)

            # Close out tables whose round recovered nothing: record the
            # final all-zero stats entry their own loop emits; their cells
            # can never change again, so success and residuals are final.
            closing = np.flatnonzero(open_local & (recovered_per_local == 0))
            for local in closing:
                g = int(stacked_ids[local])
                lo, hi = local * m, (local + 1) * m
                stats[g].append(
                    RoundStats(
                        round_index=round_index,
                        vertices_peeled=0,
                        edges_peeled=0,
                        vertices_remaining=int(np.count_nonzero(count[lo:hi])),
                        edges_remaining=int(items_outstanding[g]),
                        work=m,
                    )
                )
                rounds_recorded[g] = round_index
                success[g] = bool(
                    not count[lo:hi].any()
                    and not key_sum[lo:hi].any()
                    and not check_sum[lo:hi].any()
                )
                if keep_residuals:
                    residuals[g] = (
                        count[lo:hi].copy(), key_sum[lo:hi].copy(), check_sum[lo:hi].copy()
                    )
                open_local[local] = False
            if not seg.size:
                break

            checks = hasher.checksums(keys)
            cells = hasher.cell_indices(keys) + (seg * m)[:, None]
            flat_cells = cells.reshape(-1)
            remove_hyperedges(
                kernel,
                cells,
                count,
                signs,
                payloads=((key_sum, keys), (check_sum, checks)),
            )

            if self.track_conflicts and flat_cells.size:
                targets, multiplicities = np.unique(flat_cells, return_counts=True)
                depth_per_local = np.zeros(stack_size, dtype=np.int64)
                np.maximum.at(depth_per_local, targets // m, multiplicities)

            boundaries = np.searchsorted(seg, np.arange(stack_size + 1))
            for local in np.flatnonzero(open_local & (recovered_per_local > 0)):
                g = int(stacked_ids[local])
                items_outstanding[g] = max(
                    int(items_outstanding[g] - recovered_per_local[local]), 0
                )
                rounds_executed[g] = round_index
                rounds_recorded[g] = round_index
                table_keys = keys[boundaries[local]: boundaries[local + 1]]
                table_signs = signs[boundaries[local]: boundaries[local + 1]]
                positive = table_keys[table_signs > 0]
                negative = table_keys[table_signs < 0]
                if positive.size:
                    recovered[g].append(positive)
                if negative.size:
                    removed[g].append(negative)
                if self.track_conflicts:
                    conflicts[g].append(int(depth_per_local[local]))
                lo, hi = local * m, (local + 1) * m
                stats[g].append(
                    RoundStats(
                        round_index=round_index,
                        vertices_peeled=int(recovered_per_local[local]),
                        edges_peeled=int(recovered_per_local[local]),
                        vertices_remaining=int(np.count_nonzero(count[lo:hi])),
                        edges_remaining=int(items_outstanding[g]),
                        work=m,
                    )
                )

            # Compact closed tables out of the stack once they are at least
            # half of it, so a few stubborn stragglers do not keep paying
            # pure-cell scans over everyone who already finished.  The
            # half threshold amortizes: total compaction work is O(B·m).
            open_count = int(open_local.sum())
            if open_count * 2 <= stack_size:
                keep = np.flatnonzero(open_local)
                count = count.reshape(stack_size, m)[keep].reshape(-1)
                key_sum = key_sum.reshape(stack_size, m)[keep].reshape(-1)
                check_sum = check_sum.reshape(stack_size, m)[keep].reshape(-1)
                stacked_ids = stacked_ids[keep]
                open_local = np.ones(keep.size, dtype=bool)
        else:  # pragma: no cover - defensive
            raise RuntimeError(
                f"batched recovery did not terminate within {limit} rounds"
            )

        results: List[ParallelDecodeResult] = []
        for g in range(num_tables):
            recovered_arr = (
                np.concatenate(recovered[g]) if recovered[g] else np.empty(0, dtype=np.uint64)
            )
            removed_arr = (
                np.concatenate(removed[g]) if removed[g] else np.empty(0, dtype=np.uint64)
            )
            decode = IBLTDecodeResult(
                recovered=recovered_arr,
                removed=removed_arr,
                success=bool(success[g]),
                rounds=int(rounds_executed[g]),
                subrounds=int(rounds_executed[g]),
                cells_scanned=int(rounds_recorded[g]) * m,
            )
            results.append(
                ParallelDecodeResult(
                    decode=decode,
                    round_stats=stats[g],
                    conflict_depths=conflicts[g],
                )
            )
        return results, residuals


def decode_many(
    tables: Sequence[IBLT],
    *,
    decoder: str = "batched",
    signed: bool = True,
    **options,
) -> List[object]:
    """Decode a batch of tables with a name-selected decoder, in input order.

    With ``decoder="batched"`` (the default) all tables are decoded in one
    lockstep pass through :class:`BatchedFlatDecoder` — they must share
    geometry, layout and hash seed.  Any other registered decoder name
    falls back to a per-table loop with that decoder, so the call is a
    drop-in batch front door regardless of schedule.
    """
    from repro.iblt.registry import get_decoder  # local import avoids a cycle

    factory = get_decoder(decoder)
    instance = factory(signed=signed, **options)
    batch_decode = getattr(instance, "decode_many", None)
    if callable(batch_decode):
        return list(batch_decode(tables))
    return [instance.decode(table) for table in tables]
