"""Resumable IBLT decoding: keep the fixed point resident, re-peel the churn.

A from-scratch decode peels the *whole* table to its fixed point.  But the
fixed point is monotone: after inserting or deleting a few keys, only cells
whose contents changed can become newly pure, so re-peeling should cost
rounds proportional to the churn, not to the table size.  This module is
that observation as code.

An :class:`IncrementalDecodeSession` is created by
``IBLT.decode(incremental=True)`` and holds three things:

* the **residual** cell arrays — the table minus everything recovered so
  far.  By linearity of the IBLT (cell fields are sums/XORs of per-key
  contributions), the residual after any mutation batch equals the residual
  before it plus the batch's cell deltas, so the session keeps it current
  by mirroring every ``insert``/``delete`` (and, on the serve path, raw
  cell-wise deltas between two shipped tables) without ever re-touching
  clean cells.
* the **net sign** of every key recovered so far (``+1`` recovered,
  ``-1`` removed).  A churn batch that deletes a previously-recovered key
  shows up in the residual as ``-1`` copies of it; the re-peel recovers it
  with sign ``-1`` and the signs cancel — exactly matching a from-scratch
  decode of the mutated table, which never saw the key at all.
* the **dirty cell set** accumulated since the last checkpoint — the only
  places a new pure cell can appear.

``checkpoint()`` then runs the candidate-seeded peeling loop: test only the
dirty cells for purity, extract and remove the discovered keys through the
shared :func:`~repro.kernels.rounds.remove_hyperedges` scatter core, and
take the touched cells as the next candidate set.  The loop is
decoder-independent — the decoder choice (serial / flat / batched) governs
only the bootstrap decode, so incremental results are trivially identical
across decoders, and the parity tests pin every checkpoint bit-identical to
a from-scratch decode of the mutated table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.kernels import get_kernel, remove_hyperedges
from repro.kernels.base import PeelingKernel

__all__ = ["IncrementalDecodeResult", "IncrementalDecodeSession"]


@dataclass(frozen=True)
class IncrementalDecodeResult:
    """Outcome of one incremental decode checkpoint.

    Attributes
    ----------
    recovered / removed:
        The *cumulative* net contents of the table at this checkpoint, in
        canonical (ascending) key order: keys with positive net sign in
        ``recovered``, negative in ``removed``.  Identical, as sets-with-
        multiplicity, to what a from-scratch decode of the mutated table
        returns.
    success:
        True when the residual is fully drained (every cell zero) — the
        same criterion as a from-scratch decode's ``success``.
    rounds:
        Absolute peeling rounds across the session's life
        (``resumed_from_round + rounds_incremental``).
    resumed_from_round:
        Rounds already accounted for before this checkpoint (0 for the
        bootstrap decode).
    rounds_incremental:
        Productive re-peel rounds this checkpoint executed — the quantity
        that scales with the churn, not with the table size.
    cells_scanned:
        Cell inspections performed by this checkpoint's re-peel (candidate
        purity tests; the bootstrap decode's own scan is not re-counted).
    """

    recovered: np.ndarray
    removed: np.ndarray
    success: bool
    rounds: int
    resumed_from_round: int
    rounds_incremental: int
    cells_scanned: int

    @property
    def num_recovered(self) -> int:
        """Total keys recovered, regardless of sign."""
        return int(self.recovered.size + self.removed.size)


class IncrementalDecodeSession:
    """Resident post-decode state of an evolving IBLT (see module docstring).

    Built by ``IBLT.decode(incremental=True)``; not constructed directly by
    applications.  The session aliases nothing from the source table — the
    residual arrays are owned copies — so the table may keep mutating (the
    session mirrors each mutation) without invalidating the checkpoint.
    """

    def __init__(
        self,
        table,
        result,
        *,
        signed: bool,
        kernel: Optional[PeelingKernel] = None,
    ) -> None:
        self.hasher = table.hasher
        self.r = table.r
        self.num_cells = table.num_cells
        self.signed = bool(signed)
        self.kernel = kernel if kernel is not None else get_kernel(None)
        # Residual = table − encode(net recovered), built by linearity from
        # the bootstrap result instead of relying on any decoder's in-place
        # semantics: scatter the recovered keys back *out* (and the removed
        # keys back *in*), leaving exactly the undecodable 2-core.
        self.count = table.count.copy()
        self.key_sum = table.key_sum.copy()
        self.check_sum = table.check_sum.copy()
        # Net signs live in sorted parallel arrays (keys ascending, values
        # the nonzero net sign) rather than a dict: checkpoints merge their
        # few churn-sized deltas in with searchsorted, and the canonical
        # output is a vectorized repeat — never a Python loop over every
        # recovered key, which would make each checkpoint O(n).
        self._net_keys = np.empty(0, dtype=np.uint64)
        self._net_vals = np.empty(0, dtype=np.int64)
        self._dirty: List[np.ndarray] = []
        self.rounds = int(result.rounds)
        recovered = np.asarray(result.recovered, dtype=np.uint64)
        removed = np.asarray(result.removed, dtype=np.uint64)
        for keys, sign in ((recovered, 1), (removed, -1)):
            if keys.size:
                self._scatter(keys, -sign)
        all_keys = np.concatenate([recovered, removed])
        if all_keys.size:
            signs = np.concatenate(
                [
                    np.ones(recovered.size, dtype=np.int64),
                    -np.ones(removed.size, dtype=np.int64),
                ]
            )
            uniq, inverse = np.unique(all_keys, return_inverse=True)
            nets = np.zeros(uniq.size, dtype=np.int64)
            np.add.at(nets, inverse, signs)
            keep = nets != 0
            self._net_keys = uniq[keep]
            self._net_vals = nets[keep]

    # ------------------------------------------------------------------ #
    # residual maintenance (the linearity hooks)
    # ------------------------------------------------------------------ #
    def _scatter(self, keys: np.ndarray, delta: int) -> None:
        cells = self.hasher.cell_indices(keys)
        checks = self.hasher.checksums(keys)
        for j in range(self.r):
            column = cells[:, j]
            np.add.at(self.count, column, delta)
            np.bitwise_xor.at(self.key_sum, column, keys)
            np.bitwise_xor.at(self.check_sum, column, checks)

    def mirror(self, keys: np.ndarray, delta: int, cells: np.ndarray, checks: np.ndarray) -> None:
        """Apply one ``insert``/``delete`` batch to the residual.

        Called from ``IBLT._apply`` with the cell/checksum arrays it already
        computed, so mirroring costs one extra scatter, not a re-hash.  The
        touched cells become dirty candidates for the next checkpoint.
        """
        for j in range(self.r):
            column = cells[:, j]
            np.add.at(self.count, column, delta)
            np.bitwise_xor.at(self.key_sum, column, keys)
            np.bitwise_xor.at(self.check_sum, column, checks)
        self._dirty.append(cells.reshape(-1).astype(np.int64, copy=False))

    def apply_cell_delta(
        self,
        cells: np.ndarray,
        d_count: np.ndarray,
        d_key: np.ndarray,
        d_check: np.ndarray,
    ) -> None:
        """Apply a raw cell-wise delta (``T_new − T_old``) to the residual.

        The serve-layer session path: when a client re-ships a whole evolved
        table, the difference of the two byte images *is* the mutation batch
        (linearity again), so the server needs neither the keys nor the
        hashes — just the changed cells.  ``cells`` must list each cell at
        most once.
        """
        self.count[cells] += d_count
        self.key_sum[cells] ^= d_key
        self.check_sum[cells] ^= d_check
        self._dirty.append(np.asarray(cells, dtype=np.int64))

    def residual_is_empty(self) -> bool:
        """True when every residual cell is zero (the table fully decoded)."""
        return bool(
            not self.count.any() and not self.key_sum.any() and not self.check_sum.any()
        )

    # ------------------------------------------------------------------ #
    # the incremental re-peel
    # ------------------------------------------------------------------ #
    def _pure_among(self, candidates: np.ndarray) -> np.ndarray:
        counts = self.count[candidates]
        mask = np.abs(counts) == 1 if self.signed else counts == 1
        idx = candidates[mask]
        if idx.size == 0:
            return idx
        keys = self.key_sum[idx]
        ok = (self.hasher.checksums(keys) == self.check_sum[idx]) & (keys != 0)
        return idx[ok]

    def checkpoint(self) -> IncrementalDecodeResult:
        """Re-peel from the dirty cells and report the cumulative contents.

        Runs the round-synchronous peeling loop seeded with the cells the
        churn touched: each round tests only the current candidates for
        purity, removes the discovered keys through the kernel scatter core,
        and takes the cells those removals touched as the next candidates.
        Work is proportional to the churn's peeling cascade; the clean bulk
        of the table is never examined.

        A checkpoint that ends with a non-empty residual (``success=False``)
        may have stalled on a genuine 2-core *or* on a spurious-pure cell (a
        duplicate-endpoint key XOR-cancels out of its cell's ``key_sum``,
        letting stale contents masquerade as pure); ``IBLT`` treats either as
        grounds to discard the session and re-bootstrap from scratch.
        """
        resumed_from = self.rounds
        if self._dirty:
            candidates = np.unique(np.concatenate(self._dirty))
            self._dirty.clear()
        else:
            candidates = np.empty(0, dtype=np.int64)
        rounds_incremental = 0
        cells_scanned = 0
        delta: Dict[int, int] = {}
        while candidates.size:
            cells_scanned += int(candidates.size)
            pure = self._pure_among(candidates)
            if pure.size == 0:
                break
            keys = self.key_sum[pure]
            signs = self.count[pure].astype(np.int64, copy=False)
            # Two pure cells may hold the same key; remove it once (the
            # second cell stops being pure the moment the first removal
            # lands, exactly as in the sequential worklist).
            keys, first = np.unique(keys, return_index=True)
            signs = signs[first]
            cells = self.hasher.cell_indices(keys)
            checks = self.hasher.checksums(keys)
            remove_hyperedges(
                self.kernel,
                cells,
                self.count,
                signs,
                payloads=((self.key_sum, keys), (self.check_sum, checks)),
            )
            rounds_incremental += 1
            # The round's discoveries are churn-sized, so a scratch dict is
            # cheap; the merge into the sorted net-sign arrays happens once
            # per checkpoint, below.
            for key, sign in zip(keys.tolist(), signs.tolist()):
                delta[key] = delta.get(key, 0) + sign
            candidates = np.unique(cells)
        if delta:
            self._apply_net_deltas(delta)
        self.rounds = resumed_from + rounds_incremental
        recovered, removed = self._net_contents()
        return IncrementalDecodeResult(
            recovered=recovered,
            removed=removed,
            success=self.residual_is_empty(),
            rounds=self.rounds,
            resumed_from_round=resumed_from,
            rounds_incremental=rounds_incremental,
            cells_scanned=cells_scanned,
        )

    def _apply_net_deltas(self, delta: Dict[int, int]) -> None:
        """Merge one checkpoint's sign deltas into the sorted net-sign arrays."""
        keys = np.fromiter(delta.keys(), dtype=np.uint64, count=len(delta))
        vals = np.fromiter(delta.values(), dtype=np.int64, count=len(delta))
        order = np.argsort(keys)
        keys, vals = keys[order], vals[order]
        idx = np.searchsorted(self._net_keys, keys)
        match = np.zeros(keys.size, dtype=bool)
        in_range = idx < self._net_keys.size
        match[in_range] = self._net_keys[idx[in_range]] == keys[in_range]
        self._net_vals[idx[match]] += vals[match]
        fresh = ~match & (vals != 0)
        if fresh.any():
            self._net_keys = np.insert(self._net_keys, idx[fresh], keys[fresh])
            self._net_vals = np.insert(self._net_vals, idx[fresh], vals[fresh])
        nonzero = self._net_vals != 0
        if not nonzero.all():
            self._net_keys = self._net_keys[nonzero]
            self._net_vals = self._net_vals[nonzero]

    def _net_contents(self) -> tuple:
        """Canonical (sorted, multiplicity-respecting) recovered/removed arrays."""
        pos = self._net_vals > 0
        neg = ~pos
        return (
            np.repeat(self._net_keys[pos], self._net_vals[pos]),
            np.repeat(self._net_keys[neg], -self._net_vals[neg]),
        )
