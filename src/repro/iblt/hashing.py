"""Hashing utilities for Invertible Bloom Lookup Tables.

Keys are unsigned 64-bit integers.  Cell indices and checksums are produced
by seeded SplitMix64-style mixers, which are fast, stateless, vectorize over
NumPy arrays and have far better distribution than Python's builtin ``hash``
for adversarially regular inputs (e.g. consecutive integers).

Two table layouts are supported, mirroring Section 6:

* ``"subtables"`` — the table is split into ``r`` equal subtables and hash
  function ``j`` maps a key into subtable ``j`` only.  This is the layout the
  paper's GPU implementation uses to avoid deleting an item twice.
* ``"flat"`` — all ``r`` hash functions map into the whole table (classic
  IBLT layout); the same key may even collide with itself, producing a
  duplicate endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive_int

__all__ = ["splitmix64", "KeyHasher", "checksum_keys"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)

_MASK64 = (1 << 64) - 1


def splitmix64(values: np.ndarray | int, seed: int = 0) -> np.ndarray | int:
    """SplitMix64 finalizer applied to ``values`` (vectorized).

    Parameters
    ----------
    values:
        Scalar or array of unsigned 64-bit integers.
    seed:
        Seed mixed into the input before finalization; different seeds give
        (empirically) independent hash functions.  Any Python int is
        accepted and wraps modulo 2**64 (``seed=-1`` hashes like
        ``seed=2**64 - 1``): ``np.uint64(seed)`` would raise
        ``OverflowError`` on negative or ``>= 2**64`` inputs, exactly the
        values derived-seed arithmetic can hand in.

    Returns
    -------
    Same shape as ``values``, dtype ``uint64``.
    """
    scalar = np.isscalar(values) or np.ndim(values) == 0
    x = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = x + np.uint64(int(seed) & _MASK64) * _GOLDEN + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        z = z ^ (z >> np.uint64(31))
    if scalar:
        return np.uint64(z)
    return z


def checksum_keys(keys: np.ndarray | int, seed: int = 0x5EED) -> np.ndarray | int:
    """Checksum of one or many keys (a keyed SplitMix64 digest).

    The checksum is what lets the decoder distinguish a *pure* cell (exactly
    one item) from a cell whose key field happens to XOR to a plausible
    value: a cell is pure only if ``checksum(key_sum) == check_sum``.
    """
    return splitmix64(keys, seed=seed ^ 0xC0FFEE)


Layout = Literal["subtables", "flat"]


@dataclass(frozen=True)
class KeyHasher:
    """Maps keys to their ``r`` cells and computes checksums.

    Parameters
    ----------
    num_cells:
        Total number of cells in the table.  For the ``"subtables"`` layout
        this must be divisible by ``r``.
    r:
        Number of hash functions (cells per key).
    layout:
        ``"subtables"`` or ``"flat"`` (see module docstring).
    seed:
        Base seed; per-hash-function seeds are derived deterministically.
    """

    num_cells: int
    r: int
    layout: Layout = "subtables"
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.num_cells, "num_cells")
        check_positive_int(self.r, "r")
        if self.r < 2:
            raise ValueError(f"r must be >= 2, got {self.r}")
        if self.layout not in ("subtables", "flat"):
            raise ValueError(f"layout must be 'subtables' or 'flat', got {self.layout!r}")
        if self.layout == "subtables" and self.num_cells % self.r != 0:
            raise ValueError(
                f"num_cells ({self.num_cells}) must be divisible by r ({self.r}) "
                "for the subtable layout"
            )

    @property
    def subtable_size(self) -> int:
        """Cells per subtable (only meaningful for the subtable layout)."""
        if self.layout != "subtables":
            raise ValueError("subtable_size is undefined for the flat layout")
        return self.num_cells // self.r

    def cell_indices(self, keys: np.ndarray | int) -> np.ndarray:
        """Return the ``(len(keys), r)`` array of cell indices for ``keys``.

        For the subtable layout, column ``j`` always lies within subtable
        ``j`` (``[j * subtable_size, (j+1) * subtable_size)``).
        """
        scalar = np.isscalar(keys) or np.ndim(keys) == 0
        keys_arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        out = np.empty((keys_arr.size, self.r), dtype=np.int64)
        if self.layout == "subtables":
            block = self.subtable_size
            for j in range(self.r):
                hashed = splitmix64(keys_arr, seed=derive_seed(self.seed, "cell", j))
                out[:, j] = (hashed % np.uint64(block)).astype(np.int64) + j * block
        else:
            for j in range(self.r):
                hashed = splitmix64(keys_arr, seed=derive_seed(self.seed, "cell", j))
                out[:, j] = (hashed % np.uint64(self.num_cells)).astype(np.int64)
        if scalar:
            return out[0]
        return out

    def checksums(self, keys: np.ndarray | int) -> np.ndarray:
        """Checksums of ``keys`` under this hasher's checksum seed."""
        return checksum_keys(np.asarray(keys, dtype=np.uint64), seed=derive_seed(self.seed, "checksum"))

    def subtable_of_cell(self, cells: np.ndarray | int) -> np.ndarray | int:
        """Subtable index of each cell (subtable layout only)."""
        if self.layout != "subtables":
            raise ValueError("cells do not belong to subtables in the flat layout")
        return np.asarray(cells, dtype=np.int64) // self.subtable_size
