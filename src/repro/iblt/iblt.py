"""Invertible Bloom Lookup Tables (Goodrich–Mitzenmacher) with serial recovery.

An IBLT stores a multiset of 64-bit keys in ``m`` cells; each key is hashed
into ``r`` cells and XORed into their ``key_sum`` and ``check_sum`` fields
while a ``count`` field tracks how many keys occupy the cell.  Insertion and
deletion are the same operation with opposite count signs, so the structure
also supports the "signed" regime used for set reconciliation, where counts
may go negative.

Recovery ("listing") repeatedly finds *pure* cells — cells holding exactly
one key (count ±1 and matching checksum) — extracts the key and removes it
from its other cells, which is precisely the peeling process on the
hypergraph whose vertices are cells and whose edges are keys.  Recovery
succeeds iff the 2-core of that hypergraph is empty.

This module implements the table and the classical *serial* recovery; the
round-synchronous parallel recovery of Section 6 lives in
:mod:`repro.iblt.parallel_decode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.iblt.hashing import KeyHasher, Layout
from repro.utils.validation import check_positive_int

__all__ = ["IBLT", "IBLTDecodeResult"]


@dataclass(frozen=True)
class IBLTDecodeResult:
    """Outcome of an IBLT recovery.

    Attributes
    ----------
    recovered:
        Keys recovered with positive sign (items inserted more often than
        deleted).
    removed:
        Keys recovered with negative sign (net-deleted items; only non-empty
        in the signed/set-reconciliation regime).
    success:
        True when the table fully decoded (every cell zeroed out).
    rounds:
        Parallel rounds used (1 for serial recovery: the notion of a round is
        meaningless there, but keeping the field uniform simplifies the
        harness).
    subrounds:
        Subrounds used (subtable decoder only; equals ``rounds`` otherwise).
    cells_scanned:
        Total number of cell inspections performed (work).
    """

    recovered: np.ndarray
    removed: np.ndarray
    success: bool
    rounds: int
    subrounds: int
    cells_scanned: int

    @property
    def num_recovered(self) -> int:
        """Total keys recovered, regardless of sign."""
        return int(self.recovered.size + self.removed.size)


class IBLT:
    """An Invertible Bloom Lookup Table.

    Parameters
    ----------
    num_cells:
        Number of cells ``m``.  For the subtable layout (default) this must
        be divisible by ``r``.
    r:
        Number of hash functions / cells per key (``>= 2``).
    layout:
        ``"subtables"`` (one hash per subtable, the paper's GPU layout) or
        ``"flat"`` (all hashes over the whole table).
    seed:
        Seed for the hash family.

    Notes
    -----
    Keys must be non-zero unsigned 64-bit integers (zero is indistinguishable
    from an empty key field).
    """

    def __init__(
        self,
        num_cells: int,
        r: int = 3,
        *,
        layout: Layout = "subtables",
        seed: int = 0,
    ) -> None:
        self.num_cells = check_positive_int(num_cells, "num_cells")
        self.r = check_positive_int(r, "r")
        self.hasher = KeyHasher(num_cells=self.num_cells, r=self.r, layout=layout, seed=int(seed))
        self.layout = layout
        self.count = np.zeros(self.num_cells, dtype=np.int64)
        self.key_sum = np.zeros(self.num_cells, dtype=np.uint64)
        self.check_sum = np.zeros(self.num_cells, dtype=np.uint64)
        self._net_items = 0
        self._session = None  # resident IncrementalDecodeSession, if any

    # ------------------------------------------------------------------ #
    # construction / basic properties
    # ------------------------------------------------------------------ #
    @property
    def load(self) -> float:
        """Net number of stored items divided by the number of cells."""
        return self._net_items / self.num_cells

    @property
    def net_items(self) -> int:
        """Net insertions minus deletions applied so far."""
        return self._net_items

    def copy(self) -> "IBLT":
        """Deep copy of the table (same hasher, copied cell arrays)."""
        clone = IBLT(self.num_cells, self.r, layout=self.layout, seed=self.hasher.seed)
        clone.count = self.count.copy()
        clone.key_sum = self.key_sum.copy()
        clone.check_sum = self.check_sum.copy()
        clone._net_items = self._net_items
        return clone

    @staticmethod
    def _as_keys(keys: Sequence[int] | np.ndarray) -> np.ndarray:
        arr = np.atleast_1d(np.asarray(keys, dtype=np.uint64))
        if arr.ndim != 1:
            raise ValueError(f"keys must be one-dimensional, got shape {arr.shape}")
        if (arr == 0).any():
            raise ValueError("keys must be non-zero (0 is reserved for empty cells)")
        return arr

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def _apply(self, keys: np.ndarray, delta: int) -> None:
        cells = self.hasher.cell_indices(keys)
        checks = self.hasher.checksums(keys)
        for j in range(self.r):
            column = cells[:, j]
            np.add.at(self.count, column, delta)
            np.bitwise_xor.at(self.key_sum, column, keys)
            np.bitwise_xor.at(self.check_sum, column, checks)
        if self._session is not None:
            # Keep the resident decode session's residual current (same
            # scatter on its arrays) and mark the touched cells dirty, so
            # the next incremental checkpoint re-peels only from here.
            self._session.mirror(keys, delta, cells, checks)

    def insert(self, keys: Sequence[int] | np.ndarray) -> None:
        """Insert one key or a batch of keys."""
        arr = self._as_keys(keys)
        if arr.size == 0:
            return
        self._apply(arr, +1)
        self._net_items += int(arr.size)

    def delete(self, keys: Sequence[int] | np.ndarray) -> None:
        """Delete one key or a batch of keys (the mirror of :meth:`insert`)."""
        arr = self._as_keys(keys)
        if arr.size == 0:
            return
        self._apply(arr, -1)
        self._net_items -= int(arr.size)

    def subtract(self, other: "IBLT") -> "IBLT":
        """Return the cell-wise difference ``self − other``.

        Both tables must share the same geometry and seed.  The result
        encodes the symmetric difference of the two underlying key sets; this
        is the difference digest used for set reconciliation.
        """
        if (
            self.num_cells != other.num_cells
            or self.r != other.r
            or self.layout != other.layout
            or self.hasher.seed != other.hasher.seed
        ):
            raise ValueError("IBLTs must share geometry, layout and seed to be subtracted")
        result = IBLT(self.num_cells, self.r, layout=self.layout, seed=self.hasher.seed)
        result.count = self.count - other.count
        result.key_sum = self.key_sum ^ other.key_sum
        result.check_sum = self.check_sum ^ other.check_sum
        result._net_items = self._net_items - other._net_items
        return result

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def is_empty(self) -> bool:
        """True when every cell is zeroed (nothing left to recover)."""
        return bool(
            not self.count.any() and not self.key_sum.any() and not self.check_sum.any()
        )

    def pure_cell_mask(self, *, signed: bool = True) -> np.ndarray:
        """Boolean mask of the cells currently *pure* (holding exactly one key).

        A cell is pure when ``count == +1`` (or ``−1`` if ``signed``) and the
        checksum of its key field matches its checksum field.
        """
        if signed:
            candidate = np.abs(self.count) == 1
        else:
            candidate = self.count == 1
        if not candidate.any():
            return candidate
        mask = candidate.copy()
        idx = np.flatnonzero(candidate)
        expected = self.hasher.checksums(self.key_sum[idx])
        ok = (expected == self.check_sum[idx]) & (self.key_sum[idx] != 0)
        mask[idx] = ok
        return mask

    def get(self, key: int) -> Optional[int]:
        """Look up ``key``; returns its net count if determinable, else None.

        Returns 0 if some cell proves the key absent, the count if some pure
        cell contains the key, and None if every cell is ambiguous.
        """
        arr = self._as_keys([key])
        cells = self.hasher.cell_indices(arr)[0]
        check = int(self.hasher.checksums(arr)[0])
        for cell in cells:
            cell = int(cell)
            if self.count[cell] == 0 and self.key_sum[cell] == 0 and self.check_sum[cell] == 0:
                return 0
            if abs(int(self.count[cell])) == 1 and int(self.key_sum[cell]) == int(arr[0]) and int(
                self.check_sum[cell]
            ) == check:
                return int(self.count[cell])
        return None

    # ------------------------------------------------------------------ #
    # serial recovery (the baseline of Tables 3 and 4)
    # ------------------------------------------------------------------ #
    def decode(
        self,
        *,
        decoder: str = "serial",
        signed: bool = True,
        in_place: bool = False,
        incremental: bool = False,
        **options,
    ):
        """Recover the table's contents with a name-selected decoder.

        Parameters
        ----------
        decoder:
            Registered decoder name (``"serial"``, ``"flat"`` or
            ``"subtable"``; see :func:`repro.iblt.available_decoders`).
            ``"serial"`` is the classical worklist recovery; the other two
            are the round-synchronous decoders of Section 6.
        signed:
            Also treat ``count == −1`` cells as pure (needed for difference
            digests).  Defaults to True; with only insertions the behaviour
            is identical to unsigned decoding.
        in_place:
            Operate directly on this table (leaving it empty on success);
            by default a scratch copy is consumed instead.  Mutually
            exclusive with ``incremental`` (which must keep the table
            intact), and discards any resident session — an in-place drain
            happens behind the session's back.
        incremental:
            Keep the post-decode state resident.  The first incremental
            decode runs the named decoder from scratch and installs an
            :class:`~repro.iblt.incremental.IncrementalDecodeSession`; later
            ``insert``/``delete`` churn is mirrored into the session, and
            each subsequent ``decode(incremental=True)`` checkpoint re-peels
            only from the churn-touched cells — rounds proportional to the
            churn, results bit-identical to a from-scratch decode of the
            mutated table.  Incremental results are canonical (keys sorted
            ascending) and identical for every decoder name, since the
            decoder only governs the bootstrap.
        **options:
            Decoder-specific extras forwarded to the decoder constructor
            (e.g. ``max_rounds``, ``track_conflicts`` or ``kernel`` — the
            kernel-backend name — for the parallel decoders).

        Returns
        -------
        IBLTDecodeResult
            For ``decoder="serial"``.
        ParallelDecodeResult
            For the parallel decoders (it exposes the same
            ``recovered``/``removed``/``success``/``rounds``/``subrounds``
            surface plus per-round stats and conflict depths).
        IncrementalDecodeResult
            With ``incremental=True`` (every checkpoint, including the
            bootstrap).
        """
        from repro.iblt.registry import get_decoder  # local import avoids a cycle

        if incremental:
            if in_place:
                raise ValueError(
                    "incremental decode keeps the table resident; in_place is not supported"
                )
            return self._decode_incremental(decoder, signed=signed, **options)
        if in_place:
            self.discard_session()
        factory = get_decoder(decoder)
        return factory(signed=signed, **options).decode(self, in_place=in_place)

    def _decode_incremental(self, decoder: str, *, signed: bool, **options):
        """Bootstrap or checkpoint the resident incremental decode session."""
        from repro.iblt.incremental import (  # local import avoids a cycle
            IncrementalDecodeResult,
            IncrementalDecodeSession,
        )
        from repro.kernels import get_kernel

        if self._session is not None:
            if self._session.signed != bool(signed):
                raise ValueError(
                    f"resident session was started with signed={self._session.signed}; "
                    "discard_session() before switching regimes"
                )
            result = self._session.checkpoint()
            if result.success:
                return result
            # A stalled re-peel cannot tell a genuine 2-core from the rare
            # spurious-pure hazard: a key hashing two endpoints into the
            # same cell cancels itself out of that cell's key_sum, so the
            # residual can present a stale cell as pure with the wrong
            # sign and poison the cascade — a shape a from-scratch decode
            # of the mutated table never sees.  Rebuilding the session
            # from scratch restores bit-identity by construction (and on
            # a genuinely undecodable table returns exactly the partial
            # result a from-scratch decode would).
            self.discard_session()
        from repro.iblt.registry import get_decoder

        factory = get_decoder(decoder)
        result = factory(signed=signed, **options).decode(self, in_place=False)
        self._session = IncrementalDecodeSession(
            self,
            result,
            signed=signed,
            kernel=get_kernel(options.get("kernel")),
        )
        recovered, removed = self._session._net_contents()
        return IncrementalDecodeResult(
            recovered=recovered,
            removed=removed,
            success=bool(result.success),
            rounds=int(result.rounds),
            resumed_from_round=0,
            rounds_incremental=int(result.rounds),
            cells_scanned=int(getattr(result, "cells_scanned", 0)),
        )

    def discard_session(self) -> None:
        """Drop the resident incremental decode session, if any.

        The next ``decode(incremental=True)`` bootstraps a fresh one from
        scratch.  Called automatically by in-place decodes, whose drain the
        session cannot observe.
        """
        self._session = None

    @staticmethod
    def decode_many(
        tables: Sequence["IBLT"],
        *,
        decoder: str = "batched",
        signed: bool = True,
        **options,
    ):
        """Decode a batch of tables, in input order.

        With ``decoder="batched"`` (the default) every table is decoded in
        one lockstep pass — one pure-cell scan and one removal scatter per
        round for the whole batch — which requires the tables to share
        geometry, layout and hash seed, and returns results identical to
        decoding each table with the ``"flat"`` decoder.  Any other
        registered decoder name decodes the tables one by one with that
        decoder.  See :func:`repro.iblt.batched_decode.decode_many`.
        """
        from repro.iblt.batched_decode import decode_many  # local import avoids a cycle

        return decode_many(tables, decoder=decoder, signed=signed, **options)

    def _decode_serial(self, *, signed: bool = True, in_place: bool = False) -> IBLTDecodeResult:
        """Worklist recovery: repeatedly extract pure cells until none remain."""
        table = self if in_place else self.copy()
        recovered: List[int] = []
        removed: List[int] = []
        cells_scanned = table.num_cells  # the initial full scan
        worklist = list(np.flatnonzero(table.pure_cell_mask(signed=signed)))
        while worklist:
            cell = int(worklist.pop())
            cells_scanned += 1
            sign = int(table.count[cell])
            if abs(sign) != 1:
                continue
            key = np.uint64(table.key_sum[cell])
            if key == 0 or table.hasher.checksums(key) != table.check_sum[cell]:
                continue
            if sign > 0:
                recovered.append(int(key))
            else:
                removed.append(int(key))
            key_arr = np.asarray([key], dtype=np.uint64)
            target_cells = table.hasher.cell_indices(key_arr)[0]
            check = table.hasher.checksums(key_arr)[0]
            for target in target_cells:
                target = int(target)
                table.count[target] -= sign
                table.key_sum[target] ^= key
                table.check_sum[target] ^= check
                cells_scanned += 1
                if abs(int(table.count[target])) == 1:
                    worklist.append(target)
        success = table.is_empty()
        return IBLTDecodeResult(
            recovered=np.asarray(recovered, dtype=np.uint64),
            removed=np.asarray(removed, dtype=np.uint64),
            success=success,
            rounds=1,
            subrounds=1,
            cells_scanned=cells_scanned,
        )

    # ------------------------------------------------------------------ #
    # serialization (what actually crosses the wire in set reconciliation)
    # ------------------------------------------------------------------ #
    _MAGIC = b"IBLT1\x00"
    _FORMAT_VERSION = 1
    #: Every format version this build can parse.  A payload carrying any
    #: other version byte — e.g. from a future build — is rejected up front
    #: with a ValueError naming this list, never half-parsed.
    _SUPPORTED_VERSIONS = (1,)
    _HEADER_BYTES = len(_MAGIC) + 1 + 5 * 8  # magic + version byte + 5 i64 fields

    def to_bytes(self) -> bytes:
        """Serialize the table to a compact byte string.

        The encoding is a fixed header (magic, a format-version byte,
        geometry, layout, seed, net item count) followed by the three cell
        arrays in little-endian order; 24 bytes per cell plus a 47-byte
        header.  This is the payload a set-reconciliation protocol ships
        across the link, and the decode-request body of the
        :mod:`repro.serve` service.
        """
        header = np.array(
            [
                self.num_cells,
                self.r,
                1 if self.layout == "subtables" else 0,
                self.hasher.seed,
                self._net_items,
            ],
            dtype="<i8",
        )
        return b"".join(
            [
                self._MAGIC,
                bytes([self._FORMAT_VERSION]),
                header.tobytes(),
                self.count.astype("<i8").tobytes(),
                self.key_sum.astype("<u8").tobytes(),
                self.check_sum.astype("<u8").tobytes(),
            ]
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "IBLT":
        """Reconstruct a table serialized with :meth:`to_bytes`.

        The payload is validated before any array is materialized — this
        format is parsed from untrusted sockets by :mod:`repro.serve`, so a
        short, oversized or hostile payload must raise a clear
        ``ValueError`` rather than a low-level numpy buffer error.
        """
        payload = bytes(payload)
        magic_len = len(cls._MAGIC)
        if len(payload) < magic_len or payload[:magic_len] != cls._MAGIC:
            raise ValueError("not an IBLT payload (bad magic)")
        if len(payload) < cls._HEADER_BYTES:
            raise ValueError(
                f"truncated IBLT payload: {len(payload)} bytes is shorter than "
                f"the {cls._HEADER_BYTES}-byte header"
            )
        version = payload[magic_len]
        if version not in cls._SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in cls._SUPPORTED_VERSIONS)
            raise ValueError(
                f"unsupported IBLT format version {version}; this build supports "
                f"version(s) {supported} — the payload likely comes from a newer build"
            )
        header = np.frombuffer(payload, dtype="<i8", count=5, offset=magic_len + 1)
        num_cells, r, layout_flag, seed, net_items = (int(x) for x in header)
        if num_cells < 1:
            raise ValueError(f"invalid IBLT header: num_cells must be >= 1, got {num_cells}")
        if r < 2:
            raise ValueError(f"invalid IBLT header: r must be >= 2, got {r}")
        if layout_flag not in (0, 1):
            raise ValueError(
                f"invalid IBLT header: layout flag must be 0 (flat) or 1 (subtables), "
                f"got {layout_flag}"
            )
        layout: Layout = "subtables" if layout_flag else "flat"
        if layout == "subtables" and num_cells % r != 0:
            raise ValueError(
                f"invalid IBLT header: num_cells ({num_cells}) must be divisible "
                f"by r ({r}) for the subtable layout"
            )
        expected = cls._HEADER_BYTES + 3 * 8 * num_cells
        if len(payload) < expected:
            raise ValueError(
                f"truncated IBLT payload: expected {expected} bytes for "
                f"num_cells={num_cells}, got {len(payload)}"
            )
        if len(payload) > expected:
            raise ValueError(
                f"oversized IBLT payload: expected {expected} bytes for "
                f"num_cells={num_cells}, got {len(payload)}"
            )
        table = cls(num_cells, r, layout=layout, seed=seed)
        offset = cls._HEADER_BYTES
        table.count = np.frombuffer(payload, dtype="<i8", count=num_cells, offset=offset).astype(np.int64)
        offset += 8 * num_cells
        table.key_sum = np.frombuffer(payload, dtype="<u8", count=num_cells, offset=offset).astype(np.uint64)
        offset += 8 * num_cells
        table.check_sum = np.frombuffer(payload, dtype="<u8", count=num_cells, offset=offset).astype(np.uint64)
        table._net_items = net_items
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"IBLT(num_cells={self.num_cells}, r={self.r}, layout={self.layout!r}, "
            f"net_items={self._net_items})"
        )
