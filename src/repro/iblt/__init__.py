"""Invertible Bloom Lookup Tables and their parallel recovery (Section 6).

* :class:`~repro.iblt.iblt.IBLT` — the table itself, with vectorized batch
  insert/delete, signed counts, difference digests (:meth:`IBLT.subtract`)
  and the classical serial recovery.
* :class:`~repro.iblt.parallel_decode.SubtableParallelDecoder` — the paper's
  round-synchronous recovery with ``r`` serial subrounds per round.
* :class:`~repro.iblt.parallel_decode.FlatParallelDecoder` — the
  whole-table-per-round ablation variant.
* :class:`~repro.iblt.hashing.KeyHasher` — the hash family mapping keys to
  cells and computing checksums.
* :class:`~repro.iblt.batched_decode.BatchedFlatDecoder` /
  :func:`~repro.iblt.batched_decode.decode_many` — lockstep recovery of a
  whole batch of same-hash-family tables in one fused pass per round
  (``IBLT.decode_many(tables)``).
* :mod:`~repro.iblt.registry` — the decoder registry behind
  ``IBLT.decode(decoder="serial"|"flat"|"subtable"|"batched")``; new
  decoders plug in via :func:`register_decoder`.
"""

from repro.iblt.batched_decode import BatchedFlatDecoder, decode_many
from repro.iblt.hashing import KeyHasher, checksum_keys, splitmix64
from repro.iblt.iblt import IBLT, IBLTDecodeResult
from repro.iblt.incremental import IncrementalDecodeResult, IncrementalDecodeSession
from repro.iblt.parallel_decode import (
    FlatParallelDecoder,
    ParallelDecodeResult,
    SubtableParallelDecoder,
)
from repro.iblt.registry import (
    SerialDecoder,
    available_decoders,
    get_decoder,
    register_decoder,
    unregister_decoder,
)

__all__ = [
    "KeyHasher",
    "checksum_keys",
    "splitmix64",
    "IBLT",
    "IBLTDecodeResult",
    "IncrementalDecodeResult",
    "IncrementalDecodeSession",
    "BatchedFlatDecoder",
    "decode_many",
    "FlatParallelDecoder",
    "ParallelDecodeResult",
    "SubtableParallelDecoder",
    "SerialDecoder",
    "register_decoder",
    "unregister_decoder",
    "get_decoder",
    "available_decoders",
]
