"""repro — parallel peeling algorithms on random hypergraphs.

A production-oriented reproduction of *Parallel Peeling Algorithms*
(Jiang, Mitzenmacher, Thaler; SPAA 2014).  The package provides:

* random r-uniform hypergraph models (:mod:`repro.hypergraph`),
* sequential, round-synchronous parallel and subtable peeling engines
  (:mod:`repro.core`) behind one registry-backed front door
  (:mod:`repro.engine`): :func:`peel`, :func:`peel_many` and
  :class:`PeelingConfig` select engines by name and dispatch batches over
  serial/thread/process execution backends,
* a shared kernel layer under every engine and decoder
  (:mod:`repro.kernels`): columnar :class:`PeelState` plus swappable
  vectorized round primitives (``kernel="numpy"`` always; ``"numba"`` when
  importable), benchmarked by ``repro bench`` (:mod:`repro.bench`),
* the paper's analytical machinery — thresholds, survival recurrences,
  round-complexity predictions (:mod:`repro.analysis`),
* Invertible Bloom Lookup Tables with name-selectable serial and parallel
  recovery — ``IBLT.decode(decoder="serial"|"flat"|"subtable")``
  (:mod:`repro.iblt`) — and applications built on them (:mod:`repro.apps`),
* a simulated parallel machine standing in for the paper's GPU
  (:mod:`repro.parallel`),
* a declarative sweep layer (:mod:`repro.sweeps`): grid specs with
  cell-keyed seeds, grid-level scheduling over execution backends, and
  resumable JSON artifacts,
* an experiment harness reproducing every table and figure of the paper's
  evaluation (:mod:`repro.experiments`), declared as sweeps.

Quickstart
----------
>>> from repro import random_hypergraph, peel, peeling_threshold
>>> graph = random_hypergraph(10_000, 0.7, 4, seed=1)
>>> result = peel(graph, "parallel", k=2)
>>> result.success
True
>>> round(peeling_threshold(2, 4), 3)
0.772

Batches of independent graphs go through :func:`peel_many`, which scales
with cores via the ``"threads"`` or ``"processes"`` backends:

>>> from repro import peel_many
>>> graphs = [random_hypergraph(10_000, 0.7, 4, seed=s) for s in range(4)]
>>> [r.success for r in peel_many(graphs, "parallel", k=2, backend="serial")]
[True, True, True, True]
"""

from repro._version import __version__

# Hypergraph substrate
from repro.hypergraph import (
    Hypergraph,
    random_hypergraph,
    binomial_hypergraph,
    partitioned_hypergraph,
    hypergraph_from_edges,
    kcore,
    has_empty_kcore,
)

# Peeling engines (concrete classes) and results
from repro.core import (
    ParallelPeeler,
    SequentialPeeler,
    SubtablePeeler,
    peel_to_kcore,
    PeelingResult,
)

# Front-door API: engine registry, config, peel/peel_many
from repro.engine import (
    PeelingEngine,
    PeelingConfig,
    peel,
    peel_many,
    register_engine,
    get_engine,
    available_engines,
)

# Kernel layer: columnar peel state + swappable round-primitive backends
from repro.kernels import (
    PeelState,
    PeelingKernel,
    register_kernel,
    get_kernel,
    available_kernels,
)

# Analysis
from repro.analysis import (
    peeling_threshold,
    iterate_recurrence,
    predicted_survivors,
    iterate_subtable_recurrence,
    rounds_below_threshold,
    rounds_above_threshold,
    rounds_with_subtables,
    fibonacci_growth_rate,
    predict_rounds,
)

# IBLT + applications
from repro.iblt import (
    IBLT,
    SubtableParallelDecoder,
    FlatParallelDecoder,
    register_decoder,
    get_decoder,
    available_decoders,
)
from repro.apps import (
    SparseRecovery,
    SetReconciler,
    PeelingErasureCode,
    XorSatSolver,
    random_xorsat,
)

# Parallel substrate
from repro.parallel import (
    ParallelMachine,
    CostModel,
    ProcessPoolBackend,
    ShmParallelPeeler,
    ShmFlatDecoder,
    get_backend,
    available_backends,
)

# Declarative sweep layer (spec → scheduler → artifact)
from repro.sweeps import (
    SweepSpec,
    CellSpec,
    SweepArtifact,
    SweepSpecMismatch,
    run_sweep,
)

__all__ = [
    "__version__",
    "Hypergraph",
    "random_hypergraph",
    "binomial_hypergraph",
    "partitioned_hypergraph",
    "hypergraph_from_edges",
    "kcore",
    "has_empty_kcore",
    "ParallelPeeler",
    "SequentialPeeler",
    "SubtablePeeler",
    "peel_to_kcore",
    "PeelingResult",
    "PeelingEngine",
    "PeelingConfig",
    "peel",
    "peel_many",
    "register_engine",
    "get_engine",
    "available_engines",
    "PeelState",
    "PeelingKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "peeling_threshold",
    "iterate_recurrence",
    "predicted_survivors",
    "iterate_subtable_recurrence",
    "rounds_below_threshold",
    "rounds_above_threshold",
    "rounds_with_subtables",
    "fibonacci_growth_rate",
    "predict_rounds",
    "IBLT",
    "SubtableParallelDecoder",
    "FlatParallelDecoder",
    "register_decoder",
    "get_decoder",
    "available_decoders",
    "SparseRecovery",
    "SetReconciler",
    "PeelingErasureCode",
    "XorSatSolver",
    "random_xorsat",
    "ParallelMachine",
    "CostModel",
    "ProcessPoolBackend",
    "ShmParallelPeeler",
    "ShmFlatDecoder",
    "get_backend",
    "available_backends",
    "SweepSpec",
    "CellSpec",
    "SweepArtifact",
    "SweepSpecMismatch",
    "run_sweep",
]
