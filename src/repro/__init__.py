"""repro — parallel peeling algorithms on random hypergraphs.

A production-oriented reproduction of *Parallel Peeling Algorithms*
(Jiang, Mitzenmacher, Thaler; SPAA 2014).  The package provides:

* random r-uniform hypergraph models (:mod:`repro.hypergraph`),
* sequential, round-synchronous parallel and subtable peeling engines
  (:mod:`repro.core`),
* the paper's analytical machinery — thresholds, survival recurrences,
  round-complexity predictions (:mod:`repro.analysis`),
* Invertible Bloom Lookup Tables with serial and parallel recovery
  (:mod:`repro.iblt`) and applications built on them (:mod:`repro.apps`),
* a simulated parallel machine standing in for the paper's GPU
  (:mod:`repro.parallel`),
* an experiment harness reproducing every table and figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import random_hypergraph, peel_to_kcore, peeling_threshold
>>> graph = random_hypergraph(10_000, 0.7, 4, seed=1)
>>> result = peel_to_kcore(graph, k=2)
>>> result.success
True
>>> round(peeling_threshold(2, 4), 3)
0.772
"""

from repro._version import __version__

# Hypergraph substrate
from repro.hypergraph import (
    Hypergraph,
    random_hypergraph,
    binomial_hypergraph,
    partitioned_hypergraph,
    hypergraph_from_edges,
    kcore,
    has_empty_kcore,
)

# Peeling engines
from repro.core import (
    ParallelPeeler,
    SequentialPeeler,
    SubtablePeeler,
    peel_to_kcore,
    PeelingResult,
)

# Analysis
from repro.analysis import (
    peeling_threshold,
    iterate_recurrence,
    predicted_survivors,
    iterate_subtable_recurrence,
    rounds_below_threshold,
    rounds_above_threshold,
    rounds_with_subtables,
    fibonacci_growth_rate,
    predict_rounds,
)

# IBLT + applications
from repro.iblt import IBLT, SubtableParallelDecoder, FlatParallelDecoder
from repro.apps import (
    SparseRecovery,
    SetReconciler,
    PeelingErasureCode,
    XorSatSolver,
    random_xorsat,
)

# Parallel substrate
from repro.parallel import ParallelMachine, CostModel

__all__ = [
    "__version__",
    "Hypergraph",
    "random_hypergraph",
    "binomial_hypergraph",
    "partitioned_hypergraph",
    "hypergraph_from_edges",
    "kcore",
    "has_empty_kcore",
    "ParallelPeeler",
    "SequentialPeeler",
    "SubtablePeeler",
    "peel_to_kcore",
    "PeelingResult",
    "peeling_threshold",
    "iterate_recurrence",
    "predicted_survivors",
    "iterate_subtable_recurrence",
    "rounds_below_threshold",
    "rounds_above_threshold",
    "rounds_with_subtables",
    "fibonacci_growth_rate",
    "predict_rounds",
    "IBLT",
    "SubtableParallelDecoder",
    "FlatParallelDecoder",
    "SparseRecovery",
    "SetReconciler",
    "PeelingErasureCode",
    "XorSatSolver",
    "random_xorsat",
    "ParallelMachine",
    "CostModel",
]
