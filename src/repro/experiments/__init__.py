"""Experiment harness: one module per table/figure of the paper's evaluation.

Each module declares its parameter grid as a :class:`repro.sweeps.SweepSpec`
(``*_spec`` builders) and runs it on the :func:`repro.sweeps.run_sweep`
scheduler, which streams every (cell, trial) task through one execution
backend and can checkpoint/resume JSON artifacts.  The ``run_*`` functions
are thin wrappers producing structured rows and the ``format_*`` functions
print the same layout the paper reports; EXPERIMENTS.md records the
paper-scale vs. default-scale settings per table.
"""

from repro.experiments.runner import run_trials, summarize, TrialSummary
from repro.experiments.table1 import (
    PAPER_DENSITIES,
    PAPER_SIZES,
    Table1Row,
    format_table1,
    run_table1,
    run_table1_cell,
    table1_spec,
)
from repro.experiments.table2 import Table2Row, format_table2, run_table2, table2_spec
from repro.experiments.table34 import (
    PAPER_LOADS,
    IBLTBenchmarkRow,
    format_table34,
    run_iblt_experiment,
    run_table34,
    table34_spec,
)
from repro.experiments.table5 import (
    PAPER_DENSITIES_T5,
    Table5Row,
    format_table5,
    run_table5,
    run_table5_cell,
    table5_spec,
)
from repro.experiments.table6 import Table6Row, format_table6, run_table6, table6_spec
from repro.experiments.figure1 import (
    PAPER_FIGURE1_DENSITIES,
    Figure1Series,
    figure1_spec,
    format_figure1,
    run_figure1,
)

__all__ = [
    "run_trials",
    "summarize",
    "TrialSummary",
    "PAPER_DENSITIES",
    "PAPER_SIZES",
    "Table1Row",
    "format_table1",
    "run_table1",
    "run_table1_cell",
    "table1_spec",
    "Table2Row",
    "format_table2",
    "run_table2",
    "table2_spec",
    "PAPER_LOADS",
    "IBLTBenchmarkRow",
    "format_table34",
    "run_iblt_experiment",
    "run_table34",
    "table34_spec",
    "PAPER_DENSITIES_T5",
    "Table5Row",
    "format_table5",
    "run_table5",
    "run_table5_cell",
    "table5_spec",
    "Table6Row",
    "format_table6",
    "run_table6",
    "table6_spec",
    "PAPER_FIGURE1_DENSITIES",
    "Figure1Series",
    "figure1_spec",
    "format_figure1",
    "run_figure1",
]
