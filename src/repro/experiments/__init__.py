"""Experiment harness: one module per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function producing structured rows and a
``format_*`` function printing the same layout the paper reports; the
``benchmarks/`` directory wires them into pytest-benchmark targets and
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from repro.experiments.runner import run_trials, summarize, TrialSummary
from repro.experiments.table1 import (
    PAPER_DENSITIES,
    PAPER_SIZES,
    Table1Row,
    format_table1,
    run_table1,
    run_table1_cell,
)
from repro.experiments.table2 import Table2Row, format_table2, run_table2
from repro.experiments.table34 import (
    PAPER_LOADS,
    IBLTBenchmarkRow,
    format_table34,
    run_iblt_experiment,
    run_table34,
)
from repro.experiments.table5 import (
    PAPER_DENSITIES_T5,
    Table5Row,
    format_table5,
    run_table5,
    run_table5_cell,
)
from repro.experiments.table6 import Table6Row, format_table6, run_table6
from repro.experiments.figure1 import (
    PAPER_FIGURE1_DENSITIES,
    Figure1Series,
    format_figure1,
    run_figure1,
)

__all__ = [
    "run_trials",
    "summarize",
    "TrialSummary",
    "PAPER_DENSITIES",
    "PAPER_SIZES",
    "Table1Row",
    "format_table1",
    "run_table1",
    "run_table1_cell",
    "Table2Row",
    "format_table2",
    "run_table2",
    "PAPER_LOADS",
    "IBLTBenchmarkRow",
    "format_table34",
    "run_iblt_experiment",
    "run_table34",
    "PAPER_DENSITIES_T5",
    "Table5Row",
    "format_table5",
    "run_table5",
    "run_table5_cell",
    "Table6Row",
    "format_table6",
    "run_table6",
    "PAPER_FIGURE1_DENSITIES",
    "Figure1Series",
    "format_figure1",
    "run_figure1",
]
