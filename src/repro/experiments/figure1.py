"""Figure 1 — evolution of β_i near the threshold (Section 7 / Appendix C).

Figure 1 plots the idealized β-recurrence (Equation C.1) for ``k=2, r=4`` at
edge densities ``c = 0.77`` and ``c = 0.772``, just below the threshold
``c*_{2,4} ≈ 0.77228``.  The striking feature is the long plateau where β_i
lingers near the critical value ``x*`` for ``Θ(sqrt(1/ν))`` rounds before the
doubly-exponential collapse takes over — the content of Theorem 5.

The curves are a deterministic one-trial-per-density sweep
(:func:`figure1_spec`) on the :mod:`repro.sweeps` scheduler, so they share
the artifact/resume machinery of the stochastic tables.  :func:`run_figure1`
produces the per-round β series for any set of densities plus the
plateau-length analysis; :func:`format_figure1` renders an ASCII summary
(round counts and plateau sizes), which is the text-mode stand-in for the
plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.analysis.recurrences import iterate_recurrence
from repro.analysis.threshold_gap import GapAnalysis, plateau_length
from repro.analysis.thresholds import peeling_threshold, threshold_minimizer
from repro.sweeps import CellSpec, SweepSpec, run_sweep
from repro.utils.rng import derive_seed
from repro.utils.tables import Table, format_float
from repro.utils.validation import check_positive_int

__all__ = [
    "Figure1Series",
    "figure1_spec",
    "run_figure1",
    "format_figure1",
    "PAPER_FIGURE1_DENSITIES",
]

PAPER_FIGURE1_DENSITIES: tuple = (0.77, 0.772)
"""Edge densities plotted in the paper's Figure 1 (k=2, r=4)."""


@dataclass(frozen=True)
class Figure1Series:
    """One curve of Figure 1.

    Attributes
    ----------
    c:
        Edge density of the curve.
    nu:
        Distance to the threshold, ``c* − c``.
    beta:
        β_i values, ``beta[i]`` being the value entering round ``i+1``
        (``beta[0] = r·c``).
    rounds_to_extinction:
        First round at which β drops below ``1e-12`` (effectively zero).
    gap:
        The :class:`~repro.analysis.threshold_gap.GapAnalysis` for this
        density (plateau length vs. the ``sqrt(1/ν)`` prediction).
    """

    c: float
    nu: float
    beta: np.ndarray
    rounds_to_extinction: int
    gap: GapAnalysis


def _figure1_trial(params: Dict[str, Any], rng: np.random.Generator) -> Figure1Series:
    # Deterministic: the sweep rng is unused; the cell is fully defined by
    # its (c, k, r, max_rounds) parameters.
    c, k, r, max_rounds = params["c"], params["k"], params["r"], params["max_rounds"]
    c_star = peeling_threshold(k, r)
    trace = iterate_recurrence(c, k, r, max_rounds)
    beta = trace.beta
    below = np.flatnonzero(beta < 1e-12)
    rounds_to_extinction = int(below[0]) if below.size else max_rounds
    gap = plateau_length(c, k, r, max_rounds=max_rounds)
    return Figure1Series(
        c=float(c),
        nu=float(c_star - c),
        beta=beta,
        rounds_to_extinction=rounds_to_extinction,
        gap=gap,
    )


def _figure1_aggregate(params: Dict[str, Any], results: List[Figure1Series]) -> Figure1Series:
    return results[0]


def figure1_spec(
    densities: Sequence[float] = PAPER_FIGURE1_DENSITIES,
    *,
    k: int = 2,
    r: int = 4,
    max_rounds: int = 2_000,
) -> SweepSpec:
    """Declare the Figure 1 curves: one deterministic cell per density."""
    max_rounds = check_positive_int(max_rounds, "max_rounds")
    c_star = peeling_threshold(k, r)
    cells = []
    for c in densities:
        if c >= c_star:
            raise ValueError(
                f"Figure 1 densities must be below the threshold {c_star:.6f}, got {c}"
            )
        cells.append(
            CellSpec(
                key=f"c={c:g}",
                params={
                    "c": float(c),
                    "k": int(k),
                    "r": int(r),
                    "max_rounds": int(max_rounds),
                },
                # The trial is deterministic; a fixed derived seed keeps the
                # spec fingerprintable and hence resumable.
                seed=derive_seed(0, "figure1", int(round(c * 100_000))),
                trials=1,
            )
        )
    return SweepSpec(name="figure1", cells=tuple(cells))


def run_figure1(
    densities: Sequence[float] = PAPER_FIGURE1_DENSITIES,
    *,
    k: int = 2,
    r: int = 4,
    max_rounds: int = 2_000,
) -> Dict[float, Figure1Series]:
    """Iterate the idealized β-recurrence for each density in ``densities``."""
    spec = figure1_spec(densities, k=k, r=r, max_rounds=max_rounds)
    rows = run_sweep(spec, _figure1_trial, _figure1_aggregate)
    return {series.c: series for series in rows}


def format_figure1(series: Dict[float, Figure1Series], *, k: int = 2, r: int = 4) -> str:
    """Summarize the Figure 1 curves as a table (plateau and total rounds)."""
    x_star, c_star = threshold_minimizer(k, r)
    table = Table(
        ["c", "nu = c* - c", "plateau rounds", "sqrt(1/nu)", "rounds to beta=0"],
        title=(
            f"Figure 1: beta evolution near the threshold "
            f"(k={k}, r={r}, c*={c_star:.5f}, x*={x_star:.4f})"
        ),
    )
    for c in sorted(series):
        s = series[c]
        table.add_row(
            format_float(s.c, 5),
            format_float(s.nu, 6),
            str(s.gap.plateau_rounds),
            format_float(s.gap.predicted_scale, 2),
            str(s.rounds_to_extinction),
        )
    return table.render()
