"""Figure 1 — evolution of β_i near the threshold (Section 7 / Appendix C).

Figure 1 plots the idealized β-recurrence (Equation C.1) for ``k=2, r=4`` at
edge densities ``c = 0.77`` and ``c = 0.772``, just below the threshold
``c*_{2,4} ≈ 0.77228``.  The striking feature is the long plateau where β_i
lingers near the critical value ``x*`` for ``Θ(sqrt(1/ν))`` rounds before the
doubly-exponential collapse takes over — the content of Theorem 5.

:func:`run_figure1` produces the per-round β series for any set of densities
plus the plateau-length analysis; :func:`format_figure1` renders an ASCII
summary (round counts and plateau sizes), which is the text-mode stand-in for
the plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.recurrences import iterate_recurrence
from repro.analysis.threshold_gap import GapAnalysis, plateau_length
from repro.analysis.thresholds import peeling_threshold, threshold_minimizer
from repro.utils.tables import Table, format_float
from repro.utils.validation import check_positive_int

__all__ = ["Figure1Series", "run_figure1", "format_figure1", "PAPER_FIGURE1_DENSITIES"]

PAPER_FIGURE1_DENSITIES: tuple = (0.77, 0.772)
"""Edge densities plotted in the paper's Figure 1 (k=2, r=4)."""


@dataclass(frozen=True)
class Figure1Series:
    """One curve of Figure 1.

    Attributes
    ----------
    c:
        Edge density of the curve.
    nu:
        Distance to the threshold, ``c* − c``.
    beta:
        β_i values, ``beta[i]`` being the value entering round ``i+1``
        (``beta[0] = r·c``).
    rounds_to_extinction:
        First round at which β drops below ``1e-12`` (effectively zero).
    gap:
        The :class:`~repro.analysis.threshold_gap.GapAnalysis` for this
        density (plateau length vs. the ``sqrt(1/ν)`` prediction).
    """

    c: float
    nu: float
    beta: np.ndarray
    rounds_to_extinction: int
    gap: GapAnalysis


def run_figure1(
    densities: Sequence[float] = PAPER_FIGURE1_DENSITIES,
    *,
    k: int = 2,
    r: int = 4,
    max_rounds: int = 2_000,
) -> Dict[float, Figure1Series]:
    """Iterate the idealized β-recurrence for each density in ``densities``."""
    max_rounds = check_positive_int(max_rounds, "max_rounds")
    c_star = peeling_threshold(k, r)
    series: Dict[float, Figure1Series] = {}
    for c in densities:
        if c >= c_star:
            raise ValueError(
                f"Figure 1 densities must be below the threshold {c_star:.6f}, got {c}"
            )
        trace = iterate_recurrence(c, k, r, max_rounds)
        beta = trace.beta
        below = np.flatnonzero(beta < 1e-12)
        rounds_to_extinction = int(below[0]) if below.size else max_rounds
        gap = plateau_length(c, k, r, max_rounds=max_rounds)
        series[float(c)] = Figure1Series(
            c=float(c),
            nu=float(c_star - c),
            beta=beta,
            rounds_to_extinction=rounds_to_extinction,
            gap=gap,
        )
    return series


def format_figure1(series: Dict[float, Figure1Series], *, k: int = 2, r: int = 4) -> str:
    """Summarize the Figure 1 curves as a table (plateau and total rounds)."""
    x_star, c_star = threshold_minimizer(k, r)
    table = Table(
        ["c", "nu = c* - c", "plateau rounds", "sqrt(1/nu)", "rounds to beta=0"],
        title=(
            f"Figure 1: beta evolution near the threshold "
            f"(k={k}, r={r}, c*={c_star:.5f}, x*={x_star:.4f})"
        ),
    )
    for c in sorted(series):
        s = series[c]
        table.add_row(
            format_float(s.c, 5),
            format_float(s.nu, 6),
            str(s.gap.plateau_rounds),
            format_float(s.gap.predicted_scale, 2),
            str(s.rounds_to_extinction),
        )
    return table.render()
