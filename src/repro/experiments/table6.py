"""Table 6 — subtable recurrence λ'_{i,j} vs. measured survivors per subround.

The analogue of Table 2 for subtable peeling: the recurrence of Equation
(B.1) predicts the number of vertices left after peeling the j-th subtable in
the i-th round, and the paper shows it matches simulation (r=4, k=2, n=10^6,
c=0.7) to within a handful of vertices per million.

The comparison is a one-cell sweep (:func:`table6_spec`) on the
:mod:`repro.sweeps` scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.recurrences import predicted_subtable_survivors
from repro.engine import PeelingConfig
from repro.experiments.runner import BackendLike
from repro.hypergraph.generators import partitioned_hypergraph
from repro.sweeps import CellSpec, SweepSpec, run_sweep
from repro.utils.rng import SeedLike
from repro.utils.tables import Table, format_float, format_int
from repro.utils.validation import check_positive_int

__all__ = ["Table6Row", "table6_spec", "run_table6", "format_table6"]


@dataclass(frozen=True)
class Table6Row:
    """Predicted vs. measured survivors after subround ``(i, j)``.

    Attributes
    ----------
    round_index:
        Full round ``i`` (1-based).
    subtable:
        Subtable ``j`` (1-based).
    prediction:
        ``λ'_{i,j} · n`` from the subtable recurrence.
    experiment:
        Measured average survivors after subround ``(i, j)``.
    """

    round_index: int
    subtable: int
    prediction: float
    experiment: float

    @property
    def relative_error(self) -> float:
        """Relative deviation between prediction and measurement."""
        return abs(self.prediction - self.experiment) / max(self.experiment, 1.0)


def _table6_trial(params: Dict[str, Any], rng: np.random.Generator) -> np.ndarray:
    # Module-level so process-pool backends can pickle the task stream.
    peeler = PeelingConfig(engine="subtable", k=params["k"], track_stats=True).build()
    graph = partitioned_hypergraph(params["n"], params["c"], params["r"], seed=rng)
    result = peeler.peel(graph)
    total_subrounds = params["rounds"] * params["r"]
    remaining = [s.vertices_remaining for s in result.round_stats]
    if len(remaining) < total_subrounds:
        tail = remaining[-1] if remaining else params["n"]
        remaining = remaining + [tail] * (total_subrounds - len(remaining))
    return np.asarray(remaining[:total_subrounds], dtype=float)


def _table6_aggregate(params: Dict[str, Any], results: List[np.ndarray]) -> List[Table6Row]:
    n, c, k, r, rounds = (
        params["n"], params["c"], params["k"], params["r"], params["rounds"],
    )
    measured = np.mean(results, axis=0)
    predicted = predicted_subtable_survivors(n, c, k, r, rounds)  # (rounds, r)
    rows: List[Table6Row] = []
    for i in range(1, rounds + 1):
        for j in range(1, r + 1):
            subround_index = (i - 1) * r + (j - 1)
            rows.append(
                Table6Row(
                    round_index=i,
                    subtable=j,
                    prediction=float(predicted[i - 1, j - 1]),
                    experiment=float(measured[subround_index]),
                )
            )
    return rows


def table6_spec(
    n: int = 100_000,
    c: float = 0.7,
    *,
    r: int = 4,
    k: int = 2,
    rounds: int = 7,
    trials: int = 10,
    seed: SeedLike = 0,
) -> SweepSpec:
    """Declare the Table 6 comparison as a one-cell sweep."""
    n = check_positive_int(n, "n")
    rounds = check_positive_int(rounds, "rounds")
    trials = check_positive_int(trials, "trials")
    if n % r != 0:
        n += r - (n % r)  # the subtable layout needs r equal partitions
    cell = CellSpec(
        key=f"c={c:g}/n={n}",
        params={
            "n": int(n),
            "c": float(c),
            "r": int(r),
            "k": int(k),
            "rounds": int(rounds),
        },
        seed=seed,
        trials=trials,
    )
    return SweepSpec(name="table6", cells=(cell,))


def run_table6(
    n: int = 100_000,
    c: float = 0.7,
    *,
    r: int = 4,
    k: int = 2,
    rounds: int = 7,
    trials: int = 10,
    seed: SeedLike = 0,
    backend: Optional[BackendLike] = None,
) -> List[Table6Row]:
    """Compare the subtable recurrence with simulation, subround by subround.

    Defaults use ``n = 10^5`` and 10 trials (the paper uses ``n = 10^6`` and
    1000 trials).
    """
    spec = table6_spec(n, c, r=r, k=k, rounds=rounds, trials=trials, seed=seed)
    return run_sweep(spec, _table6_trial, _table6_aggregate, backend=backend)[0]


def format_table6(rows: Sequence[Table6Row], *, c: Optional[float] = None) -> str:
    """Render the Table 6 comparison."""
    title = "Table 6: subtable recurrence prediction vs experiment"
    if c is not None:
        title += f" (c={c:g})"
    table = Table(["i", "j", "Prediction", "Experiment", "RelErr"], title=title)
    for row in rows:
        table.add_row(
            format_int(row.round_index),
            format_int(row.subtable),
            format_float(row.prediction, 1),
            format_float(row.experiment, 1),
            format_float(row.relative_error, 5),
        )
    return table.render()
