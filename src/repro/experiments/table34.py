"""Tables 3 and 4 — parallel vs. serial IBLT insertion and recovery.

The paper fills an IBLT of 2^24 cells with ``load · cells`` items (loads 0.75
and 0.83, straddling the r=3 threshold ``c*_{2,3} ≈ 0.818`` and well above
the r=4 threshold for the 0.83 row of Table 4) and reports, for the GPU and
serial implementations, the recovery time, the insertion time and the
fraction of items recovered.

The reproduction substitutes the GPU with the
:class:`~repro.parallel.machine.ParallelMachine` work/depth cost model (see
DESIGN.md) and additionally reports the *measured* wall-clock times of the
pure-Python serial decoder and the vectorized round-synchronous decoder.
Absolute numbers are not comparable to the paper's hardware, but the shape —
parallel recovery wins big below the threshold and much less above it, while
insertion speedups are load-independent — is reproduced.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.apps.sparse_recovery import random_distinct_keys
from repro.iblt.iblt import IBLT
from repro.parallel.machine import CostModel, ParallelMachine, SimulatedTiming
from repro.sweeps import CellSpec, SweepSpec, run_sweep
from repro.utils.rng import SeedLike, derive_seed
from repro.utils.tables import Table, format_float
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = [
    "PAPER_LOADS",
    "IBLTBenchmarkRow",
    "run_iblt_experiment",
    "table34_spec",
    "run_table34",
    "format_table34",
]

PAPER_LOADS: tuple = (0.75, 0.83)
"""Table loads used in the paper's Tables 3 and 4."""


def _check_parallel_decoder(decoder: str) -> None:
    """Fail fast on decoders this benchmark cannot price.

    The cost model needs per-round stats and atomic-conflict depths, which
    only the round-synchronous decoders report (their constructors take
    ``track_conflicts``); the serial worklist decoder — or a custom decoder
    without that knob — cannot be benchmarked here.
    """
    import inspect

    from repro.iblt.registry import get_decoder

    factory = get_decoder(decoder)  # raises with the name-listing message
    if "track_conflicts" not in inspect.signature(factory).parameters:
        raise ValueError(
            f"decoder {decoder!r} does not report round statistics and atomic "
            f"conflicts, which tables 3/4 need to price recovery; use a "
            f"round-synchronous decoder such as 'subtable' or 'flat'"
        )


@dataclass(frozen=True)
class IBLTBenchmarkRow:
    """One row of Table 3/4.

    Attributes
    ----------
    r:
        Number of hash functions (3 for Table 3, 4 for Table 4).
    load:
        Items per cell.
    num_cells:
        Table size.
    fraction_recovered:
        Fraction of inserted items recovered ("% Recovered").
    parallel_recovery_time / serial_recovery_time:
        Simulated cost-model times of the round-synchronous and serial
        recovery (arbitrary units; only ratios are meaningful).
    parallel_insert_time / serial_insert_time:
        Simulated cost-model times of the insertion phase.
    recovery_speedup / insert_speedup:
        Serial / parallel time ratios.
    measured_serial_seconds / measured_parallel_seconds:
        Wall-clock seconds of the two Python decoders (reported for
        completeness; dominated by interpreter overhead, see EXPERIMENTS.md).
    rounds:
        Recovery rounds used by the parallel decoder.
    """

    r: int
    load: float
    num_cells: int
    fraction_recovered: float
    parallel_recovery_time: float
    serial_recovery_time: float
    parallel_insert_time: float
    serial_insert_time: float
    measured_serial_seconds: float
    measured_parallel_seconds: float
    rounds: int

    @property
    def recovery_speedup(self) -> float:
        """Simulated serial/parallel recovery-time ratio."""
        if self.parallel_recovery_time == 0:
            return float("inf")
        return self.serial_recovery_time / self.parallel_recovery_time

    @property
    def insert_speedup(self) -> float:
        """Simulated serial/parallel insertion-time ratio."""
        if self.parallel_insert_time == 0:
            return float("inf")
        return self.serial_insert_time / self.parallel_insert_time


def run_iblt_experiment(
    r: int,
    load: float,
    *,
    num_cells: int = 30_000,
    machine: Optional[ParallelMachine] = None,
    decoder: str = "subtable",
    seed: SeedLike = 0,
) -> IBLTBenchmarkRow:
    """Run one (r, load) cell of Table 3/4.

    Parameters
    ----------
    r:
        Hash functions per item.
    load:
        Items inserted per cell (the edge density of the induced hypergraph).
    num_cells:
        Table size; the paper uses 2^24 ≈ 16.8M, the default here is 30k so
        the cell runs in well under a second (results are scale-free once the
        table is a few thousand cells).
    machine:
        Simulated parallel machine (defaults to 4096 threads).
    decoder:
        Registered parallel decoder name: ``"subtable"`` (the paper's
        scheme, default) or ``"flat"`` (the ablation variant).
    seed:
        Seed for the random item keys.
    """
    r = check_positive_int(r, "r")
    load = check_positive_float(load, "load")
    num_cells = check_positive_int(num_cells, "num_cells")
    _check_parallel_decoder(decoder)
    if num_cells % r != 0:
        num_cells += r - (num_cells % r)
    machine = machine if machine is not None else ParallelMachine()
    num_items = int(round(load * num_cells))
    keys = random_distinct_keys(num_items, derive_seed(seed, "keys", r, int(load * 1000)))

    table = IBLT(num_cells, r, layout="subtables", seed=derive_seed(seed, "hash", r))
    table.insert(keys)

    # Serial recovery (wall clock + work count).
    serial_start = time.perf_counter()
    table.decode()
    measured_serial = time.perf_counter() - serial_start

    # Parallel (round-synchronous) recovery, resolved through the registry.
    parallel_start = time.perf_counter()
    parallel_result = table.decode(decoder=decoder, track_conflicts=True)
    measured_parallel = time.perf_counter() - parallel_start

    recovered = parallel_result.recovered
    fraction = float(np.isin(keys, recovered).mean()) if num_items else 1.0

    recovery_timing: SimulatedTiming = machine.time_recovery(
        parallel_result.round_stats,
        num_cells=num_cells,
        edge_size=r,
        full_scan=True,
        conflict_depths=parallel_result.conflict_depths,
    )
    insert_timing: SimulatedTiming = machine.time_insertions(num_items, r)

    return IBLTBenchmarkRow(
        r=r,
        load=load,
        num_cells=num_cells,
        fraction_recovered=fraction,
        parallel_recovery_time=recovery_timing.parallel_time,
        serial_recovery_time=recovery_timing.serial_time,
        parallel_insert_time=insert_timing.parallel_time,
        serial_insert_time=insert_timing.serial_time,
        measured_serial_seconds=measured_serial,
        measured_parallel_seconds=measured_parallel,
        rounds=parallel_result.rounds,
    )


def _table34_trial(params: Dict[str, Any], rng: np.random.Generator) -> IBLTBenchmarkRow:
    # Module-level so process-pool backends can pickle the task stream.  Each
    # cell is one deterministic run keyed by its derived seed; the sweep rng
    # is unused.  The simulated machine is rebuilt from the cell parameters.
    machine = ParallelMachine(
        num_threads=params["num_threads"], cost_model=CostModel(**params["cost_model"])
    )
    return run_iblt_experiment(
        params["r"],
        params["load"],
        num_cells=params["num_cells"],
        machine=machine,
        decoder=params["decoder"],
        seed=params["seed"],
    )


def _table34_aggregate(
    params: Dict[str, Any], results: List[IBLTBenchmarkRow]
) -> IBLTBenchmarkRow:
    return results[0]


def table34_spec(
    r: int,
    *,
    loads: Sequence[float] = PAPER_LOADS,
    num_cells: int = 30_000,
    machine: Optional[ParallelMachine] = None,
    decoder: str = "subtable",
    seed: SeedLike = 0,
) -> SweepSpec:
    """Declare the Table 3/4 load sweep: one single-trial cell per load.

    The cell parameters embed everything the trial needs to rebuild the
    simulated machine, so the spec is self-contained and fingerprintable.
    """
    r = check_positive_int(r, "r")
    _check_parallel_decoder(decoder)
    machine = machine if machine is not None else ParallelMachine()
    cells = []
    for load in loads:
        row_seed = derive_seed(seed, "row", int(load * 100))
        cells.append(
            CellSpec(
                key=f"load={load:g}",
                params={
                    "r": int(r),
                    "load": float(load),
                    "num_cells": int(num_cells),
                    "decoder": str(decoder),
                    "seed": row_seed,
                    "num_threads": int(machine.num_threads),
                    "cost_model": dataclasses.asdict(machine.cost_model),
                },
                seed=row_seed,
                trials=1,
            )
        )
    return SweepSpec(name=f"table{'3' if r == 3 else '4'}", cells=tuple(cells))


def run_table34(
    r: int,
    *,
    loads: Sequence[float] = PAPER_LOADS,
    num_cells: int = 30_000,
    machine: Optional[ParallelMachine] = None,
    decoder: str = "subtable",
    seed: SeedLike = 0,
) -> List[IBLTBenchmarkRow]:
    """Run all loads for one value of ``r`` (Table 3 uses r=3, Table 4 r=4)."""
    spec = table34_spec(
        r, loads=loads, num_cells=num_cells, machine=machine, decoder=decoder, seed=seed
    )
    return run_sweep(spec, _table34_trial, _table34_aggregate)


def format_table34(rows: Sequence[IBLTBenchmarkRow]) -> str:
    """Render the Table 3/4 layout (plus the speedup columns we add)."""
    if not rows:
        raise ValueError("no rows to format")
    r = rows[0].r
    table = Table(
        [
            "Load",
            "Cells",
            "% Recovered",
            "Par recovery",
            "Ser recovery",
            "Recovery speedup",
            "Par insert",
            "Ser insert",
            "Insert speedup",
            "Rounds",
        ],
        title=f"Table {'3' if r == 3 else '4'}: IBLT recovery and insertion (r={r}) — simulated cost units",
    )
    for row in rows:
        table.add_row(
            format_float(row.load, 2),
            str(row.num_cells),
            format_float(100.0 * row.fraction_recovered, 1),
            format_float(row.parallel_recovery_time, 0),
            format_float(row.serial_recovery_time, 0),
            format_float(row.recovery_speedup, 2),
            format_float(row.parallel_insert_time, 0),
            format_float(row.serial_insert_time, 0),
            format_float(row.insert_speedup, 2),
            str(row.rounds),
        )
    return table.render()
