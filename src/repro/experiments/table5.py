"""Table 5 — subrounds of subtable peeling vs. n.

The paper repeats the Table 1 sweep for the subtable peeling variant
(Appendix B) at the two below-threshold densities ``c ∈ {0.7, 0.75}`` with
``r = 4, k = 2``, reporting the average number of *subrounds*.  The headline
observation: the subround count is only about 2× the plain-peeling round
count of Table 1, far less than the naive factor ``r = 4``, matching the
Fibonacci-exponential analysis of Theorem 7.

The grid is declared by :func:`table5_spec` and executed on the
:mod:`repro.sweeps` scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import PeelingConfig
from repro.experiments.runner import BackendLike
from repro.hypergraph.generators import partitioned_hypergraph
from repro.sweeps import CellSpec, SweepSpec, run_sweep
from repro.utils.rng import SeedLike, derive_seed
from repro.utils.tables import Table, format_float, format_int
from repro.utils.validation import check_positive_int

__all__ = [
    "PAPER_DENSITIES_T5",
    "Table5Row",
    "table5_spec",
    "run_table5_cell",
    "run_table5",
    "format_table5",
]

PAPER_DENSITIES_T5: tuple = (0.7, 0.75)
"""Edge densities used in the paper's Table 5 (both below the threshold)."""


@dataclass(frozen=True)
class Table5Row:
    """One (n, c) cell of Table 5.

    Attributes
    ----------
    n, c, r, k:
        Sweep-point parameters.
    trials:
        Number of independent trials.
    failed:
        Trials ending with a non-empty k-core.
    avg_subrounds:
        Mean number of subrounds (the paper's "Subrounds" column).
    avg_rounds:
        Mean number of full rounds (for the ratio against Table 1).
    """

    n: int
    c: float
    r: int
    k: int
    trials: int
    failed: int
    avg_subrounds: float
    avg_rounds: float


def _table5_trial(params: Dict[str, Any], rng: np.random.Generator) -> Tuple[int, int, bool]:
    # Module-level so process-pool backends can pickle the task stream.
    peeler = PeelingConfig(engine="subtable", k=params["k"], track_stats=False).build()
    graph = partitioned_hypergraph(params["n"], params["c"], params["r"], seed=rng)
    result = peeler.peel(graph)
    return (result.num_subrounds, result.num_rounds, result.success)


def _table5_aggregate(
    params: Dict[str, Any], results: List[Tuple[int, int, bool]]
) -> Table5Row:
    subrounds = np.array([row[0] for row in results], dtype=float)
    rounds = np.array([row[1] for row in results], dtype=float)
    failed = sum(1 for row in results if not row[2])
    return Table5Row(
        n=params["n"],
        c=params["c"],
        r=params["r"],
        k=params["k"],
        trials=len(results),
        failed=failed,
        avg_subrounds=float(subrounds.mean()),
        avg_rounds=float(rounds.mean()),
    )


def _table5_cell_spec(
    n: int, c: float, *, r: int, k: int, trials: int, seed: SeedLike
) -> CellSpec:
    n = check_positive_int(n, "n")
    trials = check_positive_int(trials, "trials")
    # Key on the *requested* n: distinct sizes that round to the same
    # multiple of r must stay distinct cells (they get distinct seeds).
    key = f"c={c:g}/n={n}"
    if n % r != 0:
        n += r - (n % r)  # the subtable layout needs r equal partitions
    return CellSpec(
        key=key,
        params={"n": int(n), "c": float(c), "r": int(r), "k": int(k)},
        seed=seed,
        trials=trials,
    )


def table5_spec(
    sizes: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    densities: Sequence[float] = PAPER_DENSITIES_T5,
    *,
    r: int = 4,
    k: int = 2,
    trials: int = 25,
    seed: SeedLike = 0,
) -> SweepSpec:
    """Declare the Table 5 grid: one cell per (c, n), seeded per cell."""
    cells = [
        _table5_cell_spec(
            n, c, r=r, k=k, trials=trials,
            seed=derive_seed(seed, "table5", int(round(c * 1000)), n),
        )
        for c in densities
        for n in sizes
    ]
    return SweepSpec(name="table5", cells=tuple(cells))


def run_table5_cell(
    n: int,
    c: float,
    *,
    r: int = 4,
    k: int = 2,
    trials: int = 25,
    seed: SeedLike = None,
    backend: Optional[BackendLike] = None,
) -> Table5Row:
    """Run the trials for one (n, c) cell of Table 5."""
    cell = _table5_cell_spec(n, c, r=r, k=k, trials=trials, seed=seed)
    spec = SweepSpec(name="table5-cell", cells=(cell,))
    return run_sweep(spec, _table5_trial, _table5_aggregate, backend=backend)[0]


def run_table5(
    sizes: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    densities: Sequence[float] = PAPER_DENSITIES_T5,
    *,
    r: int = 4,
    k: int = 2,
    trials: int = 25,
    seed: SeedLike = 0,
    backend: Optional[BackendLike] = None,
) -> List[Table5Row]:
    """Run the Table 5 sweep (defaults scaled down; see Table 1 notes)."""
    spec = table5_spec(sizes, densities, r=r, k=k, trials=trials, seed=seed)
    return run_sweep(spec, _table5_trial, _table5_aggregate, backend=backend)


def format_table5(rows: Sequence[Table5Row]) -> str:
    """Render Table 5 in the paper's layout."""
    densities = sorted({row.c for row in rows})
    sizes = sorted({row.n for row in rows})
    by_key = {(row.n, row.c): row for row in rows}
    columns = ["n"]
    for c in densities:
        columns.extend([f"c={c:g} Failed", f"c={c:g} Subrounds"])
    table = Table(columns, title="Table 5: subtable peeling subrounds")
    for n in sizes:
        cells = [format_int(n)]
        for c in densities:
            row = by_key.get((n, c))
            if row is None:
                cells.extend(["-", "-"])
            else:
                cells.extend([format_int(row.failed), format_float(row.avg_subrounds, 3)])
        table.add_row(*cells)
    return table.render()
