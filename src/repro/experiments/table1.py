"""Table 1 — failures and average rounds of parallel peeling vs. n and c.

The paper runs 1000 trials of the parallel peeling process on
``G^4_{n, cn}`` with ``k = 2`` for ``c ∈ {0.7, 0.75, 0.8, 0.85}`` and
``n = 10000 · 2^i`` up to 2.56 million, reporting, per (n, c), the number of
failed trials (non-empty 2-core) and the average number of rounds.  Below the
threshold (``c*_{2,4} ≈ 0.772``) the rounds grow like ``log log n`` (barely
at all); above it they grow linearly in ``log n``.

The sweep is declared by :func:`table1_spec` and executed on the
:mod:`repro.sweeps` scheduler; :func:`run_table1` reproduces it at
configurable scale and :func:`format_table1` prints the same layout as the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import PeelingConfig
from repro.experiments.runner import BackendLike
from repro.hypergraph.generators import random_hypergraph
from repro.sweeps import CellSpec, SweepSpec, run_sweep
from repro.utils.rng import SeedLike, derive_seed
from repro.utils.tables import Table, format_float, format_int
from repro.utils.validation import check_positive_int

__all__ = [
    "PAPER_DENSITIES",
    "PAPER_SIZES",
    "Table1Row",
    "table1_spec",
    "run_table1_cell",
    "run_table1",
    "format_table1",
]

PAPER_DENSITIES: tuple = (0.7, 0.75, 0.8, 0.85)
"""Edge densities used in the paper's Table 1."""

PAPER_SIZES: tuple = (
    10_000,
    20_000,
    40_000,
    80_000,
    160_000,
    320_000,
    640_000,
    1_280_000,
    2_560_000,
)
"""Vertex counts used in the paper's Table 1."""


@dataclass(frozen=True)
class Table1Row:
    """One (n, c) cell of Table 1.

    Attributes
    ----------
    n, c, r, k:
        Parameters of the sweep point.
    trials:
        Number of independent trials run.
    failed:
        Number of trials with a non-empty k-core.
    avg_rounds:
        Mean number of parallel rounds over the trials.
    std_rounds:
        Standard deviation of the round count.
    """

    n: int
    c: float
    r: int
    k: int
    trials: int
    failed: int
    avg_rounds: float
    std_rounds: float


def _table1_trial(params: Dict[str, Any], rng: np.random.Generator) -> Tuple[int, bool]:
    # Module-level so process-pool backends can pickle the task stream.
    peeler = PeelingConfig(
        engine="parallel", k=params["k"], update="full", track_stats=False
    ).build()
    graph = random_hypergraph(params["n"], params["c"], params["r"], seed=rng)
    result = peeler.peel(graph)
    return (result.num_rounds, result.success)


def _table1_batch_trial(
    params: Dict[str, Any], rngs: List[np.random.Generator]
) -> List[Tuple[int, bool]]:
    # Fused cell execution (--backend batched): all of a cell's trial graphs
    # are peeled in one lockstep pass.  Graph generation consumes each
    # trial's rng exactly as _table1_trial does and the batched engine is
    # bit-for-bit identical to the per-graph loop, so rows cannot move.
    from repro.engine import peel_many

    graphs = [
        random_hypergraph(params["n"], params["c"], params["r"], seed=rng)
        for rng in rngs
    ]
    results = peel_many(
        graphs, "parallel", k=params["k"], update="full", track_stats=False,
        backend="batched",
    )
    return [(result.num_rounds, result.success) for result in results]


def _table1_aggregate(params: Dict[str, Any], results: List[Tuple[int, bool]]) -> Table1Row:
    rounds = np.array([row[0] for row in results], dtype=float)
    failed = sum(1 for row in results if not row[1])
    return Table1Row(
        n=params["n"],
        c=params["c"],
        r=params["r"],
        k=params["k"],
        trials=len(results),
        failed=failed,
        avg_rounds=float(rounds.mean()),
        std_rounds=float(rounds.std(ddof=0)),
    )


def _table1_cell_spec(
    n: int, c: float, *, r: int, k: int, trials: int, seed: SeedLike
) -> CellSpec:
    n = check_positive_int(n, "n")
    trials = check_positive_int(trials, "trials")
    return CellSpec(
        key=f"c={c:g}/n={n}",
        params={"n": int(n), "c": float(c), "r": int(r), "k": int(k)},
        seed=seed,
        trials=trials,
    )


def table1_spec(
    sizes: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    densities: Sequence[float] = PAPER_DENSITIES,
    *,
    r: int = 4,
    k: int = 2,
    trials: int = 25,
    seed: SeedLike = 0,
) -> SweepSpec:
    """Declare the Table 1 grid: one cell per (c, n), seeded per cell."""
    cells = [
        _table1_cell_spec(
            n, c, r=r, k=k, trials=trials,
            seed=derive_seed(seed, "table1", int(round(c * 1000)), n),
        )
        for c in densities
        for n in sizes
    ]
    return SweepSpec(name="table1", cells=tuple(cells))


def run_table1_cell(
    n: int,
    c: float,
    *,
    r: int = 4,
    k: int = 2,
    trials: int = 25,
    seed: SeedLike = None,
    backend: Optional[BackendLike] = None,
) -> Table1Row:
    """Run the trials for a single (n, c) cell of Table 1."""
    cell = _table1_cell_spec(n, c, r=r, k=k, trials=trials, seed=seed)
    spec = SweepSpec(name="table1-cell", cells=(cell,))
    return run_sweep(
        spec, _table1_trial, _table1_aggregate,
        batch_trial=_table1_batch_trial, backend=backend,
    )[0]


def run_table1(
    sizes: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    densities: Sequence[float] = PAPER_DENSITIES,
    *,
    r: int = 4,
    k: int = 2,
    trials: int = 25,
    seed: SeedLike = 0,
    backend: Optional[BackendLike] = None,
) -> List[Table1Row]:
    """Run the full Table 1 sweep.

    Defaults are scaled down from the paper (25 trials, n up to 80k) so the
    sweep completes in seconds; pass ``sizes=PAPER_SIZES, trials=1000`` to run
    at paper scale (see EXPERIMENTS.md).
    """
    spec = table1_spec(sizes, densities, r=r, k=k, trials=trials, seed=seed)
    return run_sweep(
        spec, _table1_trial, _table1_aggregate,
        batch_trial=_table1_batch_trial, backend=backend,
    )


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table 1 in the paper's layout (one column pair per density)."""
    densities = sorted({row.c for row in rows})
    sizes = sorted({row.n for row in rows})
    by_key = {(row.n, row.c): row for row in rows}
    columns = ["n"]
    for c in densities:
        columns.extend([f"c={c:g} Failed", f"c={c:g} Rounds"])
    table = Table(columns, title="Table 1: parallel peeling failures and rounds")
    for n in sizes:
        cells = [format_int(n)]
        for c in densities:
            row = by_key.get((n, c))
            if row is None:
                cells.extend(["-", "-"])
            else:
                cells.extend([format_int(row.failed), format_float(row.avg_rounds, 3)])
        table.add_row(*cells)
    return table.render()
