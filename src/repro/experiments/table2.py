"""Table 2 — idealized recurrence λ_t vs. measured survivors per round.

The paper iterates the recurrence of Equation (3.1) and compares
``λ_t · n`` against the average number of vertices still unpeeled after
``t`` rounds of the real process, for ``r = 4, k = 2, n = 10^6`` and
``c ∈ {0.7, 0.85}`` (below and above the threshold).  The match is striking:
relative error around ``10^{-3}`` every round.

The comparison is a one-cell sweep (:func:`table2_spec`) on the
:mod:`repro.sweeps` scheduler; :func:`run_table2` reproduces both columns
and :func:`format_table2` prints the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.recurrences import predicted_survivors
from repro.engine import PeelingConfig
from repro.experiments.runner import BackendLike
from repro.hypergraph.generators import random_hypergraph
from repro.sweeps import CellSpec, SweepSpec, run_sweep
from repro.utils.rng import SeedLike
from repro.utils.tables import Table, format_float, format_int
from repro.utils.validation import check_positive_int

__all__ = ["Table2Row", "table2_spec", "run_table2", "format_table2"]


@dataclass(frozen=True)
class Table2Row:
    """Predicted vs. measured survivors after round ``t``.

    Attributes
    ----------
    t:
        Round index (1-based).
    prediction:
        ``λ_t · n`` from the idealized recurrence.
    experiment:
        Average measured survivors after ``t`` rounds.
    relative_error:
        ``|prediction − experiment| / max(experiment, 1)``.
    """

    t: int
    prediction: float
    experiment: float

    @property
    def relative_error(self) -> float:
        """Relative deviation between prediction and measurement."""
        return abs(self.prediction - self.experiment) / max(self.experiment, 1.0)


def _table2_trial(params: Dict[str, Any], rng: np.random.Generator) -> np.ndarray:
    # Module-level so process-pool backends can pickle the task stream.
    peeler = PeelingConfig(
        engine="parallel", k=params["k"], update="full", track_stats=True
    ).build()
    graph = random_hypergraph(params["n"], params["c"], params["r"], seed=rng)
    result = peeler.peel(graph)
    return np.array(
        [result.survivors_after_round(t) for t in range(1, params["rounds"] + 1)],
        dtype=float,
    )


def _table2_aggregate(params: Dict[str, Any], results: List[np.ndarray]) -> List[Table2Row]:
    measured = np.mean(results, axis=0)
    predicted = predicted_survivors(
        params["n"], params["c"], params["k"], params["r"], params["rounds"]
    )
    return [
        Table2Row(t=t, prediction=float(predicted[t - 1]), experiment=float(measured[t - 1]))
        for t in range(1, params["rounds"] + 1)
    ]


def table2_spec(
    n: int = 100_000,
    c: float = 0.7,
    *,
    r: int = 4,
    k: int = 2,
    rounds: int = 20,
    trials: int = 10,
    seed: SeedLike = 0,
) -> SweepSpec:
    """Declare the Table 2 comparison as a one-cell sweep."""
    n = check_positive_int(n, "n")
    rounds = check_positive_int(rounds, "rounds")
    trials = check_positive_int(trials, "trials")
    cell = CellSpec(
        key=f"c={c:g}/n={n}",
        params={
            "n": int(n),
            "c": float(c),
            "r": int(r),
            "k": int(k),
            "rounds": int(rounds),
        },
        seed=seed,
        trials=trials,
    )
    return SweepSpec(name="table2", cells=(cell,))


def run_table2(
    n: int = 100_000,
    c: float = 0.7,
    *,
    r: int = 4,
    k: int = 2,
    rounds: int = 20,
    trials: int = 10,
    seed: SeedLike = 0,
    backend: Optional[BackendLike] = None,
) -> List[Table2Row]:
    """Compare the recurrence prediction with simulation, round by round.

    Defaults use ``n = 10^5`` and 10 trials (the paper uses ``n = 10^6`` and
    1000 trials); the comparison concentrates so sharply that the smaller
    scale reproduces the same relative accuracy.
    """
    spec = table2_spec(n, c, r=r, k=k, rounds=rounds, trials=trials, seed=seed)
    return run_sweep(spec, _table2_trial, _table2_aggregate, backend=backend)[0]


def format_table2(rows: Sequence[Table2Row], *, c: Optional[float] = None) -> str:
    """Render the prediction/experiment comparison as a table."""
    title = "Table 2: recurrence prediction vs experiment"
    if c is not None:
        title += f" (c={c:g})"
    table = Table(["t", "Prediction", "Experiment", "RelErr"], title=title)
    for row in rows:
        table.add_row(
            format_int(row.t),
            format_float(row.prediction, 1),
            format_float(row.experiment, 1),
            format_float(row.relative_error, 5),
        )
    return table.render()
