"""Shared trial-running machinery for one-off experiment cells.

Grid-shaped experiments declare a :class:`repro.sweeps.SweepSpec` and run on
the :func:`repro.sweeps.run_sweep` scheduler; :func:`run_trials` is the
single-cell convenience for ad-hoc repetitions ("run this trial N times with
independent RNGs") and is itself a one-cell sweep, so both paths share the
same seed-spawning and backend-dispatch code.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.parallel.backend import ExecutionBackend
from repro.sweeps import CellSpec, SweepSpec, run_sweep
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

__all__ = ["run_trials", "TrialSummary", "summarize", "BackendLike"]

R = TypeVar("R")

BackendLike = Union[str, ExecutionBackend]
"""A backend name (resolved via :func:`repro.parallel.get_backend`) or instance."""


def _trial_adapter(
    trial: Callable[[np.random.Generator], R], params: Dict[str, Any], rng: np.random.Generator
) -> R:
    # Module-level so process-pool backends can pickle the task stream.
    return trial(rng)


def run_trials(
    trial: Callable[[np.random.Generator], R],
    num_trials: int,
    *,
    seed: SeedLike = None,
    backend: Optional[BackendLike] = None,
    max_workers: Optional[int] = None,
) -> List[R]:
    """Run ``trial`` ``num_trials`` times with independent RNGs.

    Parameters
    ----------
    trial:
        Callable taking a :class:`numpy.random.Generator` and returning the
        per-trial result.  For the process-pool backend it must be picklable
        (a module-level function or ``functools.partial`` of one).
    num_trials:
        Number of independent repetitions.
    seed:
        Base seed; per-trial generators are spawned from it.
    backend:
        Execution backend — a registered name (``"serial"``, ``"threads"``,
        ``"processes"``) or an :class:`ExecutionBackend` instance.  Named
        backends are created for the call and closed afterwards; instances
        are left open for reuse.  Defaults to serial.
    max_workers:
        Worker count for named pool backends (ignored otherwise).
    """
    num_trials = check_positive_int(num_trials, "num_trials")
    spec = SweepSpec(
        name="trials",
        cells=(CellSpec(key="trials", params={}, seed=seed, trials=num_trials),),
    )
    return run_sweep(
        spec,
        functools.partial(_trial_adapter, trial),
        lambda params, results: results,
        backend=backend,
        max_workers=max_workers,
    )[0]


@dataclass(frozen=True)
class TrialSummary:
    """Mean/min/max/std summary of a scalar per-trial statistic."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int


def summarize(values: Sequence[float]) -> TrialSummary:
    """Summarize a sequence of per-trial scalars."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return TrialSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )
