"""Shared trial-running machinery for the experiment harness.

Every experiment in the paper averages a statistic over independent trials.
:func:`run_trials` owns the plumbing: it derives one independent RNG per
trial (so results are reproducible and order-independent), dispatches the
trials on an execution backend, and returns the per-trial results in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.parallel.backend import ExecutionBackend, get_backend
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.validation import check_positive_int

__all__ = ["run_trials", "TrialSummary", "summarize", "BackendLike"]

R = TypeVar("R")

BackendLike = Union[str, ExecutionBackend]
"""A backend name (resolved via :func:`repro.parallel.get_backend`) or instance."""


def run_trials(
    trial: Callable[[np.random.Generator], R],
    num_trials: int,
    *,
    seed: SeedLike = None,
    backend: Optional[BackendLike] = None,
    max_workers: Optional[int] = None,
) -> List[R]:
    """Run ``trial`` ``num_trials`` times with independent RNGs.

    Parameters
    ----------
    trial:
        Callable taking a :class:`numpy.random.Generator` and returning the
        per-trial result.  For the process-pool backend it must be picklable
        (a module-level function or ``functools.partial`` of one).
    num_trials:
        Number of independent repetitions.
    seed:
        Base seed; per-trial generators are spawned from it.
    backend:
        Execution backend — a registered name (``"serial"``, ``"threads"``,
        ``"processes"``) or an :class:`ExecutionBackend` instance.  Named
        backends are created for the call and closed afterwards; instances
        are left open for reuse.  Defaults to serial.
    max_workers:
        Worker count for named pool backends (ignored otherwise).
    """
    num_trials = check_positive_int(num_trials, "num_trials")
    rngs = spawn_rngs(seed, num_trials)
    owned = backend is None or isinstance(backend, str)
    resolved = get_backend(backend or "serial", max_workers=max_workers) if owned else backend
    try:
        return resolved.map(trial, rngs)
    finally:
        if owned:
            resolved.close()


@dataclass(frozen=True)
class TrialSummary:
    """Mean/min/max/std summary of a scalar per-trial statistic."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int


def summarize(values: Sequence[float]) -> TrialSummary:
    """Summarize a sequence of per-trial scalars."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return TrialSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )
