"""Shared trial-running machinery for the experiment harness.

Every experiment in the paper averages a statistic over independent trials.
:func:`run_trials` owns the plumbing: it derives one independent RNG per
trial (so results are reproducible and order-independent), dispatches the
trials on an execution backend, and returns the per-trial results in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.parallel.backend import ExecutionBackend, SerialBackend
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.validation import check_positive_int

__all__ = ["run_trials", "TrialSummary", "summarize"]

R = TypeVar("R")


def run_trials(
    trial: Callable[[np.random.Generator], R],
    num_trials: int,
    *,
    seed: SeedLike = None,
    backend: Optional[ExecutionBackend] = None,
) -> List[R]:
    """Run ``trial`` ``num_trials`` times with independent RNGs.

    Parameters
    ----------
    trial:
        Callable taking a :class:`numpy.random.Generator` and returning the
        per-trial result.
    num_trials:
        Number of independent repetitions.
    seed:
        Base seed; per-trial generators are spawned from it.
    backend:
        Execution backend (defaults to the serial backend).
    """
    num_trials = check_positive_int(num_trials, "num_trials")
    rngs = spawn_rngs(seed, num_trials)
    backend = backend if backend is not None else SerialBackend()
    return backend.map(trial, rngs)


@dataclass(frozen=True)
class TrialSummary:
    """Mean/min/max/std summary of a scalar per-trial statistic."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int


def summarize(values: Sequence[float]) -> TrialSummary:
    """Summarize a sequence of per-trial scalars."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return TrialSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )
