"""Generic name→factory registry shared by engines, decoders and backends.

Three subsystems expose the same "select an implementation by string"
pattern: peeling engines (:mod:`repro.engine.registry`), IBLT decoders
(:mod:`repro.iblt.registry`) and execution backends
(:mod:`repro.parallel.backend`).  Each keeps its own :class:`Registry`
instance and wraps it in domain-named module functions; the behaviour —
validation, overwrite protection, aliases, unknown-name errors that list
the registered names — lives here once.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Tuple, TypeVar

__all__ = ["Registry"]

F = TypeVar("F", bound=Callable)


class Registry(Generic[F]):
    """A name→factory map with aliases and name-listing lookup errors.

    Parameters
    ----------
    kind:
        Singular noun used in error messages (``"engine"``, ``"decoder"``,
        ``"backend"``).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, F] = {}
        self._aliases: Dict[str, str] = {}

    def register(self, name: str, factory: F, *, overwrite: bool = False) -> None:
        """Register ``factory`` under ``name``.

        Re-registering a taken name raises ``ValueError`` unless
        ``overwrite=True``, surfacing accidental collisions.
        """
        if not isinstance(name, str) or not name:
            raise TypeError(f"{self.kind} name must be a non-empty string, got {name!r}")
        if not callable(factory):
            raise TypeError(f"{self.kind} factory must be callable, got {factory!r}")
        if (name in self._entries or name in self._aliases) and not overwrite:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; pass overwrite=True to replace it"
            )
        self._aliases.pop(name, None)
        self._entries[name] = factory

    def register_alias(self, alias: str, target: str) -> None:
        """Make ``alias`` resolve to ``target`` without listing it in :meth:`names`.

        Used for historical spellings (e.g. the decoder alias
        ``"parallel"`` → ``"subtable"``) that should keep working at every
        call site without cluttering the advertised name set.
        """
        if target not in self._entries:
            raise ValueError(self._unknown(target))
        if alias in self._entries:
            raise ValueError(f"{self.kind} {alias!r} is already registered as a primary name")
        self._aliases[alias] = target

    def unregister(self, name: str) -> None:
        """Remove a name or alias; unknown names raise ``ValueError``.

        Removing a primary name also removes any aliases pointing at it.
        """
        if name in self._entries:
            del self._entries[name]
            self._aliases = {a: t for a, t in self._aliases.items() if t != name}
        elif name in self._aliases:
            del self._aliases[name]
        else:
            raise ValueError(self._unknown(name))

    def get(self, name: str) -> F:
        """Look up a factory by name or alias.

        Raises
        ------
        ValueError
            If ``name`` is not registered; the message lists the available
            names.
        """
        target = self._aliases.get(name, name)
        try:
            return self._entries[target]
        except KeyError:
            raise ValueError(self._unknown(name)) from None

    def names(self) -> Tuple[str, ...]:
        """Sorted primary names (aliases are resolvable but not listed)."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries or name in self._aliases

    def _unknown(self, name: str) -> str:
        known = ", ".join(repr(n) for n in self.names()) or "none registered"
        return f"unknown {self.kind} {name!r}; available {self.kind}s: {known}"
