"""Lightweight timing helpers for the experiment harness.

The paper reports wall-clock times for the serial and parallel IBLT
implementations; we provide a context-manager timer and an injectable clock so
tests can exercise timing code paths deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["WallClock", "Timer"]


class WallClock:
    """Monotonic clock wrapper; swap out ``now`` in tests for determinism."""

    def __init__(self, now: Optional[Callable[[], float]] = None) -> None:
        self._now = now if now is not None else time.perf_counter

    def now(self) -> float:
        """Return the current time in seconds (monotonic)."""
        return self._now()


@dataclass
class Timer:
    """Accumulating named-section timer.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.section("insert"):
    ...     pass
    >>> "insert" in timer.totals
    True
    """

    clock: WallClock = field(default_factory=WallClock)
    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _stack: List[tuple] = field(default_factory=list)

    def section(self, name: str) -> "_TimerSection":
        """Return a context manager that accumulates into section ``name``."""
        return _TimerSection(self, name)

    def add(self, name: str, elapsed: float) -> None:
        """Record ``elapsed`` seconds against section ``name``."""
        if elapsed < 0:
            raise ValueError(f"elapsed must be non-negative, got {elapsed}")
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` (0.0 if never recorded)."""
        return self.totals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per call recorded under ``name``."""
        count = self.counts.get(name, 0)
        if count == 0:
            return 0.0
        return self.totals[name] / count

    def reset(self) -> None:
        """Clear all recorded sections."""
        self.totals.clear()
        self.counts.clear()


class _TimerSection:
    """Context manager produced by :meth:`Timer.section`."""

    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_TimerSection":
        self._start = self._timer.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self._timer.add(self._name, self._timer.clock.now() - self._start)
