"""Random-number-generator plumbing.

All stochastic code in :mod:`repro` accepts a ``seed`` argument that may be

* ``None`` — fresh OS entropy,
* an ``int`` — deterministic seed,
* a :class:`numpy.random.Generator` — used as-is,
* a :class:`numpy.random.SeedSequence` — turned into a Generator.

``resolve_rng`` normalizes any of these into a Generator; ``spawn_rngs``
produces independent child generators for parallel trials so that results do
not depend on scheduling order.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "resolve_rng", "spawn_rngs", "derive_seed"]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None``, an integer, a ``Generator`` or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
        A generator; the same object if one was passed in.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, a numpy Generator or a SeedSequence; "
        f"got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Independent streams are derived with :class:`numpy.random.SeedSequence`
    spawning, so per-trial results are reproducible regardless of execution
    order (important when trials are distributed over worker threads).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's bit stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif seed is None:
        seq = np.random.SeedSequence()
    else:
        seq = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: SeedLike, *tokens: Union[int, str]) -> int:
    """Derive a deterministic 63-bit integer seed from a base seed and tokens.

    Useful for giving distinct but reproducible seeds to sub-components (for
    example one seed per hash function of an IBLT) without consuming state
    from a shared generator.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)
    elif seed is None:
        base = int(np.random.SeedSequence().generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)
    else:
        base = int(seed)
    mask64 = (1 << 64) - 1
    mix = base & mask64
    for token in tokens:
        if isinstance(token, str):
            # FNV-1a over the UTF-8 bytes: deterministic across processes
            # (unlike builtin hash(), which is salted by PYTHONHASHSEED).
            token_val = 0xCBF29CE484222325
            for byte in token.encode("utf-8"):
                token_val = ((token_val ^ byte) * 0x100000001B3) & mask64
        else:
            token_val = int(token) & mask64
        # SplitMix64-style mixing keeps derived seeds well separated.
        mix = (mix + 0x9E3779B97F4A7C15 + token_val) & mask64
        z = mix
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask64
        mix = (z ^ (z >> 31)) & mask64
    return mix & 0x7FFF_FFFF_FFFF_FFFF
