"""Plain-text table rendering for the experiment harness.

The benchmark scripts print the same rows the paper's tables report; this
module renders those rows as aligned monospace tables without any third-party
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["Table", "format_float", "format_int"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float with ``digits`` decimals, collapsing -0.0 to 0.0."""
    if value == 0:
        value = 0.0
    return f"{value:.{digits}f}"


def format_int(value: int) -> str:
    """Format an integer with no grouping (matches the paper's tables)."""
    return f"{int(value):d}"


@dataclass
class Table:
    """A simple column-aligned text table.

    Parameters
    ----------
    columns:
        Header labels, one per column.
    title:
        Optional title printed above the table.
    """

    columns: Sequence[str]
    title: Optional[str] = None
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row; cells are converted with ``str``."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows at once."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Render the table as an aligned monospace string."""
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(headers))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
