"""Shared utilities: RNG handling, validation, timing, and tabular reporting.

These helpers are deliberately small and dependency-free (NumPy only) so that
every other subpackage can import them without creating cycles.
"""

from repro.utils.rng import resolve_rng, spawn_rngs, derive_seed
from repro.utils.validation import (
    check_positive_int,
    check_nonnegative_int,
    check_positive_float,
    check_probability,
    check_in_range,
    check_array_1d,
    require,
)
from repro.utils.timing import Timer, WallClock
from repro.utils.tables import Table, format_float, format_int

__all__ = [
    "resolve_rng",
    "spawn_rngs",
    "derive_seed",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_probability",
    "check_in_range",
    "check_array_1d",
    "require",
    "Timer",
    "WallClock",
    "Table",
    "format_float",
    "format_int",
]
