"""Argument-validation helpers used throughout the package.

Each helper raises ``ValueError``/``TypeError`` with a message naming the
offending parameter, so call sites stay one-liners and error messages stay
consistent.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

__all__ = [
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_probability",
    "check_in_range",
    "check_array_1d",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive_float(value: Any, name: str) -> float:
    """Validate that ``value`` is a finite number ``> 0`` and return it as float."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as float."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_in_range(
    value: Any,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies within ``[low, high]`` (or open interval)."""
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if inclusive:
        if low is not None and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if high is not None and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
    else:
        if low is not None and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
        if high is not None and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


def check_array_1d(value: Any, name: str, dtype: Any = None) -> np.ndarray:
    """Coerce ``value`` to a 1-D NumPy array (optionally of ``dtype``)."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr
