"""Perf-trajectory benchmark harness: engines × kernel backends × workloads.

This module seeds the repo's performance trajectory: every run times the
three peeling engines and the parallel IBLT decoders on every registered
kernel backend and writes the wall-clock numbers to a JSON file
(``BENCH_kernels.json`` by default), so successive PRs can diff like for
like.  It is reachable three ways:

* ``repro bench`` (the CLI sub-command; ``--quick`` for a seconds-long smoke
  run used by CI),
* ``python benchmarks/bench_kernels.py`` from a checkout,
* :func:`run_benchmarks` programmatically.

Timing methodology: each workload is built once per size (generation is not
timed), then run ``repeats`` times on each engine × kernel combination; the
*best* wall-clock time is reported, which is the standard way to suppress
scheduler noise for sub-second kernels.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.utils.tables import Table

__all__ = [
    "DEFAULT_SIZES",
    "QUICK_SIZES",
    "run_benchmarks",
    "write_results",
    "format_results",
    "main",
]

DEFAULT_SIZES = (10_000, 100_000)
"""Problem sizes of the standing perf trajectory (Tables 1/5 territory)."""

QUICK_SIZES = (2_000,)
"""Sizes for the CI smoke run (``--quick``)."""

_PEEL_ENGINES = ("sequential", "parallel", "subtable")
_PARALLEL_DECODERS = ("flat", "subtable")


def _best_time(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock seconds for ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _subtable_cells(n: int, r: int) -> int:
    """Largest cell count ``<= n`` divisible by ``r`` (the subtable layout needs it)."""
    return max(n - n % r, r)


def _bench_peel(
    sizes: Sequence[int],
    kernels: Sequence[str],
    *,
    c: float,
    r: int,
    k: int,
    seed: int,
    repeats: int,
) -> List[Dict[str, Any]]:
    from repro.engine import peel
    from repro.hypergraph import partitioned_hypergraph, random_hypergraph

    records: List[Dict[str, Any]] = []
    for n in sizes:
        n_part = _subtable_cells(n, r)
        graphs = {
            "sequential": random_hypergraph(n, c, r, seed=seed),
            "parallel": random_hypergraph(n, c, r, seed=seed),
            "subtable": partitioned_hypergraph(n_part, c, r, seed=seed),
        }
        for engine in _PEEL_ENGINES:
            graph = graphs[engine]
            for kernel in kernels:
                result = peel(graph, engine, k=k, kernel=kernel)
                seconds = _best_time(
                    lambda: peel(graph, engine, k=k, kernel=kernel), repeats
                )
                records.append(
                    {
                        "section": "peel",
                        "engine": engine,
                        "kernel": kernel,
                        "n": int(graph.num_vertices),
                        "c": c,
                        "r": r,
                        "k": k,
                        "seed": seed,
                        "rounds": result.num_rounds,
                        "success": bool(result.success),
                        "seconds": seconds,
                    }
                )
    return records


def _bench_peel_many(
    sizes: Sequence[int],
    kernels: Sequence[str],
    *,
    c: float,
    r: int,
    k: int,
    seed: int,
    repeats: int,
    batch: int,
) -> List[Dict[str, Any]]:
    from repro.engine import peel_many
    from repro.hypergraph import random_hypergraph

    n = min(sizes)  # the batch section measures dispatch, not graph scale
    graphs = [random_hypergraph(n, c, r, seed=seed + i) for i in range(batch)]
    records: List[Dict[str, Any]] = []
    for kernel in kernels:
        seconds = _best_time(
            lambda: peel_many(graphs, "parallel", k=k, kernel=kernel, backend="serial"),
            repeats,
        )
        records.append(
            {
                "section": "peel_many",
                "engine": "parallel",
                "kernel": kernel,
                "n": n,
                "c": c,
                "r": r,
                "k": k,
                "seed": seed,
                "batch": batch,
                "seconds": seconds,
            }
        )
    return records


def _bench_iblt(
    sizes: Sequence[int],
    kernels: Sequence[str],
    *,
    r: int,
    load: float,
    seed: int,
    repeats: int,
) -> List[Dict[str, Any]]:
    from repro.iblt import IBLT

    records: List[Dict[str, Any]] = []
    for n in sizes:
        num_cells = _subtable_cells(n, r)
        table = IBLT(num_cells, r, seed=seed)
        num_keys = int(load * num_cells)
        # Any fixed injective map into non-zero uint64 keys works here.
        keys = (
            np.arange(1, num_keys + 1, dtype=np.uint64)
            * np.uint64(0x9E3779B97F4A7C15)
        ) | np.uint64(1)
        table.insert(keys)
        baseline = table.decode(decoder="serial")
        records.append(
            {
                "section": "iblt_decode",
                "decoder": "serial",
                "kernel": None,
                "num_cells": num_cells,
                "r": r,
                "load": load,
                "seed": seed,
                "success": bool(baseline.success),
                "seconds": _best_time(lambda: table.decode(decoder="serial"), repeats),
            }
        )
        for decoder in _PARALLEL_DECODERS:
            for kernel in kernels:
                result = table.decode(decoder=decoder, kernel=kernel)
                seconds = _best_time(
                    lambda: table.decode(decoder=decoder, kernel=kernel), repeats
                )
                records.append(
                    {
                        "section": "iblt_decode",
                        "decoder": decoder,
                        "kernel": kernel,
                        "num_cells": num_cells,
                        "r": r,
                        "load": load,
                        "seed": seed,
                        "rounds": result.rounds,
                        "success": bool(result.success),
                        "seconds": seconds,
                    }
                )
    return records


def run_benchmarks(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    kernels: Optional[Sequence[str]] = None,
    c: float = 0.7,
    r: int = 4,
    iblt_r: int = 3,
    k: int = 2,
    load: float = 0.7,
    seed: int = 1,
    repeats: int = 3,
    batch: int = 4,
) -> Dict[str, Any]:
    """Run the full benchmark matrix and return the JSON-ready payload.

    Parameters
    ----------
    sizes:
        Vertex / cell counts to benchmark at (each engine × kernel runs at
        every size).
    kernels:
        Kernel-backend names to sweep; ``None`` means every registered one.
    c, r, k:
        Hypergraph density, edge size and peeling threshold of the k-core
        workloads.
    iblt_r, load:
        Hashes per key and table load of the IBLT decode workload.
    seed:
        Base RNG seed (workloads are identical across kernels by design).
    repeats:
        Timed runs per combination; the best is reported.
    batch:
        Batch size of the ``peel_many`` section.
    """
    from repro.kernels import available_kernels

    kernel_names = tuple(kernels) if kernels is not None else available_kernels()
    results: List[Dict[str, Any]] = []
    results += _bench_peel(
        sizes, kernel_names, c=c, r=r, k=k, seed=seed, repeats=repeats
    )
    results += _bench_peel_many(
        sizes, kernel_names, c=c, r=r, k=k, seed=seed, repeats=repeats, batch=batch
    )
    results += _bench_iblt(
        sizes, kernel_names, r=iblt_r, load=load, seed=seed, repeats=repeats
    )
    return {
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "kernels": list(kernel_names),
            "sizes": [int(n) for n in sizes],
            "repeats": repeats,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "results": results,
    }


def write_results(payload: Dict[str, Any], path: Path) -> None:
    """Write the benchmark payload as indented JSON to ``path``."""
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def format_results(payload: Dict[str, Any]) -> str:
    """Render the benchmark payload as an aligned text table."""
    table = Table(
        columns=("section", "workload", "kernel", "size", "seconds"),
        title=f"kernel benchmarks ({payload['meta']['timestamp']})",
    )
    for record in payload["results"]:
        workload = record.get("engine") or record.get("decoder")
        size = record.get("n", record.get("num_cells"))
        table.add_row(
            record["section"],
            workload,
            record["kernel"] or "-",
            size,
            f"{record['seconds']:.4f}",
        )
    return table.render()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Stand-alone entry point (``python benchmarks/bench_kernels.py``)."""
    parser = argparse.ArgumentParser(
        description="Benchmark peeling engines and IBLT decoders across kernel backends."
    )
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    print(run_bench_command(args))
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the benchmark flags (shared with the ``repro bench`` sub-command)."""
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="problem sizes to benchmark (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="seconds-long smoke run (small sizes, one repeat); used by CI",
    )
    parser.add_argument(
        "--kernel",
        dest="kernels",
        action="append",
        default=None,
        metavar="NAME",
        help="kernel backend to include (repeatable; default: all registered)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_kernels.json"),
        help="output JSON path (default: %(default)s)",
    )


def run_bench_command(args: argparse.Namespace) -> str:
    """Execute a parsed benchmark invocation; returns the printable report."""
    sizes: Sequence[int] = QUICK_SIZES if args.quick else args.sizes
    repeats = 1 if args.quick else args.repeats
    payload = run_benchmarks(
        sizes=sizes, kernels=args.kernels, seed=args.seed, repeats=repeats
    )
    write_results(payload, args.out)
    report = format_results(payload)
    return f"{report}\n\nwrote {len(payload['results'])} timings to {args.out}"
