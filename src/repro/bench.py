"""Perf-trajectory benchmark harness: engines × kernel backends × workloads.

This module seeds the repo's performance trajectory: every run times the
three peeling engines and the parallel IBLT decoders on every registered
kernel backend and writes the wall-clock numbers to a JSON file
(``BENCH_kernels.json`` by default), so successive PRs can diff like for
like.  It is reachable three ways:

* ``repro bench`` (the CLI sub-command; ``--quick`` for a seconds-long smoke
  run used by CI),
* ``python benchmarks/bench_kernels.py`` from a checkout,
* :func:`run_benchmarks` programmatically.

The benchmark matrix is declared as a :class:`repro.sweeps.SweepSpec`
(:func:`bench_spec`) — one single-trial cell per (section, workload, kernel,
size) — and executed on the :func:`repro.sweeps.run_sweep` scheduler, always
serially (timing cells in parallel would corrupt each other's wall clocks);
what the sweep layer buys here is the shared progress/artifact machinery.

Timing methodology: each cell first warms its kernel backend up
(``get_kernel`` + ``warmup()``, so one-time Numba JIT / C compile+dlopen
costs never leak into the timings; the warm-up cost itself is reported per
record as ``compile_ms``), then builds its workload from its cell seed
(generation is not timed), then runs it ``repeats`` times; the *best*
wall-clock time is reported, which is the standard way to suppress scheduler
noise for sub-second kernels.  ``compare_payloads`` diffs two result files
per (section, workload, kernel, size) and flags regressions past a
tolerance — ``repro bench --compare BASELINE.json`` exits non-zero on any,
except in sections marked informational via ``--informational-section``
(used by CI for hardware-bound baselines such as ``intra_trial``).

The ``batched`` section times the same batch of small graphs through the
per-graph loop and through the fused lockstep path
(``peel_many(..., backend="batched")``) at several batch sizes; both
produce bit-identical results, so the ratio isolates dispatch structure.
The ``serve`` section runs the decode service end-to-end (in-process
server on a loopback socket, one multiplexed client firing concurrent
requests) at several ``--batch-window-ms`` settings and records
requests/sec plus p50/p95/p99 latency; it is wall-clock- and
scheduler-bound, so CI compares it with ``--informational-section serve``.

The ``incremental`` section measures what the resident decode session buys:
per churn ratio it replays the identical deterministic churn schedule
(delete/insert a fraction of the keys) against the same bootstrapped table
twice — once re-decoding from scratch, once through
``IBLT.decode(incremental=True)`` — timing only the (re-)decode.  The two
modes return bit-identical key sets, so the seconds ratio isolates the
incremental re-peel; its rounds scale with the churn, not the table size.

The ``memory`` section records the footprint story of the compact columnar
state: per mode (``compact`` 32-bit ids vs ``wide`` int64) it reports the
explicit working-set bytes of a fully-attached :class:`PeelState`
(``state_bytes`` — the acceptance metric: compact must be well under
wide), the tracemalloc peak of newly-allocated bytes during one
steady-state peel (``steady_peel_traced_bytes`` — the per-round temporary
traffic), the thread-local arena's new-buffer count across that peel
(``arena_allocations_steady`` — zero once warm), the process high-water
RSS for context, and the peel wall clock.  Footprints are deterministic
but wall clocks are not, so CI compares this section with
``--informational-section memory``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._version import __version__
from repro.sweeps import CellSpec, SweepProgress, SweepSpec, print_progress, run_sweep
from repro.utils.rng import derive_seed
from repro.utils.tables import Table

__all__ = [
    "DEFAULT_SIZES",
    "QUICK_SIZES",
    "INTRA_TRIAL_SIZES",
    "INTRA_TRIAL_WORKERS",
    "BATCHED_BATCH_SIZES",
    "QUICK_BATCHED_BATCH_SIZES",
    "BATCHED_GRAPH_SIZE",
    "BATCHED_DENSITY",
    "SERVE_WINDOWS_MS",
    "QUICK_SERVE_WINDOWS_MS",
    "SERVE_REQUESTS",
    "QUICK_SERVE_REQUESTS",
    "SERVE_NUM_CELLS",
    "SERVE_MAX_BATCH",
    "MEMORY_SIZES",
    "QUICK_MEMORY_SIZES",
    "INCREMENTAL_CHURNS",
    "QUICK_INCREMENTAL_CHURNS",
    "DEFAULT_TOLERANCE",
    "bench_spec",
    "run_benchmarks",
    "write_results",
    "format_results",
    "compare_payloads",
    "main",
]

DEFAULT_SIZES = (10_000, 100_000)
"""Problem sizes of the standing perf trajectory (Tables 1/5 territory)."""

QUICK_SIZES = (2_000,)
"""Sizes for the CI smoke run (``--quick``)."""

INTRA_TRIAL_SIZES = (1_000_000,)
"""Sizes of the intra-trial section: one peel large enough that partitioned
round work dominates the per-round barrier cost on multi-core hosts."""

INTRA_TRIAL_WORKERS = (2,)
"""Worker counts benchmarked for the shm-parallel engine."""

BATCHED_BATCH_SIZES = (16, 256, 1024)
"""Batch sizes of the ``batched`` section (per-graph loop vs fused lockstep)."""

QUICK_BATCHED_BATCH_SIZES = (16,)
"""Batch sizes for the CI smoke run (``--quick``)."""

BATCHED_GRAPH_SIZE = 1_000
"""Graph size of the ``batched`` section: small graphs, where per-graph
dispatch overhead dominates — the shape batching exists to fix."""

BATCHED_DENSITY = 0.75
"""Edge density of the ``batched`` section (a Table 1 density close to
``c*_{2,4} ≈ 0.772``): near the threshold the round count stretches, so the
per-graph loop pays many almost-empty Python rounds per graph while the
lockstep pass absorbs them — the regime the fused path targets."""

SERVE_WINDOWS_MS = (0.0, 2.0, 8.0)
"""Batch-window settings of the ``serve`` section: 0 ms (no time-based
coalescing — every request decodes solo unless arrivals are simultaneous)
against two real latency budgets, so the trajectory records what fusion
buys end-to-end."""

QUICK_SERVE_WINDOWS_MS = (2.0,)
"""Batch windows for the CI smoke run (``--quick``)."""

SERVE_REQUESTS = 192
"""Concurrent requests fired per ``serve`` cell."""

QUICK_SERVE_REQUESTS = 32
"""Requests per ``serve`` cell in the CI smoke run."""

SERVE_NUM_CELLS = 240
"""Table geometry of the ``serve`` section: small digests (the
reconciliation shape) where per-request dispatch dominates — the regime
micro-batching exists to fix."""

SERVE_MAX_BATCH = 64
"""Size-trigger of the benched server's coalescer."""

MEMORY_SIZES = (1_000_000,)
"""Graph sizes of the ``memory`` section: large enough that the columnar
working set dwarfs every constant, so the compact-vs-wide byte ratio is the
asymptotic one."""

QUICK_MEMORY_SIZES = (100_000,)
"""Memory-section sizes for the CI smoke run (``--quick``)."""

INCREMENTAL_CHURNS = (0.001, 0.01, 0.1)
"""Churn ratios of the ``incremental`` section: the fraction of keys
replaced between decodes, spanning three orders of magnitude so the
trajectory records how incremental cost tracks churn rather than size."""

QUICK_INCREMENTAL_CHURNS = (0.01,)
"""Churn ratios for the CI smoke run (``--quick``)."""

DEFAULT_TOLERANCE = 0.25
"""Default slowdown fraction past which ``--compare`` reports a regression."""

_PEEL_ENGINES = ("sequential", "parallel", "subtable")
_PARALLEL_DECODERS = ("flat", "subtable")


def _best_time(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock seconds for ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _warmup_kernel(kernel: Optional[str]) -> Optional[float]:
    """Resolve ``kernel`` and run its warm-up; returns the cost in ms.

    Compiled backends pay their one-time cost (Numba JIT, C build+dlopen)
    inside ``get_kernel`` + ``warmup()``; running this before the timed
    repetitions keeps compilation out of every ``seconds`` figure, and the
    returned ``compile_ms`` reports it separately per record (near-zero
    once a process has already warmed that backend — the first record of a
    backend carries its real compile cost).
    """
    if kernel is None:
        return None
    from repro.kernels import get_kernel

    start = time.perf_counter()
    get_kernel(kernel).warmup()
    return (time.perf_counter() - start) * 1000.0


def _subtable_cells(n: int, r: int) -> int:
    """Largest cell count ``<= n`` divisible by ``r`` (the subtable layout needs it)."""
    return max(n - n % r, r)


def _bench_peel_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # Module-level so process-pool backends could pickle it; the sweep rng is
    # unused — workloads are rebuilt deterministically from the cell seed so
    # every kernel times the identical graph.
    from repro.engine import peel
    from repro.hypergraph import partitioned_hypergraph, random_hypergraph

    engine, kernel = params["engine"], params["kernel"]
    n, c, r, k, seed = params["n"], params["c"], params["r"], params["k"], params["seed"]
    compile_ms = _warmup_kernel(kernel)
    if engine == "subtable":
        graph = partitioned_hypergraph(_subtable_cells(n, r), c, r, seed=seed)
    else:
        graph = random_hypergraph(n, c, r, seed=seed)
    result = peel(graph, engine, k=k, kernel=kernel)
    seconds = _best_time(lambda: peel(graph, engine, k=k, kernel=kernel), params["repeats"])
    return {
        "section": "peel",
        "engine": engine,
        "kernel": kernel,
        "n": int(graph.num_vertices),
        "c": c,
        "r": r,
        "k": k,
        "seed": seed,
        "rounds": result.num_rounds,
        "success": bool(result.success),
        "compile_ms": compile_ms,
        "seconds": seconds,
    }


def _bench_peel_many_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    from repro.engine import peel_many
    from repro.hypergraph import random_hypergraph

    n, c, r, k, seed = params["n"], params["c"], params["r"], params["k"], params["seed"]
    kernel, batch = params["kernel"], params["batch"]
    compile_ms = _warmup_kernel(kernel)
    graphs = [random_hypergraph(n, c, r, seed=seed + i) for i in range(batch)]
    seconds = _best_time(
        lambda: peel_many(graphs, "parallel", k=k, kernel=kernel, backend="serial"),
        params["repeats"],
    )
    return {
        "section": "peel_many",
        "engine": "parallel",
        "kernel": kernel,
        "n": n,
        "c": c,
        "r": r,
        "k": k,
        "seed": seed,
        "batch": batch,
        "compile_ms": compile_ms,
        "seconds": seconds,
    }


def _bench_iblt_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    from repro.iblt import IBLT

    num_cells, r, load, seed = params["num_cells"], params["r"], params["load"], params["seed"]
    decoder, kernel = params["decoder"], params["kernel"]
    compile_ms = _warmup_kernel(kernel)
    table = IBLT(num_cells, r, seed=seed)
    num_keys = int(load * num_cells)
    # Any fixed injective map into non-zero uint64 keys works here.
    keys = (
        np.arange(1, num_keys + 1, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    ) | np.uint64(1)
    table.insert(keys)
    decode_kwargs = {"decoder": decoder}
    if kernel is not None:
        decode_kwargs["kernel"] = kernel
    result = table.decode(**decode_kwargs)
    seconds = _best_time(lambda: table.decode(**decode_kwargs), params["repeats"])
    record: Dict[str, Any] = {
        "section": "iblt_decode",
        "decoder": decoder,
        "kernel": kernel,
        "num_cells": num_cells,
        "r": r,
        "load": load,
        "seed": seed,
    }
    if decoder != "serial":
        record["rounds"] = result.rounds
    record["success"] = bool(result.success)
    record["compile_ms"] = compile_ms
    record["seconds"] = seconds
    return record


def _bench_intra_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # One big peel, serial baseline vs the shm-parallel engine: the paper's
    # intra-trial parallelism claim measured on real hardware.  The serial
    # baseline is the numpy-kernel parallel engine timed on the identical
    # graph, so the delta is purely the worker pool.
    from repro.engine import peel
    from repro.hypergraph import random_hypergraph

    engine = params["engine"]
    n, c, r, k, seed = params["n"], params["c"], params["r"], params["k"], params["seed"]
    compile_ms = _warmup_kernel(None if engine == "shm-parallel" else params["kernel"])
    graph = random_hypergraph(n, c, r, seed=seed)
    opts: Dict[str, Any] = {}
    if engine == "shm-parallel":
        opts["num_workers"] = params["workers"]
    else:
        opts["kernel"] = params["kernel"]
    result = peel(graph, engine, k=k, **opts)
    seconds = _best_time(lambda: peel(graph, engine, k=k, **opts), params["repeats"])
    return {
        "section": "intra_trial",
        "engine": engine,
        "kernel": params["kernel"],
        "workers": params.get("workers"),
        "compile_ms": compile_ms,
        "n": int(graph.num_vertices),
        "c": c,
        "r": r,
        "k": k,
        "seed": seed,
        "rounds": result.num_rounds,
        "success": bool(result.success),
        "seconds": seconds,
    }


def _bench_batched_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # Per-graph loop vs fused lockstep on the identical batch of small
    # graphs: "loop" is peel_many over the serial backend (one engine run
    # per graph), "batched" the block-diagonal lockstep pass.  Both produce
    # bit-identical results, so the delta is pure dispatch structure.
    from repro.engine import peel_many
    from repro.hypergraph import random_hypergraph

    n, c, r, k, seed = params["n"], params["c"], params["r"], params["k"], params["seed"]
    kernel, batch, mode = params["kernel"], params["batch"], params["mode"]
    compile_ms = _warmup_kernel(kernel)
    backend = "batched" if mode == "batched" else "serial"
    graphs = [random_hypergraph(n, c, r, seed=seed + i) for i in range(batch)]
    # track_stats=False is the serving/throughput configuration (the same
    # one table1's trials use); both modes run it, so the delta is pure
    # dispatch structure.
    run = lambda: peel_many(  # noqa: E731
        graphs, "parallel", k=k, kernel=kernel, track_stats=False, backend=backend
    )
    run()  # untimed warm-up: builds the graphs' incidence caches
    seconds = _best_time(run, params["repeats"])
    return {
        "section": "batched",
        "engine": mode,
        "kernel": kernel,
        "n": n,
        "c": c,
        "r": r,
        "k": k,
        "seed": seed,
        "batch": batch,
        "compile_ms": compile_ms,
        "seconds": seconds,
    }


def _bench_serve_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # End-to-end service throughput: an in-process DecodeServer on a
    # loopback socket, one multiplexed client firing `requests` concurrent
    # decode requests.  window_ms=0 is the no-coalescing baseline (solo
    # decodes); real windows let the micro-batcher fuse, so the rps ratio
    # measures what batch fusion buys through the full socket + frame +
    # executor path, not just the kernel.  Wall clocks are hardware- and
    # scheduler-bound, so CI treats this section as informational.
    import asyncio

    window_ms = params["window_ms"]
    requests, num_cells, r = params["requests"], params["num_cells"], params["r"]
    load, seed = params["load"], params["seed"]

    async def _run_once() -> Dict[str, Any]:
        from repro.serve.client import run_load
        from repro.serve.server import DecodeServer

        server = DecodeServer(
            port=0,
            batch_window_ms=window_ms,
            max_batch_size=params["max_batch"],
        )
        await server.start()
        try:
            summary = await run_load(
                "127.0.0.1",
                server.port,
                requests=requests,
                num_cells=num_cells,
                r=r,
                load=load,
                seed=seed,
                verify=False,
            )
        finally:
            await server.stop()
        return summary

    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, params["repeats"])):
        summary = asyncio.run(_run_once())
        if best is None or summary["elapsed_s"] < best["elapsed_s"]:
            best = summary
    assert best is not None
    return {
        "section": "serve",
        "engine": "serve",
        "kernel": "numpy",
        "n": int(num_cells),
        "r": r,
        "load": load,
        "seed": seed,
        "batch": int(requests),
        "window_ms": float(window_ms),
        "requests_per_s": best["requests_per_s"],
        "latency_ms": best["latency_ms"],
        "mean_batch_size": best["server_stats"]["mean_batch_size"],
        "seconds": best["elapsed_s"],
    }


def _bench_memory_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # Footprint of the columnar state per id layout.  ``state_bytes`` is the
    # deterministic acceptance metric: the summed nbytes of every column of a
    # fully-attached PeelState (mutable + shared-immutable + CSR incidence),
    # i.e. the working set one peel trial keeps live.  The tracemalloc peak
    # and the arena counter are taken over a *warm* peel — after the first
    # trial has populated the thread-local arena and the graph's cached
    # columns — so they measure steady-state per-round temporary traffic,
    # which the arena is supposed to drive to zero new arrays.  ru_maxrss is
    # the process high-water mark (monotone across the whole bench run):
    # context only, never compared.
    import resource
    import tracemalloc

    from repro.engine import peel
    from repro.hypergraph import random_hypergraph
    from repro.kernels import PeelState, default_arena

    mode, kernel = params["mode"], params["kernel"]
    n, c, r, k, seed = params["n"], params["c"], params["r"], params["k"], params["seed"]
    wide = mode == "wide"
    compile_ms = _warmup_kernel(kernel)
    graph = random_hypergraph(n, c, r, seed=seed)
    state = PeelState.from_graph(graph, wide_ids=wide, attach_incidence=True)
    state_bytes = int(sum(arr.nbytes for arr in (
        state.edges, state.degrees,
        state.vertex_alive, state.edge_alive,
        state.vertex_peel_round, state.edge_peel_round,
        state.incidence_ptr, state.incidence_edges,
    )))
    del state

    def run() -> None:
        peel(graph, "parallel", k=k, kernel=kernel, wide_ids=wide)

    run()  # warm: arena buffers, incidence/compact caches, kernel dispatch
    arena = default_arena()
    allocations_before = arena.allocations
    tracemalloc.start()
    run()
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    arena_allocations_steady = arena.allocations - allocations_before
    seconds = _best_time(run, params["repeats"])
    return {
        "section": "memory",
        "engine": mode,
        "kernel": kernel,
        "n": n,
        "c": c,
        "r": r,
        "k": k,
        "seed": seed,
        "compile_ms": compile_ms,
        "state_bytes": state_bytes,
        "steady_peel_traced_bytes": int(traced_peak),
        "arena_allocations_steady": int(arena_allocations_steady),
        "ru_maxrss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "seconds": seconds,
    }


def _bench_incremental_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # Incremental decode vs from-scratch on identical churned tables: both
    # modes replay the same deterministic churn schedule against the same
    # bootstrap table; the churn application (and the incremental mode's
    # bootstrap decode) runs off the clock, only the (re-)decode is timed.
    # The two modes recover bit-identical key sets, so the seconds ratio
    # isolates what the resident session buys.
    from repro.apps.sparse_recovery import random_distinct_keys
    from repro.iblt import IBLT

    mode, kernel = params["mode"], params["kernel"]
    num_cells, r, load = params["num_cells"], params["r"], params["load"]
    churn, seed, n = params["churn"], params["seed"], params["n"]
    compile_ms = _warmup_kernel(kernel)
    num_keys = int(load * num_cells)
    churn_count = max(1, min(num_keys, int(churn * num_keys)))
    repeats = max(1, params["repeats"])
    pool = random_distinct_keys(num_keys + repeats * churn_count, seed=seed)
    keys = pool[:num_keys]
    table = IBLT(num_cells, r, seed=seed)
    table.insert(keys)
    decode_kwargs: Dict[str, Any] = {"decoder": "flat", "signed": True}
    if kernel is not None:
        decode_kwargs["kernel"] = kernel
    bootstrap = table.decode(incremental=True, **decode_kwargs) if mode == "incremental" else None
    current = keys.copy()
    churn_rng = np.random.default_rng(derive_seed(seed, "bench", "incremental-churn", n))
    best = float("inf")
    last: Any = None
    for i in range(repeats):
        drop_idx = churn_rng.choice(current.size, size=churn_count, replace=False)
        deleted = current[drop_idx]
        inserted = pool[num_keys + i * churn_count : num_keys + (i + 1) * churn_count]
        table.delete(deleted)
        table.insert(inserted)
        current = np.concatenate([np.delete(current, drop_idx), inserted])
        start = time.perf_counter()
        if mode == "incremental":
            last = table.decode(incremental=True, **decode_kwargs)
        else:
            last = table.decode(**decode_kwargs)
        best = min(best, time.perf_counter() - start)
    record: Dict[str, Any] = {
        "section": "incremental",
        "engine": mode,
        "kernel": kernel,
        "n": int(n),
        "num_cells": int(num_cells),
        "r": r,
        "load": load,
        "churn": float(churn),
        "seed": seed,
        "success": bool(last.success),
        "compile_ms": compile_ms,
    }
    if mode == "incremental":
        record["bootstrap_rounds"] = int(bootstrap.rounds)
        record["rounds_incremental"] = int(last.rounds_incremental)
        record["cells_scanned"] = int(last.cells_scanned)
    else:
        record["rounds"] = int(last.rounds)
    record["seconds"] = best
    return record


_TRIALS = {
    "peel": _bench_peel_trial,
    "peel_many": _bench_peel_many_trial,
    "iblt_decode": _bench_iblt_trial,
    "intra_trial": _bench_intra_trial,
    "batched": _bench_batched_trial,
    "serve": _bench_serve_trial,
    "memory": _bench_memory_trial,
    "incremental": _bench_incremental_trial,
}


def _bench_dispatch_trial(params: Dict[str, Any], rng: np.random.Generator) -> Dict[str, Any]:
    # Module-level dispatcher: one trial function for the whole matrix.
    return _TRIALS[params["section"]](params, rng)


def _bench_aggregate(params: Dict[str, Any], results: List[Dict[str, Any]]) -> Dict[str, Any]:
    return results[0]


def bench_spec(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    kernels: Optional[Sequence[str]] = None,
    c: float = 0.7,
    r: int = 4,
    iblt_r: int = 3,
    k: int = 2,
    load: float = 0.7,
    seed: int = 1,
    repeats: int = 3,
    batch: int = 4,
    intra_sizes: Sequence[int] = INTRA_TRIAL_SIZES,
    intra_workers: Sequence[int] = INTRA_TRIAL_WORKERS,
    batched_batches: Sequence[int] = BATCHED_BATCH_SIZES,
    serve_windows_ms: Sequence[float] = SERVE_WINDOWS_MS,
    serve_requests: int = SERVE_REQUESTS,
    memory_sizes: Sequence[int] = MEMORY_SIZES,
    incremental_churns: Sequence[float] = INCREMENTAL_CHURNS,
) -> SweepSpec:
    """Declare the benchmark matrix as a sweep (one single-trial cell each).

    Cell order matches the historical record order: the ``peel`` section
    (size × engine × kernel), then ``peel_many`` (kernel), then
    ``iblt_decode`` (size × decoder × kernel, serial baseline first), then
    ``intra_trial`` (size × {serial numpy baseline, shm-parallel × worker
    count} on one identical large graph), then ``batched`` (batch size ×
    {per-graph loop, fused lockstep} × kernel on identical batches of
    ``n=1000`` graphs at ``c=0.75``), then ``serve`` (end-to-end decode
    service throughput at each batch-window setting), then ``memory``
    (columnar-state footprint per id layout: compact 32-bit vs wide int64
    on the reference numpy backend), then ``incremental`` (size × churn
    ratio × {from-scratch re-decode, incremental checkpoint} on identical
    churn schedules, numpy backend).
    """
    from repro.kernels import ready_kernels

    # ready_kernels (not available_kernels): a declared compiled backend
    # whose toolchain turns out broken must drop out of the sweep with its
    # cached KernelUnavailableError, not crash the whole benchmark run.
    kernel_names = tuple(kernels) if kernels is not None else ready_kernels()
    cells: List[CellSpec] = []
    common = {"c": c, "r": r, "k": k, "seed": seed, "repeats": repeats}
    for n in sizes:
        for engine in _PEEL_ENGINES:
            for kernel in kernel_names:
                cells.append(
                    CellSpec(
                        key=f"peel/n={n}/{engine}/{kernel}",
                        params={"section": "peel", "engine": engine, "kernel": kernel,
                                "n": int(n), **common},
                        seed=derive_seed(seed, "bench", "peel", engine, kernel, n),
                    )
                )
    n_many = min(sizes)  # the batch section measures dispatch, not graph scale
    for kernel in kernel_names:
        cells.append(
            CellSpec(
                key=f"peel_many/{kernel}",
                params={"section": "peel_many", "kernel": kernel, "n": int(n_many),
                        "batch": int(batch), **common},
                seed=derive_seed(seed, "bench", "peel_many", kernel),
            )
        )
    for n in sizes:
        num_cells = _subtable_cells(n, iblt_r)
        iblt_common = {
            "section": "iblt_decode", "num_cells": int(num_cells), "r": iblt_r,
            "load": load, "seed": seed, "repeats": repeats,
        }
        # Keys use the *requested* size n: distinct sizes that round to the
        # same cell count must not collide into duplicate cell keys.
        cells.append(
            CellSpec(
                key=f"iblt/n={n}/serial",
                params={**iblt_common, "decoder": "serial", "kernel": None},
                seed=derive_seed(seed, "bench", "iblt", "serial", n),
            )
        )
        for decoder in _PARALLEL_DECODERS:
            for kernel in kernel_names:
                cells.append(
                    CellSpec(
                        key=f"iblt/n={n}/{decoder}/{kernel}",
                        params={**iblt_common, "decoder": decoder, "kernel": kernel},
                        seed=derive_seed(seed, "bench", "iblt", decoder, kernel, n),
                    )
                )
    for n in intra_sizes:
        intra_common = {"section": "intra_trial", "n": int(n), **common}
        cells.append(
            CellSpec(
                key=f"intra/n={n}/parallel/numpy",
                params={**intra_common, "engine": "parallel", "kernel": "numpy",
                        "workers": None},
                seed=derive_seed(seed, "bench", "intra", "parallel", n),
            )
        )
        for workers in intra_workers:
            cells.append(
                CellSpec(
                    key=f"intra/n={n}/shm-parallel/w{workers}",
                    params={**intra_common, "engine": "shm-parallel", "kernel": None,
                            "workers": int(workers)},
                    seed=derive_seed(seed, "bench", "intra", "shm-parallel", workers, n),
                )
            )
    batched_common = {
        "section": "batched", "n": int(BATCHED_GRAPH_SIZE), "c": BATCHED_DENSITY,
        "r": r, "k": k, "seed": seed, "repeats": repeats,
    }
    for b in batched_batches:
        for mode in ("loop", "batched"):
            for kernel in kernel_names:
                cells.append(
                    CellSpec(
                        key=f"batched/B={b}/{mode}/{kernel}",
                        params={**batched_common, "mode": mode, "kernel": kernel,
                                "batch": int(b)},
                        seed=derive_seed(seed, "bench", "batched", mode, kernel, b),
                    )
                )
    for window_ms in serve_windows_ms:
        cells.append(
            CellSpec(
                key=f"serve/window={window_ms}ms",
                params={
                    "section": "serve", "window_ms": float(window_ms),
                    "requests": int(serve_requests), "num_cells": int(SERVE_NUM_CELLS),
                    "r": iblt_r, "load": load, "max_batch": int(SERVE_MAX_BATCH),
                    "seed": seed, "repeats": repeats,
                },
                seed=derive_seed(seed, "bench", "serve", f"{float(window_ms)}"),
            )
        )
    for n in memory_sizes:
        # The numpy backend only: footprints are layout properties of the
        # state, not of the backend, and one backend keeps the section's
        # compact/wide comparison apples-to-apples everywhere.
        for mode in ("compact", "wide"):
            cells.append(
                CellSpec(
                    key=f"memory/n={n}/{mode}",
                    params={"section": "memory", "mode": mode, "kernel": "numpy",
                            "n": int(n), **common},
                    seed=derive_seed(seed, "bench", "memory", mode, n),
                )
            )
    for n in sizes:
        num_cells = _subtable_cells(n, iblt_r)
        for churn in incremental_churns:
            # The numpy backend only: the incremental re-peel is
            # decoder-independent, so one backend keeps the
            # scratch-vs-incremental ratio apples-to-apples.
            for mode in ("scratch", "incremental"):
                cells.append(
                    CellSpec(
                        key=f"incremental/n={n}/churn={churn:g}/{mode}",
                        params={"section": "incremental", "mode": mode,
                                "kernel": "numpy", "n": int(n),
                                "num_cells": int(num_cells), "r": iblt_r,
                                "load": load, "churn": float(churn),
                                "seed": seed, "repeats": repeats},
                        seed=derive_seed(
                            seed, "bench", "incremental", mode, f"{float(churn)}", n
                        ),
                    )
                )
    return SweepSpec(
        name="bench",
        cells=tuple(cells),
        meta={
            "kernels": list(kernel_names),
            "sizes": [int(n) for n in sizes],
            "intra_sizes": [int(n) for n in intra_sizes],
            "intra_workers": [int(w) for w in intra_workers],
            "batched_batches": [int(b) for b in batched_batches],
            "serve_windows_ms": [float(w) for w in serve_windows_ms],
            "serve_requests": int(serve_requests),
            "memory_sizes": [int(n) for n in memory_sizes],
            "incremental_churns": [float(x) for x in incremental_churns],
        },
    )


def run_benchmarks(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    kernels: Optional[Sequence[str]] = None,
    c: float = 0.7,
    r: int = 4,
    iblt_r: int = 3,
    k: int = 2,
    load: float = 0.7,
    seed: int = 1,
    repeats: int = 3,
    batch: int = 4,
    intra_sizes: Sequence[int] = INTRA_TRIAL_SIZES,
    intra_workers: Sequence[int] = INTRA_TRIAL_WORKERS,
    batched_batches: Sequence[int] = BATCHED_BATCH_SIZES,
    serve_windows_ms: Sequence[float] = SERVE_WINDOWS_MS,
    serve_requests: int = SERVE_REQUESTS,
    memory_sizes: Sequence[int] = MEMORY_SIZES,
    incremental_churns: Sequence[float] = INCREMENTAL_CHURNS,
    artifact: Optional[Union[str, Path]] = None,
    resume: bool = False,
    progress: Optional[Callable[[SweepProgress], None]] = None,
) -> Dict[str, Any]:
    """Run the full benchmark matrix and return the JSON-ready payload.

    Parameters
    ----------
    sizes:
        Vertex / cell counts to benchmark at (each engine × kernel runs at
        every size).
    kernels:
        Kernel-backend names to sweep; ``None`` means every *ready* backend
        (:func:`repro.kernels.ready_kernels` — declared backends whose
        toolchain fails to load are skipped, not fatal).
    c, r, k:
        Hypergraph density, edge size and peeling threshold of the k-core
        workloads.
    iblt_r, load:
        Hashes per key and table load of the IBLT decode workload.
    seed:
        Base RNG seed (workloads are identical across kernels by design).
    repeats:
        Timed runs per combination; the best is reported.
    batch:
        Batch size of the ``peel_many`` section.
    intra_sizes, intra_workers:
        Graph sizes and shm-parallel worker counts of the ``intra_trial``
        section (one large peel, serial numpy baseline vs the shm engine).
    batched_batches:
        Batch sizes of the ``batched`` section (per-graph loop vs fused
        lockstep ``peel_many`` on identical batches of small graphs).
    serve_windows_ms, serve_requests:
        Batch-window settings and concurrent-request count of the
        ``serve`` section (end-to-end decode-service throughput over a
        loopback socket; hardware-bound, so CI gates it informationally).
    memory_sizes:
        Graph sizes of the ``memory`` section (columnar-state footprint,
        compact 32-bit ids vs wide int64; byte figures are deterministic
        but the wall clock is not, so CI gates it informationally).
    incremental_churns:
        Churn ratios of the ``incremental`` section (from-scratch re-decode
        vs incremental checkpoint on identical churn schedules; paired
        single-host ratios are the signal, so CI gates it informationally).
    artifact, resume:
        Optional sweep-artifact path for per-cell checkpointing; with
        ``resume=True`` a compatible artifact's timings are reused and only
        missing cells are re-timed.
    progress:
        Per-cell progress callback (see :class:`repro.sweeps.SweepProgress`).
    """
    spec = bench_spec(
        sizes=sizes, kernels=kernels, c=c, r=r, iblt_r=iblt_r, k=k, load=load,
        seed=seed, repeats=repeats, batch=batch,
        intra_sizes=intra_sizes, intra_workers=intra_workers,
        batched_batches=batched_batches,
        serve_windows_ms=serve_windows_ms, serve_requests=serve_requests,
        memory_sizes=memory_sizes, incremental_churns=incremental_churns,
    )
    # Always serial: parallel timing cells would contend for the same cores.
    results = run_sweep(
        spec, _bench_dispatch_trial, _bench_aggregate,
        out=artifact, resume=resume, progress=progress,
    )
    return {
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "kernels": list(spec.meta["kernels"]),
            "sizes": list(spec.meta["sizes"]),
            "intra_sizes": list(spec.meta["intra_sizes"]),
            "intra_workers": list(spec.meta["intra_workers"]),
            "batched_batches": list(spec.meta["batched_batches"]),
            "serve_windows_ms": list(spec.meta["serve_windows_ms"]),
            "serve_requests": spec.meta["serve_requests"],
            "memory_sizes": list(spec.meta["memory_sizes"]),
            "incremental_churns": list(spec.meta["incremental_churns"]),
            "repeats": repeats,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
        "results": results,
    }


def write_results(payload: Dict[str, Any], path: Path) -> None:
    """Write the benchmark payload as indented JSON to ``path``."""
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")


def format_results(payload: Dict[str, Any]) -> str:
    """Render the benchmark payload as an aligned text table."""
    table = Table(
        columns=("section", "workload", "kernel", "size", "seconds"),
        title=f"kernel benchmarks ({payload['meta']['timestamp']})",
    )
    for record in payload["results"]:
        workload = record.get("engine") or record.get("decoder")
        if record.get("workers") is not None:
            workload = f"{workload}[w={record['workers']}]"
        if record["section"] == "batched":
            workload = f"{workload}[B={record['batch']}]"
        if record["section"] == "serve":
            workload = f"{workload}[win={record['window_ms']:g}ms]"
        if record["section"] == "memory":
            workload = f"{workload}[{record['state_bytes'] / 1e6:.1f}MB]"
        if record["section"] == "incremental":
            workload = f"{workload}[churn={record['churn']:g}]"
        size = record.get("n", record.get("num_cells"))
        table.add_row(
            record["section"],
            workload,
            record["kernel"] or "-",
            size,
            f"{record['seconds']:.4f}",
        )
    return table.render()


def _record_key(record: Dict[str, Any]) -> Tuple[str, str, str, int, Any, Any, Any, Any, Any]:
    """Identity of one benchmark record across runs.

    Includes the seed, batch, worker count, serve batch window and churn
    ratio so runs of *different* workloads (other random graphs, other
    batch sizes, other shm pools, other latency budgets, other churn
    schedules) never silently compare as if they were the same
    measurement.
    """
    return (
        record["section"],
        str(record.get("engine") or record.get("decoder")),
        str(record.get("kernel")),
        int(record.get("n", record.get("num_cells", 0))),
        record.get("seed"),
        record.get("batch"),
        record.get("workers"),
        record.get("window_ms"),
        record.get("churn"),
    )


def _key_str(key: Tuple) -> Tuple[str, ...]:
    return tuple(map(str, key))


def _index_records(payload: Dict[str, Any]) -> Tuple[Dict[Tuple, Dict[str, Any]], List[Tuple]]:
    """Index records by identity; also report keys that collide."""
    by_key: Dict[Tuple, Dict[str, Any]] = {}
    collisions: List[Tuple] = []
    for record in payload["results"]:
        key = _record_key(record)
        if key in by_key:
            collisions.append(key)
        by_key[key] = record
    return by_key, collisions


def compare_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    informational_sections: Sequence[str] = (),
) -> Tuple[str, int]:
    """Diff two benchmark payloads per (section, workload, kernel, size).

    Returns ``(report, num_regressions)`` where a regression is any
    comparable entry whose current time exceeds the baseline by more than
    ``tolerance`` (a fraction: 0.25 means 25% slower).  Entries present in
    only one payload are listed but never counted as regressions.

    Sections named in ``informational_sections`` are compared and reported
    but their regressions never count toward the returned total (they are
    flagged ``regression (info)``).  CI uses this for sections whose
    committed baseline is hardware-bound — e.g. ``intra_trial`` numbers
    recorded on a 1-core host are noise, not signal, on a multi-core
    runner.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    informational = set(informational_sections)
    base_by_key, base_collisions = _index_records(baseline)
    cur_by_key, cur_collisions = _index_records(current)
    table = Table(
        columns=("section", "workload", "kernel", "size", "baseline", "current", "delta", ""),
        title=(
            f"benchmark comparison vs baseline "
            f"({baseline['meta'].get('timestamp', 'unknown')})"
        ),
    )
    regressions = 0
    informational_regressions = 0
    compared = 0
    for key, record in cur_by_key.items():
        base = base_by_key.get(key)
        if base is None:
            continue
        compared += 1
        delta = record["seconds"] / base["seconds"] - 1.0 if base["seconds"] else float("inf")
        section, workload, kernel, size = key[:4]
        flag = ""
        if delta > tolerance:
            if section in informational:
                flag = "regression (info)"
                informational_regressions += 1
            else:
                flag = "REGRESSION"
                regressions += 1
        elif delta < -tolerance:
            flag = "improved"
        if key[6] is not None:
            workload = f"{workload}[w={key[6]}]"
        if section == "batched" and key[5] is not None:
            workload = f"{workload}[B={key[5]}]"
        if section == "serve" and key[7] is not None:
            workload = f"{workload}[win={key[7]:g}ms]"
        if section == "incremental" and key[8] is not None:
            workload = f"{workload}[churn={key[8]:g}]"
        table.add_row(
            section, workload, kernel if kernel != "None" else "-", size,
            f"{base['seconds']:.4f}", f"{record['seconds']:.4f}", f"{delta:+.1%}", flag,
        )
    lines = [table.render()]
    for label, collisions in (("current", cur_collisions), ("baseline", base_collisions)):
        if collisions:
            lines.append(
                f"warning: {len(collisions)} duplicate record identit"
                f"{'ies' if len(collisions) != 1 else 'y'} in the {label} payload "
                f"(only the last of each was compared): "
                + ", ".join("/".join(map(str, key[:4])) for key in collisions)
            )
    # Keys mix ints and Nones (seed/batch), so sort by string form.
    only_current = sorted(set(cur_by_key) - set(base_by_key), key=_key_str)
    only_baseline = sorted(set(base_by_key) - set(cur_by_key), key=_key_str)
    if only_current:
        lines.append(f"not in baseline ({len(only_current)}): "
                     + ", ".join("/".join(map(str, key)) for key in only_current))
    if only_baseline:
        lines.append(f"only in baseline ({len(only_baseline)}): "
                     + ", ".join("/".join(map(str, key)) for key in only_baseline))
    if compared == 0:
        lines.append(
            "no comparable entries between the two payloads "
            "(different sizes/kernels?); nothing gated"
        )
    summary = (
        f"{compared} compared, {regressions} regression(s) past "
        f"{tolerance:.0%} tolerance"
    )
    if informational_regressions:
        summary += (
            f" (+{informational_regressions} informational in "
            + ", ".join(sorted(informational))
            + ", not gated)"
        )
    lines.append(summary)
    return "\n".join(lines), regressions


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Stand-alone entry point (``python benchmarks/bench_kernels.py``)."""
    parser = argparse.ArgumentParser(
        description="Benchmark peeling engines and IBLT decoders across kernel backends."
    )
    add_bench_arguments(parser)
    args = parser.parse_args(argv)
    report, code = run_bench_command(args)
    print(report)
    return code


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the benchmark flags (shared with the ``repro bench`` sub-command)."""
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="problem sizes to benchmark (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="seconds-long smoke run (small sizes, one repeat); used by CI",
    )
    parser.add_argument(
        "--kernel",
        dest="kernels",
        action="append",
        default=None,
        metavar="NAME",
        help="kernel backend to include (repeatable; default: every ready backend)",
    )
    parser.add_argument(
        "--kernels",
        dest="kernels_csv",
        default=None,
        metavar="NAMES",
        help=(
            "comma-separated kernel backends to include, e.g. "
            "'numpy,numba,cffi' (combines with --kernel)"
        ),
    )
    parser.add_argument(
        "--intra-sizes",
        type=int,
        nargs="+",
        default=list(INTRA_TRIAL_SIZES),
        help=(
            "graph sizes of the intra-trial section (serial numpy baseline vs "
            "the shm-parallel engine on one identical peel; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--intra-workers",
        type=int,
        nargs="+",
        default=list(INTRA_TRIAL_WORKERS),
        help="shm-parallel worker counts to benchmark (default: %(default)s)",
    )
    parser.add_argument(
        "--batched-batches",
        type=int,
        nargs="+",
        default=list(BATCHED_BATCH_SIZES),
        help=(
            "batch sizes of the batched section (per-graph loop vs fused "
            f"lockstep peel_many over n={BATCHED_GRAPH_SIZE} graphs at "
            f"c={BATCHED_DENSITY}; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--serve-windows-ms",
        type=float,
        nargs="+",
        default=list(SERVE_WINDOWS_MS),
        help=(
            "batch-window settings of the serve section (end-to-end decode "
            "service throughput; 0 disables time-based coalescing; "
            "default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--serve-requests",
        type=int,
        default=SERVE_REQUESTS,
        help="concurrent requests per serve cell (default: %(default)s)",
    )
    parser.add_argument(
        "--memory-sizes",
        type=int,
        nargs="+",
        default=list(MEMORY_SIZES),
        help=(
            "graph sizes of the memory section (columnar-state footprint, "
            "compact 32-bit ids vs wide int64; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--incremental-churns",
        type=float,
        nargs="+",
        default=list(INCREMENTAL_CHURNS),
        help=(
            "churn ratios of the incremental section (from-scratch re-decode "
            "vs incremental checkpoint on identical churn schedules; "
            "default: %(default)s)"
        ),
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_kernels.json"),
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE.json",
        help=(
            "prior benchmark JSON to diff against; exits non-zero when any "
            "comparable entry regressed past --tolerance"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "slowdown fraction tolerated by --compare before failing "
            "(default: %(default)s, i.e. 25%% slower)"
        ),
    )
    parser.add_argument(
        "--informational-section",
        dest="informational_sections",
        action="append",
        default=None,
        metavar="SECTION",
        help=(
            "bench section whose --compare regressions are reported but "
            "never fail the run (repeatable); use for sections whose "
            "baseline timings are hardware-bound, e.g. intra_trial numbers "
            "committed from a different host"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-cell progress to stderr while benchmarking",
    )


def run_bench_command(args: argparse.Namespace) -> Tuple[str, int]:
    """Execute a parsed benchmark invocation.

    Returns ``(printable report, exit code)``; the exit code is non-zero
    only when ``--compare`` found regressions past the tolerance.
    """
    sizes: Sequence[int] = QUICK_SIZES if args.quick else args.sizes
    intra_sizes: Sequence[int] = QUICK_SIZES if args.quick else args.intra_sizes
    batched_batches: Sequence[int] = (
        QUICK_BATCHED_BATCH_SIZES if args.quick else args.batched_batches
    )
    serve_windows: Sequence[float] = (
        QUICK_SERVE_WINDOWS_MS if args.quick else args.serve_windows_ms
    )
    serve_requests = QUICK_SERVE_REQUESTS if args.quick else args.serve_requests
    memory_sizes: Sequence[int] = QUICK_MEMORY_SIZES if args.quick else args.memory_sizes
    incremental_churns: Sequence[float] = (
        QUICK_INCREMENTAL_CHURNS if args.quick else args.incremental_churns
    )
    repeats = 1 if args.quick else args.repeats
    kernels: Optional[List[str]] = list(args.kernels or [])
    csv = getattr(args, "kernels_csv", None)
    if csv:
        kernels.extend(name.strip() for name in csv.split(",") if name.strip())
    payload = run_benchmarks(
        sizes=sizes,
        kernels=kernels or None,
        seed=args.seed,
        repeats=repeats,
        intra_sizes=intra_sizes,
        intra_workers=args.intra_workers,
        batched_batches=batched_batches,
        serve_windows_ms=serve_windows,
        serve_requests=serve_requests,
        memory_sizes=memory_sizes,
        incremental_churns=incremental_churns,
        progress=print_progress if getattr(args, "progress", False) else None,
    )
    write_results(payload, args.out)
    report = format_results(payload)
    report += f"\n\nwrote {len(payload['results'])} timings to {args.out}"
    code = 0
    if getattr(args, "compare", None) is not None:
        baseline = json.loads(Path(args.compare).read_text())
        comparison, regressions = compare_payloads(
            payload,
            baseline,
            tolerance=args.tolerance,
            informational_sections=getattr(args, "informational_sections", None) or (),
        )
        report += "\n\n" + comparison
        code = 1 if regressions else 0
    return report, code
