"""The r-uniform hypergraph data structure.

A :class:`Hypergraph` stores its edges as an ``(m, r)`` integer array (one row
per edge, one column per endpoint) plus a lazily built CSR incidence index
mapping each vertex to the edges containing it.  All peeling engines operate
on these arrays with vectorized NumPy kernels, which is the idiomatic way to
get C-speed inner loops in pure Python (see the HPC guides: vectorize, avoid
copies, prefer contiguous arrays).

Vertices are integers in ``[0, n)`` and edges are integers in ``[0, m)``.
A vertex may appear in no edge at all (isolated vertices are legal and are
trivially peeled in round 1 whenever ``k >= 1``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = ["Hypergraph"]


class Hypergraph:
    """An immutable r-uniform hypergraph.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are labelled ``0 .. n-1``.
    edges:
        Array-like of shape ``(m, r)``; row ``e`` lists the ``r`` vertices of
        edge ``e``.  Vertices within an edge must be distinct unless
        ``allow_duplicate_vertices=True`` (hashing applications can produce
        duplicate endpoints; the paper's remark after Theorem 1 discusses
        them).
    vertex_partition:
        Optional array of shape ``(n,)`` mapping each vertex to its subtable
        (partition) index, used by the subtable model; ``None`` for
        unpartitioned hypergraphs.
    num_partitions:
        Number of subtables the vertices are partitioned into; must be
        positive when ``vertex_partition`` is given (entries must lie in
        ``[0, num_partitions)``) and is ignored otherwise.
    allow_duplicate_vertices:
        Permit repeated vertices within a single edge.
    validate:
        If True (default), check the edge array for out-of-range or duplicate
        vertices.  Generators that construct edges they already know to be
        valid pass False to skip the O(m·r) check.
    """

    __slots__ = (
        "_n",
        "_edges",
        "_r",
        "_vertex_partition",
        "_num_partitions",
        "_incidence_ptr",
        "_incidence_edges",
        "_degrees",
        "_compact",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Sequence[int]] | np.ndarray,
        *,
        vertex_partition: Optional[np.ndarray] = None,
        num_partitions: int = 0,
        allow_duplicate_vertices: bool = False,
        validate: bool = True,
    ) -> None:
        self._n = check_nonnegative_int(num_vertices, "num_vertices")
        edge_array = np.asarray(edges, dtype=np.int64)
        if edge_array.size == 0 and edge_array.ndim != 2:
            # A bare empty sequence carries no arity information; a (0, r)
            # array does, and keeps the declared uniformity of an empty
            # r-uniform edge set.
            edge_array = edge_array.reshape(0, 0)
        if edge_array.ndim != 2:
            raise ValueError(
                f"edges must be a 2-D array of shape (m, r), got shape {edge_array.shape}"
            )
        if edge_array.shape[1] == 0:
            # Rows with no endpoints carry no information; normalize to the
            # canonical empty edge set (the historical behaviour).
            edge_array = edge_array.reshape(0, 0)
        self._edges = np.ascontiguousarray(edge_array)
        self._r = int(edge_array.shape[1])

        if vertex_partition is not None:
            vp = np.asarray(vertex_partition, dtype=np.int64)
            if vp.shape != (self._n,):
                raise ValueError(
                    f"vertex_partition must have shape ({self._n},), got {vp.shape}"
                )
            self._vertex_partition = np.ascontiguousarray(vp)
            self._num_partitions = check_positive_int(num_partitions, "num_partitions")
            if vp.size and (vp.min() < 0 or vp.max() >= self._num_partitions):
                raise ValueError("vertex_partition entries must lie in [0, num_partitions)")
        else:
            self._vertex_partition = None
            self._num_partitions = 0

        if validate:
            self._validate_edges(allow_duplicate_vertices)

        self._incidence_ptr: Optional[np.ndarray] = None
        self._incidence_edges: Optional[np.ndarray] = None
        self._degrees: Optional[np.ndarray] = None
        self._compact: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _validate_edges(self, allow_duplicate_vertices: bool) -> None:
        edges = self._edges
        if edges.shape[0] == 0:
            return
        if edges.min() < 0 or edges.max() >= self._n:
            raise ValueError(
                "edge endpoints must be vertex indices in "
                f"[0, {self._n}); found values outside this range"
            )
        if not allow_duplicate_vertices and edges.shape[1] > 1:
            sorted_rows = np.sort(edges, axis=1)
            dup = (sorted_rows[:, 1:] == sorted_rows[:, :-1]).any(axis=1)
            if dup.any():
                bad = int(np.flatnonzero(dup)[0])
                raise ValueError(
                    f"edge {bad} contains duplicate vertices {edges[bad].tolist()}; "
                    "pass allow_duplicate_vertices=True to permit this"
                )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return int(self._edges.shape[0])

    @property
    def edge_size(self) -> int:
        """Uniformity ``r`` (0 for an empty edge set with unknown arity)."""
        return self._r

    @property
    def edges(self) -> np.ndarray:
        """The ``(m, r)`` edge array (read-only view)."""
        view = self._edges.view()
        view.setflags(write=False)
        return view

    @property
    def edge_density(self) -> float:
        """Edge density ``c = m / n`` (0.0 for an empty vertex set)."""
        if self._n == 0:
            return 0.0
        return self.num_edges / self._n

    @property
    def is_partitioned(self) -> bool:
        """True when the hypergraph carries a subtable partition."""
        return self._vertex_partition is not None

    @property
    def num_partitions(self) -> int:
        """Number of subtables (0 when unpartitioned)."""
        return self._num_partitions

    @property
    def vertex_partition(self) -> np.ndarray:
        """Per-vertex subtable index; raises if unpartitioned."""
        if self._vertex_partition is None:
            raise ValueError("hypergraph has no subtable partition")
        view = self._vertex_partition.view()
        view.setflags(write=False)
        return view

    # ------------------------------------------------------------------ #
    # incidence structure
    # ------------------------------------------------------------------ #
    def _build_incidence(self) -> None:
        """Build the CSR vertex→edge index with a counting sort (O(n + m·r))."""
        m = self.num_edges
        r = self._r
        flat_vertices = self._edges.reshape(-1)
        counts = np.bincount(flat_vertices, minlength=self._n) if m > 0 else np.zeros(self._n, dtype=np.int64)
        ptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        incidence = np.empty(m * r, dtype=np.int64)
        if m > 0:
            # Stable counting sort of (vertex, edge) pairs by vertex.
            order = np.argsort(flat_vertices, kind="stable")
            incidence[:] = order // r
        self._incidence_ptr = ptr
        self._incidence_edges = incidence
        self._degrees = counts.astype(np.int64)

    @property
    def incidence_ptr(self) -> np.ndarray:
        """CSR row-pointer array of length ``n + 1`` into :attr:`incidence_edges`."""
        if self._incidence_ptr is None:
            self._build_incidence()
        assert self._incidence_ptr is not None
        view = self._incidence_ptr.view()
        view.setflags(write=False)
        return view

    @property
    def incidence_edges(self) -> np.ndarray:
        """Concatenated incident-edge lists, indexed by :attr:`incidence_ptr`."""
        if self._incidence_edges is None:
            self._build_incidence()
        assert self._incidence_edges is not None
        view = self._incidence_edges.view()
        view.setflags(write=False)
        return view

    def degrees(self) -> np.ndarray:
        """Return the degree (number of incident edges) of every vertex.

        A vertex appearing ``t`` times in one edge contributes ``t`` to its
        degree, matching the multiset semantics used by hashing applications.
        """
        if self._degrees is None:
            self._build_incidence()
        assert self._degrees is not None
        return self._degrees.copy()

    def degrees_into(self, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` with the degree vector and return it (no allocation).

        ``out`` must have shape ``(n,)``; any integer dtype wide enough for
        the degree values works (``int32`` suffices whenever
        :attr:`supports_compact_ids` — every degree is at most ``m * r``).
        This is the arena-friendly face of :meth:`degrees`: peel states fill
        a reused buffer instead of allocating a fresh copy per trial.
        """
        if self._degrees is None:
            self._build_incidence()
        assert self._degrees is not None
        if out.shape != self._degrees.shape:
            raise ValueError(
                f"out must have shape {self._degrees.shape}, got {out.shape}"
            )
        np.copyto(out, self._degrees, casting="unsafe")
        return out

    def degree(self, vertex: int) -> int:
        """Degree of a single vertex."""
        if not (0 <= vertex < self._n):
            raise IndexError(f"vertex {vertex} out of range [0, {self._n})")
        return int(self.degrees_view[vertex])

    @property
    def degrees_view(self) -> np.ndarray:
        """Read-only degree array (no copy)."""
        if self._degrees is None:
            self._build_incidence()
        assert self._degrees is not None
        view = self._degrees.view()
        view.setflags(write=False)
        return view

    # ------------------------------------------------------------------ #
    # compact-id (32-bit) cache
    # ------------------------------------------------------------------ #
    @property
    def supports_compact_ids(self) -> bool:
        """True when every id/offset/degree fits the 32-bit compact layout.

        Vertex ids must fit ``uint32`` and — because peel rounds and degree
        counters stay *signed* 32-bit (``UNPEELED`` is ``-1``) — the CSR
        offsets ``m * r`` must fit ``int32``.  Every workload under
        ``n, m·r < 2^31`` qualifies, i.e. everything short of the sharded
        ≥ 1e8-scale regime.
        """
        limit = np.iinfo(np.int32).max
        return self._n < limit and self.num_edges * max(self._r, 1) < limit

    def _build_compact(self) -> tuple:
        """Build (once) and cache the 32-bit copies of the columnar arrays.

        The cache is what makes compact ids cheap across trials: sweeps that
        re-peel the same hypergraph share one ``uint32`` edge array and CSR
        index instead of re-narrowing ``int64`` arrays per trial.

        When the wide CSR is already cached it is narrowed in place-free
        copies; otherwise the compact CSR is built *directly* (same counting
        sort, 32-bit outputs) so a compact-only workload never materializes
        — and never retains — the int64 incidence arrays at all.  Both paths
        produce bit-identical values.  The wide ``_degrees`` cache (n int64,
        small next to the ``m·r`` incidence) is populated either way so
        :meth:`degrees` / :meth:`degrees_into` stay allocation-free later.
        """
        if self._compact is not None:
            return self._compact
        if not self.supports_compact_ids:
            raise ValueError(
                f"hypergraph (n={self._n}, m={self.num_edges}, r={self._r}) "
                "exceeds the 32-bit compact-id range; use wide (int64) ids"
            )
        edges32 = np.ascontiguousarray(self._edges, dtype=np.uint32)
        if self._incidence_ptr is not None:
            assert self._incidence_edges is not None
            assert self._degrees is not None
            self._compact = (
                edges32,
                np.ascontiguousarray(self._incidence_ptr, dtype=np.int32),
                np.ascontiguousarray(self._incidence_edges, dtype=np.uint32),
                np.ascontiguousarray(self._degrees, dtype=np.int32),
            )
            return self._compact
        m = self.num_edges
        r = self._r
        flat_vertices = self._edges.reshape(-1)
        counts = np.bincount(flat_vertices, minlength=self._n) if m > 0 else np.zeros(self._n, dtype=np.int64)
        ptr = np.zeros(self._n + 1, dtype=np.int32)
        np.cumsum(counts, out=ptr[1:])
        incidence = np.empty(m * r, dtype=np.uint32)
        if m > 0:
            order = np.argsort(flat_vertices, kind="stable")
            incidence[:] = order // r
        if self._degrees is None:
            self._degrees = counts
        self._compact = (edges32, ptr, incidence, counts.astype(np.int32))
        return self._compact

    def _compact_view(self, index: int) -> np.ndarray:
        view = self._build_compact()[index].view()
        view.setflags(write=False)
        return view

    @property
    def compact_edges(self) -> np.ndarray:
        """The ``(m, r)`` edge array as ``uint32`` (read-only, cached)."""
        return self._compact_view(0)

    @property
    def compact_incidence_ptr(self) -> np.ndarray:
        """CSR row-pointer array as ``int32`` (read-only, cached)."""
        return self._compact_view(1)

    @property
    def compact_incidence_edges(self) -> np.ndarray:
        """Concatenated incident-edge lists as ``uint32`` (read-only, cached)."""
        return self._compact_view(2)

    @property
    def compact_degrees_view(self) -> np.ndarray:
        """Read-only ``int32`` degree array (no copy)."""
        return self._compact_view(3)

    def incident_edges(self, vertex: int) -> np.ndarray:
        """Edges incident to ``vertex`` (a copy; safe to mutate)."""
        if not (0 <= vertex < self._n):
            raise IndexError(f"vertex {vertex} out of range [0, {self._n})")
        ptr = self.incidence_ptr
        return self.incidence_edges[ptr[vertex]: ptr[vertex + 1]].copy()

    def edge_vertices(self, edge: int) -> np.ndarray:
        """Vertices of edge ``edge`` (a copy)."""
        if not (0 <= edge < self.num_edges):
            raise IndexError(f"edge {edge} out of range [0, {self.num_edges})")
        return self._edges[edge].copy()

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph_of_edges(self, edge_mask: np.ndarray) -> "Hypergraph":
        """Return the hypergraph induced by the edges where ``edge_mask`` is True.

        The vertex set (and labelling) is preserved; only edges are dropped.
        """
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.num_edges,):
            raise ValueError(
                f"edge_mask must have shape ({self.num_edges},), got {mask.shape}"
            )
        return Hypergraph(
            self._n,
            self._edges[mask],
            vertex_partition=self._vertex_partition,
            num_partitions=self._num_partitions if self.is_partitioned else 0,
            allow_duplicate_vertices=True,
            validate=False,
        )

    def to_networkx(self):
        """Return a bipartite ``networkx.Graph`` (vertices vs. edge nodes).

        Vertex ``v`` becomes node ``("v", v)`` and edge ``e`` becomes node
        ``("e", e)``.  Handy for visual inspection and for cross-checking the
        peeling engines against an independent graph library in tests.
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(("v", int(v)) for v in range(self._n))
        graph.add_nodes_from(("e", int(e)) for e in range(self.num_edges))
        for e in range(self.num_edges):
            for v in self._edges[e]:
                graph.add_edge(("e", int(e)), ("v", int(v)))
        return graph

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        part = f", partitions={self._num_partitions}" if self.is_partitioned else ""
        return (
            f"Hypergraph(n={self._n}, m={self.num_edges}, r={self._r}{part})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._edges.shape == other._edges.shape
            and bool(np.array_equal(self._edges, other._edges))
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self._n, self.num_edges, self._r))
