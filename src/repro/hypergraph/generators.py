"""Random hypergraph generators used by the paper.

Three models appear in the paper:

* ``G^r_{n,cn}`` (Section 2): exactly ``round(c*n)`` edges, each consisting of
  ``r`` distinct vertices chosen uniformly at random — implemented by
  :func:`random_hypergraph`.
* ``G^r_c`` (Section 3.2.1): every possible edge appears independently with
  probability ``q = cn / C(n, r)`` — implemented by
  :func:`binomial_hypergraph`.  For the sparse densities of interest the edge
  count is Binomial(C(n,r), q) ≈ Poisson(cn); we sample the count exactly and
  then draw that many uniform edges without replacement of the *slot*, which
  matches the model up to the (vanishing) probability of a repeated edge.
* the subtable model (Appendix B): vertices are split into ``r`` equal
  subtables and each edge takes exactly one uniform vertex from each subtable
  — implemented by :func:`partitioned_hypergraph`.  This is exactly the
  hypergraph an IBLT with ``r`` subtables defines.
"""

from __future__ import annotations

from math import comb
from typing import Optional, Sequence

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.rng import SeedLike, resolve_rng
from repro.utils.validation import (
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
)

__all__ = [
    "random_hypergraph",
    "binomial_hypergraph",
    "partitioned_hypergraph",
    "hypergraph_from_edges",
    "edge_density",
]


def edge_density(num_vertices: int, num_edges: int) -> float:
    """Edge density ``c = m / n`` of a hypergraph with the given counts."""
    n = check_positive_int(num_vertices, "num_vertices")
    m = check_nonnegative_int(num_edges, "num_edges")
    return m / n


def _sample_distinct_rows(
    rng: np.random.Generator, num_vertices: int, num_edges: int, r: int
) -> np.ndarray:
    """Sample an ``(m, r)`` array of edges with distinct vertices per row.

    Strategy: draw all rows at once with replacement, then resample only the
    rows that contain a duplicate.  For ``r << n`` the expected number of
    resampling passes is O(1), so the generator runs at NumPy speed.
    """
    if num_edges == 0:
        return np.empty((0, r), dtype=np.int64)
    if r > num_vertices:
        raise ValueError(
            f"cannot draw {r} distinct vertices from a set of {num_vertices}"
        )
    edges = rng.integers(0, num_vertices, size=(num_edges, r), dtype=np.int64)
    if r == 1:
        return edges
    for _ in range(64):
        sorted_rows = np.sort(edges, axis=1)
        bad = (sorted_rows[:, 1:] == sorted_rows[:, :-1]).any(axis=1)
        num_bad = int(bad.sum())
        if num_bad == 0:
            return edges
        edges[bad] = rng.integers(0, num_vertices, size=(num_bad, r), dtype=np.int64)
    # Extremely unlikely fallback (e.g. r close to n): per-row choice without
    # replacement, still vectorized over the few remaining bad rows.
    sorted_rows = np.sort(edges, axis=1)
    bad = (sorted_rows[:, 1:] == sorted_rows[:, :-1]).any(axis=1)
    for idx in np.flatnonzero(bad):
        edges[idx] = rng.choice(num_vertices, size=r, replace=False)
    return edges


def random_hypergraph(
    num_vertices: int,
    edge_density: float,
    edge_size: int,
    *,
    num_edges: Optional[int] = None,
    seed: SeedLike = None,
) -> Hypergraph:
    """Sample from the ``G^r_{n,cn}`` model of Section 2.

    Parameters
    ----------
    num_vertices:
        ``n``, the number of vertices.
    edge_density:
        ``c``; the graph has ``round(c * n)`` edges unless ``num_edges``
        overrides the count.
    edge_size:
        ``r``, vertices per edge (``r >= 2``).
    num_edges:
        Explicit edge count ``m`` (overrides ``edge_density`` if given).
    seed:
        Anything accepted by :func:`repro.utils.rng.resolve_rng`.

    Returns
    -------
    Hypergraph
        A hypergraph with ``n`` vertices and ``m`` edges, each edge consisting
        of ``r`` distinct uniformly random vertices.
    """
    n = check_positive_int(num_vertices, "num_vertices")
    r = check_positive_int(edge_size, "edge_size")
    if r < 2:
        raise ValueError(f"edge_size must be >= 2, got {r}")
    if num_edges is None:
        c = check_positive_float(edge_density, "edge_density")
        m = int(round(c * n))
    else:
        m = check_nonnegative_int(num_edges, "num_edges")
    rng = resolve_rng(seed)
    edges = _sample_distinct_rows(rng, n, m, r)
    return Hypergraph(n, edges, validate=False)


def binomial_hypergraph(
    num_vertices: int,
    edge_density: float,
    edge_size: int,
    *,
    seed: SeedLike = None,
) -> Hypergraph:
    """Sample from the ``G^r_c`` model of Section 3.2.1.

    Every one of the :math:`\\binom{n}{r}` possible edges appears
    independently with probability :math:`q = cn / \\binom{n}{r}`.  We sample
    the edge count ``M ~ Binomial(C(n,r), q)`` exactly (falling back to a
    Poisson approximation only when ``C(n, r)`` overflows the int64 binomial
    sampler) and then draw ``M`` uniform r-subsets.
    """
    n = check_positive_int(num_vertices, "num_vertices")
    r = check_positive_int(edge_size, "edge_size")
    if r < 2:
        raise ValueError(f"edge_size must be >= 2, got {r}")
    c = check_positive_float(edge_density, "edge_density")
    rng = resolve_rng(seed)
    total_slots = comb(n, r)
    if total_slots == 0:
        return Hypergraph(n, np.empty((0, r), dtype=np.int64), validate=False)
    q = min(1.0, c * n / total_slots)
    if total_slots <= 2**62:
        m = int(rng.binomial(total_slots, q))
    else:  # pragma: no cover - requires astronomically large n
        m = int(rng.poisson(c * n))
    edges = _sample_distinct_rows(rng, n, m, r)
    return Hypergraph(n, edges, validate=False)


def partitioned_hypergraph(
    num_vertices: int,
    edge_density: float,
    edge_size: int,
    *,
    num_edges: Optional[int] = None,
    seed: SeedLike = None,
) -> Hypergraph:
    """Sample from the subtable model of Appendix B.

    The ``n`` vertices are split into ``r`` consecutive blocks ("subtables")
    of size ``n // r`` (``n`` must be divisible by ``r``), and each of the
    ``round(c*n)`` edges contains exactly one uniformly random vertex from
    each block.  This is the hypergraph defined by an IBLT that hashes each
    item once into each of ``r`` subtables.

    Returns
    -------
    Hypergraph
        A partitioned hypergraph whose ``vertex_partition`` maps vertex ``v``
        to ``v // (n // r)`` and whose edge column ``j`` always lies in
        subtable ``j``.
    """
    n = check_positive_int(num_vertices, "num_vertices")
    r = check_positive_int(edge_size, "edge_size")
    if r < 2:
        raise ValueError(f"edge_size must be >= 2, got {r}")
    if n % r != 0:
        raise ValueError(
            f"num_vertices ({n}) must be divisible by edge_size ({r}) "
            "for the subtable model"
        )
    if num_edges is None:
        c = check_positive_float(edge_density, "edge_density")
        m = int(round(c * n))
    else:
        m = check_nonnegative_int(num_edges, "num_edges")
    rng = resolve_rng(seed)
    block = n // r
    # Column j holds a uniform vertex from [j*block, (j+1)*block).
    offsets = np.arange(r, dtype=np.int64) * block
    edges = rng.integers(0, block, size=(m, r), dtype=np.int64) + offsets[None, :]
    vertex_partition = np.repeat(np.arange(r, dtype=np.int64), block)
    return Hypergraph(
        n,
        edges,
        vertex_partition=vertex_partition,
        num_partitions=r,
        validate=False,
    )


def hypergraph_from_edges(
    num_vertices: int,
    edges: Sequence[Sequence[int]] | np.ndarray,
    *,
    allow_duplicate_vertices: bool = False,
) -> Hypergraph:
    """Build a hypergraph from an explicit edge list (validated)."""
    return Hypergraph(
        num_vertices,
        np.asarray(edges, dtype=np.int64),
        allow_duplicate_vertices=allow_duplicate_vertices,
        validate=True,
    )
