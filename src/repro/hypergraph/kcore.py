"""k-core computation and verification utilities.

The k-core of a hypergraph is the maximal sub-hypergraph in which every
vertex has degree at least ``k``; it is the residue left by the peeling
process and is independent of peeling order.  The functions here compute the
core with a fast vectorized fixed-point iteration and also provide a slow,
obviously-correct reference implementation used by the test suite to validate
both this module and the peeling engines in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import check_positive_int

__all__ = [
    "KCoreResult",
    "kcore",
    "kcore_mask",
    "kcore_size",
    "has_empty_kcore",
    "verify_kcore",
    "reference_kcore_mask",
]


@dataclass(frozen=True)
class KCoreResult:
    """Result of a k-core computation.

    Attributes
    ----------
    vertex_mask:
        Boolean array of shape ``(n,)``; True for vertices in the k-core.
    edge_mask:
        Boolean array of shape ``(m,)``; True for edges all of whose endpoints
        are in the k-core (equivalently, edges never peeled).
    k:
        The degree threshold used.
    """

    vertex_mask: np.ndarray
    edge_mask: np.ndarray
    k: int

    @property
    def num_core_vertices(self) -> int:
        """Number of vertices in the k-core."""
        return int(self.vertex_mask.sum())

    @property
    def num_core_edges(self) -> int:
        """Number of edges in the k-core."""
        return int(self.edge_mask.sum())

    @property
    def is_empty(self) -> bool:
        """True when the k-core contains no edges.

        Following the paper (and every application: IBLTs, XORSAT, cuckoo
        hashing), "empty core" means the peeling process removed every edge.
        Isolated vertices of degree 0 are never part of a k-core for k >= 1.
        """
        return self.num_core_edges == 0


def kcore(graph: Hypergraph, k: int) -> KCoreResult:
    """Compute the k-core of ``graph``.

    Uses a round-synchronous fixed point: repeatedly drop every vertex of
    degree ``< k`` (and its incident edges) until no vertex qualifies.  The
    residue is the k-core regardless of removal order.

    Parameters
    ----------
    graph:
        The hypergraph.
    k:
        Degree threshold (``k >= 1``).

    Returns
    -------
    KCoreResult
    """
    k = check_positive_int(k, "k")
    n = graph.num_vertices
    m = graph.num_edges
    edges = graph.edges
    edge_alive = np.ones(m, dtype=bool)
    vertex_alive = np.ones(n, dtype=bool)
    degrees = graph.degrees()

    while True:
        removable = vertex_alive & (degrees < k)
        if not removable.any():
            break
        vertex_alive &= ~removable
        if m == 0:
            break
        # An edge dies when any of its endpoints has been removed.
        edge_has_removed_vertex = removable[edges].any(axis=1) & edge_alive
        if not edge_has_removed_vertex.any():
            continue
        dying = np.flatnonzero(edge_has_removed_vertex)
        edge_alive[dying] = False
        # Subtract each dying edge's contribution from its endpoints' degrees.
        np.subtract.at(degrees, edges[dying].reshape(-1), 1)

    return KCoreResult(vertex_mask=vertex_alive & (degrees >= k), edge_mask=edge_alive, k=k)


def kcore_mask(graph: Hypergraph, k: int) -> np.ndarray:
    """Boolean vertex mask of the k-core (convenience wrapper)."""
    return kcore(graph, k).vertex_mask


def kcore_size(graph: Hypergraph, k: int) -> Tuple[int, int]:
    """Return ``(num_core_vertices, num_core_edges)``."""
    result = kcore(graph, k)
    return result.num_core_vertices, result.num_core_edges


def has_empty_kcore(graph: Hypergraph, k: int) -> bool:
    """True when the k-core of ``graph`` contains no edges."""
    return kcore(graph, k).is_empty


def verify_kcore(graph: Hypergraph, k: int, result: KCoreResult) -> bool:
    """Check that ``result`` is a valid k-core of ``graph``.

    Verifies three properties:

    1. every surviving edge has all endpoints surviving;
    2. every surviving vertex has degree >= k within the surviving edges;
    3. maximality — re-running the removal process on the complement does not
       allow any removed vertex back (equivalently, the greedy process from
       scratch yields the same edge set).
    """
    k = check_positive_int(k, "k")
    edges = graph.edges
    vertex_mask = np.asarray(result.vertex_mask, dtype=bool)
    edge_mask = np.asarray(result.edge_mask, dtype=bool)
    if vertex_mask.shape != (graph.num_vertices,) or edge_mask.shape != (graph.num_edges,):
        return False
    if graph.num_edges:
        endpoints_alive = vertex_mask[edges].all(axis=1)
        if not np.array_equal(edge_mask, edge_mask & endpoints_alive):
            return False
        surviving_degrees = np.bincount(
            edges[edge_mask].reshape(-1), minlength=graph.num_vertices
        )
        if (surviving_degrees[vertex_mask] < k).any():
            return False
    elif vertex_mask.any():
        # No edges: no vertex can have degree >= k >= 1.
        return False
    # Maximality: independent recomputation must give the same edge set.
    reference = kcore(graph, k)
    return bool(np.array_equal(reference.edge_mask, edge_mask))


def reference_kcore_mask(graph: Hypergraph, k: int) -> np.ndarray:
    """Slow, obviously correct k-core (vertex mask) for cross-validation.

    Peels one vertex at a time with plain Python loops.  Used only in tests
    and for small graphs.
    """
    k = check_positive_int(k, "k")
    n = graph.num_vertices
    edges = [list(map(int, row)) for row in graph.edges]
    alive_edges = set(range(len(edges)))
    incident: list[set[int]] = [set() for _ in range(n)]
    for e, verts in enumerate(edges):
        for v in verts:
            incident[v].add(e)
    degrees = [len(incident[v]) if False else sum(1 for e in incident[v]) for v in range(n)]
    # degree counts multiplicity: recompute properly counting duplicates
    degrees = [0] * n
    for e, verts in enumerate(edges):
        for v in verts:
            degrees[v] += 1
    alive_vertices = [True] * n
    changed = True
    while changed:
        changed = False
        for v in range(n):
            if alive_vertices[v] and degrees[v] < k:
                alive_vertices[v] = False
                changed = True
                for e in list(incident[v]):
                    if e in alive_edges:
                        alive_edges.remove(e)
                        for u in edges[e]:
                            degrees[u] -= 1
                            incident[u].discard(e)
    mask = np.array(alive_vertices, dtype=bool)
    # A vertex only belongs to the core if it still has degree >= k.
    for v in range(n):
        if mask[v] and degrees[v] < k:
            mask[v] = False
    return mask
