"""Random r-uniform hypergraph substrate.

This subpackage provides the hypergraph data structure and the random models
used throughout the paper:

* :class:`~repro.hypergraph.hypergraph.Hypergraph` — an immutable r-uniform
  hypergraph backed by NumPy arrays with a CSR vertex→edge incidence index.
* :func:`~repro.hypergraph.generators.random_hypergraph` — the
  :math:`G^r_{n,cn}` model (exactly ``cn`` edges, each of ``r`` distinct
  vertices chosen uniformly at random).
* :func:`~repro.hypergraph.generators.binomial_hypergraph` — the
  :math:`G^r_c` model of Section 3.2.1 (each edge present independently with
  probability :math:`q = cn/\\binom{n}{r}`).
* :func:`~repro.hypergraph.generators.partitioned_hypergraph` — the subtable
  model of Appendix B (vertices split into ``r`` equal parts, one vertex per
  part per edge).
* k-core utilities in :mod:`~repro.hypergraph.kcore`.
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.generators import (
    random_hypergraph,
    binomial_hypergraph,
    partitioned_hypergraph,
    hypergraph_from_edges,
    edge_density,
)
from repro.hypergraph.kcore import (
    kcore,
    kcore_mask,
    kcore_size,
    has_empty_kcore,
    verify_kcore,
    reference_kcore_mask,
)

__all__ = [
    "Hypergraph",
    "random_hypergraph",
    "binomial_hypergraph",
    "partitioned_hypergraph",
    "hypergraph_from_edges",
    "edge_density",
    "kcore",
    "kcore_mask",
    "kcore_size",
    "has_empty_kcore",
    "verify_kcore",
    "reference_kcore_mask",
]
