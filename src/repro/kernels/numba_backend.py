"""Optional Numba kernel backend: JIT-compiled scatter and worklist loops.

Importing this module requires Numba; :mod:`repro.kernels` performs the
import inside a ``try`` and only registers the ``"numba"`` backend when it
succeeds, so the dependency stays optional.  The backend inherits the NumPy
reference implementation and overrides the primitives that dominate the
profile — the ``np.ufunc.at`` scatters (notoriously slow, being a generic
fancy-indexing path), dying-edge detection, and the sequential worklist loop
(pure-Python bytecode in the reference backend).

Every override must stay bit-exact with :class:`NumpyKernel`; the parity
suite runs against all registered kernels, so a machine with Numba installed
exercises this backend automatically.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numba import njit

from repro.kernels.numpy_backend import NumpyKernel
from repro.kernels.state import PeelState

__all__ = ["NumbaKernel"]


@njit(cache=True)
def _scatter_sub_scalar(target, indices, amount):  # pragma: no cover - needs numba
    for i in range(indices.shape[0]):
        target[indices[i]] -= amount


@njit(cache=True)
def _scatter_sub_vector(target, indices, values):  # pragma: no cover - needs numba
    for i in range(indices.shape[0]):
        target[indices[i]] -= values[i]


@njit(cache=True)
def _scatter_xor_vector(target, indices, values):  # pragma: no cover - needs numba
    for i in range(indices.shape[0]):
        target[indices[i]] ^= values[i]


@njit(cache=True)
def _find_dying_edges(edges, edge_alive, removable_mask):  # pragma: no cover - needs numba
    m, r = edges.shape
    out = np.empty(m, dtype=np.int64)
    count = 0
    for e in range(m):
        if not edge_alive[e]:
            continue
        for j in range(r):
            if removable_mask[edges[e, j]]:
                out[count] = e
                count += 1
                break
    return out[:count]


@njit(cache=True)
def _sequential_peel(  # pragma: no cover - needs numba
    edges,
    incidence_ptr,
    incidence_edges,
    degrees,
    k,
    vertex_alive,
    edge_alive,
    vertex_peel_round,
    edge_peel_round,
):
    n = degrees.shape[0]
    m = edges.shape[0]
    r = edges.shape[1] if m > 0 else 0
    # The worklist holds at most the initial below-threshold vertices plus
    # one push per endpoint of every edge, so n + m*r bounds it.
    stack = np.empty(n + m * r + 1, dtype=np.int64)
    top = 0
    for v in range(n):
        if degrees[v] < k:
            stack[top] = v
            top += 1
    peel_order = np.empty(m, dtype=np.int64)
    peeled = 0
    work = 0
    step = 0
    while top > 0:
        top -= 1
        v = stack[top]
        work += 1
        if not vertex_alive[v] or degrees[v] >= k:
            continue
        step += 1
        vertex_alive[v] = False
        vertex_peel_round[v] = step
        for idx in range(incidence_ptr[v], incidence_ptr[v + 1]):
            e = incidence_edges[idx]
            if not edge_alive[e]:
                continue
            edge_alive[e] = False
            edge_peel_round[e] = step
            peel_order[peeled] = e
            peeled += 1
            for j in range(r):
                u = edges[e, j]
                degrees[u] -= 1
                if vertex_alive[u] and degrees[u] < k:
                    stack[top] = u
                    top += 1
    return peel_order[:peeled], work, step


class NumbaKernel(NumpyKernel):
    """JIT-compiled kernel backend (bit-exact with :class:`NumpyKernel`)."""

    name = "numba"

    def find_dying_edges(
        self, state: PeelState, removable_mask: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - needs numba
        if state.num_edges == 0:
            return np.empty(0, dtype=np.int64)
        return _find_dying_edges(state.edges, state.edge_alive, removable_mask)

    def scatter_degree_updates(
        self, degrees: np.ndarray, endpoints: np.ndarray, amount: int = 1
    ) -> None:  # pragma: no cover - needs numba
        _scatter_sub_scalar(degrees, np.ascontiguousarray(endpoints), amount)

    def scatter_sub(
        self, target: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> None:  # pragma: no cover - needs numba
        _scatter_sub_vector(target, np.ascontiguousarray(indices), np.ascontiguousarray(values))

    def scatter_xor(
        self, target: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> None:  # pragma: no cover - needs numba
        _scatter_xor_vector(target, np.ascontiguousarray(indices), np.ascontiguousarray(values))

    def sequential_peel(
        self,
        state: PeelState,
        k: int,
        incidence_ptr: np.ndarray,
        incidence_edges: np.ndarray,
    ) -> Tuple[np.ndarray, int, int]:  # pragma: no cover - needs numba
        peel_order, work, step = _sequential_peel(
            state.edges,
            incidence_ptr,
            incidence_edges,
            state.degrees,
            k,
            state.vertex_alive,
            state.edge_alive,
            state.vertex_peel_round,
            state.edge_peel_round,
        )
        state.vertices_remaining = int(state.vertex_alive.sum())
        state.edges_remaining = int(state.edge_alive.sum())
        return peel_order, work, step
