"""Numba kernel backend: JIT-compiled, ``prange``-parallel fused peel rounds.

Importing this module requires Numba; :mod:`repro.kernels` declares the
``"numba"`` backend *lazily* and only imports this module on the first
``get_kernel("numba")`` call, so the dependency stays optional and a broken
install surfaces as a clear :class:`~repro.kernels.registry.KernelUnavailableError`
instead of poisoning package import.

The backend inherits the NumPy reference implementation and overrides the
paths that dominate the profile:

* :meth:`NumbaKernel.fused_subround` — **one compiled pass per subround**:
  removable-vertex selection, vertex kills, dying-edge detection through the
  CSR incidence index, edge kills and the degree scatter all happen inside a
  single ``@njit(parallel=True)`` function.  Selection and compaction use a
  chunked two-pass (count → prefix → fill) so the output order is the stable
  ascending order the NumPy path produces regardless of thread count; dense
  degree scatters go through per-thread delta buffers merged in a
  deterministic reduction (subtraction is commutative, so the accounting is
  bit-identical to the reference backend's ordering-insensitive semantics),
  and sparse ones fall back to a serial compiled loop exactly like the
  reference backend's own bincount-vs-``subtract.at`` gate.
* :meth:`NumbaKernel.fused_remove_hyperedges` — the IBLT removal scatter
  (count deltas + key/checksum XOR payloads) as one compiled pass over the
  cell matrix instead of six ``np.ufunc.at`` launches.
* the individual scatter / dying-edge / sequential-worklist primitives, for
  engines that drive the kernel primitive-by-primitive (the batched lockstep
  engine, the subtable schedule, the IBLT decoders).

Every override must stay bit-exact with :class:`NumpyKernel`; the parity
suite runs against all registered kernels, so a machine with Numba installed
exercises this backend automatically.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from numba import get_num_threads, njit, prange

from repro.kernels.base import EdgeEffect
from repro.kernels.numpy_backend import NumpyKernel
from repro.kernels.rounds import SubroundOutcome
from repro.kernels.state import PeelState

__all__ = ["NumbaKernel"]

_EMPTY = np.empty(0, dtype=np.int64)


@njit(cache=True)
def _scatter(target, indices, values, use_xor):
    """Unbuffered ``target[indices] op= values`` (op: subtract or XOR).

    One helper for both scatter flavours — the loop body is identical up to
    the operator, and Numba specializes per dtype anyway.
    """
    if use_xor:
        for i in range(indices.shape[0]):
            target[indices[i]] ^= values[i]
    else:
        for i in range(indices.shape[0]):
            target[indices[i]] -= values[i]


@njit(cache=True)
def _scatter_sub_scalar(target, indices, amount):
    for i in range(indices.shape[0]):
        target[indices[i]] -= amount


@njit(cache=True)
def _remove_hyperedges_xor(cells, counts, deltas, key_sum, keys, check_sum, checks):
    """Fused IBLT removal: count deltas + both XOR payloads, one pass.

    Row ``i`` of ``cells`` lists the endpoints of key ``i``; every endpoint
    gets the count delta and the key/checksum XOR.  Subtraction and XOR are
    commutative and associative, so visiting row-major here instead of the
    reference path's column-major order leaves the final cell arrays
    bit-identical.
    """
    b, r = cells.shape
    for i in range(b):
        delta = deltas[i]
        key = keys[i]
        check = checks[i]
        for j in range(r):
            c = cells[i, j]
            counts[c] -= delta
            key_sum[c] ^= key
            check_sum[c] ^= check


@njit(cache=True)
def _find_dying_edges(edges, edge_alive, removable_mask):
    m, r = edges.shape
    out = np.empty(m, dtype=np.int64)
    count = 0
    for e in range(m):
        if not edge_alive[e]:
            continue
        for j in range(r):
            if removable_mask[edges[e, j]]:
                out[count] = e
                count += 1
                break
    return out[:count]


@njit(cache=True, parallel=True)
def _fused_subround(
    edges,
    incidence_ptr,
    incidence_edges,
    degrees,
    vertex_alive,
    edge_alive,
    vertex_peel_round,
    edge_peel_round,
    candidates,
    use_candidates,
    n,
    m,
    k,
    round_index,
):
    """One fused find/kill/scatter subround (see module docstring).

    Mutates the state arrays in place and returns
    ``(removable, dying, examined)`` where ``examined`` counts live
    candidate inspections (meaningful only when ``use_candidates``; the
    full-scan work term is the caller's incremental live count).  Both
    returned index arrays are in the exact order the NumPy reference path
    produces: ascending for the full scan, stable candidate order
    otherwise, ascending for dying edges.
    """
    nthreads = get_num_threads()

    # ---- phase 1: removable selection (chunked two-pass, stable order) ----
    total = candidates.shape[0] if use_candidates else n
    nchunks = nthreads if nthreads < total else total
    if nchunks < 1:
        nchunks = 1
    chunk = (total + nchunks - 1) // nchunks
    counts = np.zeros(nchunks + 1, dtype=np.int64)
    examined_per_chunk = np.zeros(nchunks, dtype=np.int64)
    for ci in prange(nchunks):
        lo = ci * chunk
        hi = min(lo + chunk, total)
        found = 0
        examined = 0
        for i in range(lo, hi):
            v = candidates[i] if use_candidates else i
            if vertex_alive[v]:
                examined += 1
                if degrees[v] < k:
                    found += 1
        counts[ci + 1] = found
        examined_per_chunk[ci] = examined
    for ci in range(nchunks):
        counts[ci + 1] += counts[ci]
    num_removable = counts[nchunks]
    examined_total = 0
    for ci in range(nchunks):
        examined_total += examined_per_chunk[ci]
    removable = np.empty(num_removable, dtype=np.int64)
    if num_removable == 0:
        return removable, np.empty(0, dtype=np.int64), examined_total
    for ci in prange(nchunks):
        lo = ci * chunk
        hi = min(lo + chunk, total)
        pos = counts[ci]
        for i in range(lo, hi):
            v = candidates[i] if use_candidates else i
            if vertex_alive[v] and degrees[v] < k:
                removable[pos] = v
                pos += 1

    # ---- phase 2: kill vertices (disjoint indices, race-free) ----
    for i in prange(num_removable):
        v = removable[i]
        vertex_alive[v] = False
        vertex_peel_round[v] = round_index

    # ---- phase 3: dying edges via the CSR incidence ----
    # Only the removed vertices' incident edges can die, so marking costs
    # work proportional to the removals; writes into the mark array are
    # idempotent (always 1), so concurrent marking is safe.  Compaction is
    # the same chunked two-pass, yielding the ascending edge order the
    # reference backend's flatnonzero produces.
    dying_mark = np.zeros(m, dtype=np.uint8)
    for i in prange(num_removable):
        v = removable[i]
        for idx in range(incidence_ptr[v], incidence_ptr[v + 1]):
            e = incidence_edges[idx]
            if edge_alive[e]:
                dying_mark[e] = 1
    echunks = nthreads if nthreads < m else m
    if echunks < 1:
        echunks = 1
    esize = (m + echunks - 1) // echunks
    ecounts = np.zeros(echunks + 1, dtype=np.int64)
    for ci in prange(echunks):
        lo = ci * esize
        hi = min(lo + esize, m)
        found = 0
        for e in range(lo, hi):
            if dying_mark[e]:
                found += 1
        ecounts[ci + 1] = found
    for ci in range(echunks):
        ecounts[ci + 1] += ecounts[ci]
    num_dying = ecounts[echunks]
    dying = np.empty(num_dying, dtype=np.int64)
    if num_dying == 0:
        return removable, dying, examined_total
    for ci in prange(echunks):
        lo = ci * esize
        hi = min(lo + esize, m)
        pos = ecounts[ci]
        for e in range(lo, hi):
            if dying_mark[e]:
                dying[pos] = e
                pos += 1

    # ---- phase 4: kill edges + degree scatter ----
    r = edges.shape[1]
    total_endpoints = num_dying * r
    if nthreads > 1 and total_endpoints * 4 >= n and num_dying >= nthreads:
        # Dense round: per-thread delta buffers, merged in a deterministic
        # reduction over vertex chunks.  The buffer zeroing and merge are
        # O(threads * n), which the density gate keeps proportional to the
        # endpoint count — the same crossover reasoning as the reference
        # backend's bincount fast path.
        delta = np.zeros((nthreads, n), dtype=np.int64)
        dsize = (num_dying + nthreads - 1) // nthreads
        for ci in prange(nthreads):
            lo = ci * dsize
            hi = min(lo + dsize, num_dying)
            for i in range(lo, hi):
                e = dying[i]
                edge_alive[e] = False
                edge_peel_round[e] = round_index
                for j in range(r):
                    delta[ci, edges[e, j]] += 1
        vsize = (n + nthreads - 1) // nthreads
        for ci in prange(nthreads):
            lo = ci * vsize
            hi = min(lo + vsize, n)
            for v in range(lo, hi):
                s = 0
                for t in range(nthreads):
                    s += delta[t, v]
                degrees[v] -= s
    else:
        for i in range(num_dying):
            e = dying[i]
            edge_alive[e] = False
            edge_peel_round[e] = round_index
            for j in range(r):
                degrees[edges[e, j]] -= 1
    return removable, dying, examined_total


@njit(cache=True)
def _sequential_peel(
    edges,
    incidence_ptr,
    incidence_edges,
    degrees,
    k,
    vertex_alive,
    edge_alive,
    vertex_peel_round,
    edge_peel_round,
):
    n = degrees.shape[0]
    m = edges.shape[0]
    r = edges.shape[1] if m > 0 else 0
    # The worklist holds at most the initial below-threshold vertices plus
    # one push per endpoint of every edge, so n + m*r bounds it.
    stack = np.empty(n + m * r + 1, dtype=np.int64)
    top = 0
    for v in range(n):
        if degrees[v] < k:
            stack[top] = v
            top += 1
    peel_order = np.empty(m, dtype=np.int64)
    peeled = 0
    work = 0
    step = 0
    while top > 0:
        top -= 1
        v = stack[top]
        work += 1
        if not vertex_alive[v] or degrees[v] >= k:
            continue
        step += 1
        vertex_alive[v] = False
        vertex_peel_round[v] = step
        for idx in range(incidence_ptr[v], incidence_ptr[v + 1]):
            e = incidence_edges[idx]
            if not edge_alive[e]:
                continue
            edge_alive[e] = False
            edge_peel_round[e] = step
            peel_order[peeled] = e
            peeled += 1
            for j in range(r):
                u = edges[e, j]
                degrees[u] -= 1
                if vertex_alive[u] and degrees[u] < k:
                    stack[top] = u
                    top += 1
    return peel_order[:peeled], work, step


class NumbaKernel(NumpyKernel):
    """JIT-compiled kernel backend (bit-exact with :class:`NumpyKernel`)."""

    name = "numba"

    # ------------------------------------------------------------------ #
    # fused hooks (see PeelingKernel's "Optional fused hooks")
    # ------------------------------------------------------------------ #
    def fused_subround(
        self,
        state: PeelState,
        k: int,
        round_index: int,
        *,
        candidates: Optional[np.ndarray] = None,
        collect_touched: bool = False,
        edge_effect: Optional[EdgeEffect] = None,
    ) -> Optional[SubroundOutcome]:
        """One compiled pass for the whole subround; ``None`` declines.

        Requires the CSR incidence attached to ``state`` (engines that
        target fused kernels do so; see
        :meth:`~repro.core.peeling.ParallelPeeler.peel`) — without it, or
        on an edgeless state, the caller's primitive-by-primitive path runs
        instead.  Numba specializes the compiled body per dtype signature,
        so the compact (``uint32`` edges / ``int32`` rounds) and wide
        (``int64``) layouts each get their own machine code; candidates are
        normalized to ``int64`` so both layouts share one signature per
        ``use_candidates`` value.
        """
        if state.incidence_ptr is None or state.incidence_edges is None:
            return None
        if state.num_edges == 0:
            return None
        use_candidates = candidates is not None
        examined_full = state.vertices_remaining
        removable, dying, examined_cand = _fused_subround(
            state.edges,
            state.incidence_ptr,
            state.incidence_edges,
            state.degrees,
            state.vertex_alive,
            state.edge_alive,
            state.vertex_peel_round,
            state.edge_peel_round,
            np.ascontiguousarray(candidates, dtype=np.int64)
            if use_candidates
            else _EMPTY,
            use_candidates,
            state.num_vertices,
            state.num_edges,
            k,
            round_index,
        )
        examined = int(examined_cand) if use_candidates else examined_full
        if removable.size == 0:
            return SubroundOutcome(removable, 0, _EMPTY, examined)
        state.vertices_remaining -= int(removable.size)
        state.edges_remaining -= int(dying.size)
        touched = _EMPTY
        if dying.size:
            if edge_effect is not None:
                edge_effect(dying)
            if collect_touched:
                touched = self.unique(state.edges[dying].reshape(-1))
        return SubroundOutcome(removable, int(dying.size), touched, examined)

    def fused_remove_hyperedges(
        self,
        cells: np.ndarray,
        counts: np.ndarray,
        deltas: np.ndarray,
        payloads: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> bool:
        """Compiled IBLT removal (count + key/checksum XOR); False declines.

        Handles exactly the IBLT shape — an int64 count column plus two
        uint64 XOR payloads — and declines anything else so the generic
        per-column scatter loop keeps covering arbitrary payload stacks.
        """
        if len(payloads) != 2 or counts.dtype != np.int64 or deltas.dtype != np.int64:
            return False
        (key_sum, keys), (check_sum, checks) = payloads
        for target, values in ((key_sum, keys), (check_sum, checks)):
            if target.dtype != np.uint64 or values.dtype != np.uint64:
                return False
        _remove_hyperedges_xor(
            np.ascontiguousarray(cells),
            counts,
            np.ascontiguousarray(deltas),
            key_sum,
            np.ascontiguousarray(keys),
            check_sum,
            np.ascontiguousarray(checks),
        )
        return True

    # ------------------------------------------------------------------ #
    # primitive overrides
    # ------------------------------------------------------------------ #
    def find_dying_edges(self, state: PeelState, removable_mask: np.ndarray) -> np.ndarray:
        if state.num_edges == 0:
            return np.empty(0, dtype=np.int64)
        return _find_dying_edges(state.edges, state.edge_alive, removable_mask)

    def scatter_degree_updates(
        self, degrees: np.ndarray, endpoints: np.ndarray, amount: int = 1
    ) -> None:
        _scatter_sub_scalar(degrees, np.ascontiguousarray(endpoints), amount)

    def scatter_sub(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        _scatter(
            target, np.ascontiguousarray(indices), np.ascontiguousarray(values), False
        )

    def scatter_xor(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        _scatter(
            target, np.ascontiguousarray(indices), np.ascontiguousarray(values), True
        )

    def sequential_peel(
        self,
        state: PeelState,
        k: int,
        incidence_ptr: np.ndarray,
        incidence_edges: np.ndarray,
    ) -> Tuple[np.ndarray, int, int]:
        peel_order, work, step = _sequential_peel(
            state.edges,
            incidence_ptr,
            incidence_edges,
            state.degrees,
            k,
            state.vertex_alive,
            state.edge_alive,
            state.vertex_peel_round,
            state.edge_peel_round,
        )
        state.vertices_remaining = int(state.vertex_alive.sum())
        state.edges_remaining = int(state.edge_alive.sum())
        return peel_order, work, step

    # ------------------------------------------------------------------ #
    # warm-up (front-loads JIT compilation for benchmark harnesses)
    # ------------------------------------------------------------------ #
    def warmup(self) -> None:
        """Force JIT compilation of every kernel on 2-vertex toy inputs."""
        edges = np.array([[0, 1]], dtype=np.int64)
        incidence_ptr = np.array([0, 1, 2], dtype=np.int64)
        incidence_edges = np.array([0, 0], dtype=np.int64)
        degrees = np.array([1, 1], dtype=np.int64)
        _fused_subround(
            edges,
            incidence_ptr,
            incidence_edges,
            degrees.copy(),
            np.ones(2, dtype=bool),
            np.ones(1, dtype=bool),
            np.full(2, -1, dtype=np.int64),
            np.full(1, -1, dtype=np.int64),
            _EMPTY,
            False,
            2,
            1,
            2,
            1,
        )
        _fused_subround(
            edges,
            incidence_ptr,
            incidence_edges,
            degrees.copy(),
            np.ones(2, dtype=bool),
            np.ones(1, dtype=bool),
            np.full(2, -1, dtype=np.int64),
            np.full(1, -1, dtype=np.int64),
            np.array([0], dtype=np.int64),
            True,
            2,
            1,
            2,
            1,
        )
        _find_dying_edges(edges, np.ones(1, dtype=bool), np.zeros(2, dtype=bool))
        _scatter_sub_scalar(degrees.copy(), np.array([0], dtype=np.int64), 1)
        _scatter(
            degrees.copy(),
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.int64),
            False,
        )
        u64 = np.zeros(2, dtype=np.uint64)
        _scatter(
            u64.copy(),
            np.array([0], dtype=np.int64),
            np.array([1], dtype=np.uint64),
            True,
        )
        _remove_hyperedges_xor(
            np.array([[0, 1]], dtype=np.int64),
            np.zeros(2, dtype=np.int64),
            np.ones(1, dtype=np.int64),
            u64.copy(),
            np.ones(1, dtype=np.uint64),
            u64.copy(),
            np.ones(1, dtype=np.uint64),
        )
        _sequential_peel(
            edges,
            incidence_ptr,
            incidence_edges,
            degrees.copy(),
            2,
            np.ones(2, dtype=bool),
            np.ones(1, dtype=bool),
            np.full(2, -1, dtype=np.int64),
            np.full(1, -1, dtype=np.int64),
        )
        # Compact-layout signatures: uint32 edge ids, int32 CSR pointers /
        # degrees / peel rounds.  Candidates stay int64 in both layouts, so
        # the two use_candidates flavours share one compiled specialization.
        edges32 = np.array([[0, 1]], dtype=np.uint32)
        incidence_ptr32 = np.array([0, 1, 2], dtype=np.int32)
        incidence_edges32 = np.array([0, 0], dtype=np.uint32)
        degrees32 = np.array([1, 1], dtype=np.int32)
        for use_candidates in (False, True):
            _fused_subround(
                edges32,
                incidence_ptr32,
                incidence_edges32,
                degrees32.copy(),
                np.ones(2, dtype=bool),
                np.ones(1, dtype=bool),
                np.full(2, -1, dtype=np.int32),
                np.full(1, -1, dtype=np.int32),
                np.array([0], dtype=np.int64) if use_candidates else _EMPTY,
                use_candidates,
                2,
                1,
                2,
                1,
            )
        _find_dying_edges(edges32, np.ones(1, dtype=bool), np.zeros(2, dtype=bool))
        _scatter_sub_scalar(degrees32.copy(), np.array([0], dtype=np.uint32), 1)
        _sequential_peel(
            edges32,
            incidence_ptr32,
            incidence_edges32,
            degrees32.copy(),
            2,
            np.ones(2, dtype=bool),
            np.ones(1, dtype=bool),
            np.full(2, -1, dtype=np.int32),
            np.full(1, -1, dtype=np.int32),
        )
