"""Batched lockstep peeling: one fused kernel pass over many graphs.

Every sweep cell and every serving batch peels *many small graphs* with the
same configuration.  Dispatching them one at a time through the Python
engine loop pays interpreter and engine-construction overhead per graph —
at ``n ~ 10^3`` that overhead dominates the actual kernel work.  This module
removes it by exploiting the block-diagonal structure of a batch:

* :class:`BatchedPeelState` stacks B independent same-arity hypergraphs into
  one columnar :class:`~repro.kernels.state.PeelState` — vertex ``v`` of
  graph ``g`` becomes flat vertex ``vertex_offsets[g] + v`` and every edge
  endpoint is shifted accordingly, so the stacked edge set is block-diagonal
  (no edge crosses a graph boundary).
* :func:`batched_peel` then runs the round-synchronous parallel schedule on
  the stacked state through the kernel primitives: one removable-selection /
  vertex-kill / edge-kill sequence per round peels *all* B graphs in
  lockstep.  Because the blocks are independent, round ``t`` of the
  lockstep process removes exactly the union of what round ``t`` of each
  per-graph process removes, so the per-graph results — peel-round arrays,
  round counts, per-round work and survivor accounting — are *bit-for-bit
  identical* to the per-graph loop (the parity suite pins this against the
  golden fingerprints).

Per-graph accounting is recovered from the lockstep rounds with
``searchsorted`` over the offset tables (the kernel primitives return
sorted index arrays), and a graph whose round removed nothing has reached
its fixed point — nothing in its block can change again — so it simply
stops accumulating statistics while the remaining graphs keep peeling.  In
frontier mode finished graphs drop out of the shared frontier naturally:
no dying edges means no touched vertices.

One deliberate divergence from the single-graph engine's *implementation*
(not its results): dying edges are found through the stacked CSR incidence
index — gathering only the incident edges of the vertices removed this
round — instead of re-scanning the whole batch's ``(m, r)`` edge array
every round the way the single-graph full scan does.  The total gather
volume over a whole run is bounded by the stacked incidence size (every
vertex is removed at most once), so finished graphs stop costing edge work
the moment they stop removing vertices, which is what keeps the fused pass
ahead of the per-graph loop even when a few stubborn graphs stretch the
lockstep round count past the batch average.  The index is concatenated
from the per-graph CSR indexes the graphs already cache, so stacking pays
no global sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.results import UNPEELED, PeelingResult, RoundStats
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.arena import RoundArena, default_arena
from repro.kernels.base import PeelingKernel
from repro.kernels.state import PeelCheckpoint, PeelState

_INT32_LIMIT = np.iinfo(np.int32).max

__all__ = ["BatchedPeelCheckpoint", "BatchedPeelState", "batched_peel"]


@dataclass(frozen=True)
class BatchedPeelCheckpoint:
    """Owning snapshot of a :class:`BatchedPeelState` (flat state + per-graph counters)."""

    state: PeelCheckpoint
    vertices_remaining: np.ndarray
    edges_remaining: np.ndarray


@dataclass
class BatchedPeelState:
    """B independent hypergraphs stacked into one block-diagonal PeelState.

    Attributes
    ----------
    state:
        The flat :class:`~repro.kernels.state.PeelState` over the union of
        all graphs; every kernel primitive operates on it unchanged.
    vertex_offsets / edge_offsets:
        Arrays of length ``B + 1``; graph ``g`` owns flat vertices
        ``[vertex_offsets[g], vertex_offsets[g+1])`` and flat edges
        ``[edge_offsets[g], edge_offsets[g+1])``.
    vertices_remaining / edges_remaining:
        Per-graph live counts, maintained incrementally each round (the
        flat state only tracks the batch totals).
    incidence_ptr / incidence_edges:
        CSR vertex→edge index of the stacked graph (flat vertex/edge ids),
        concatenated from the per-graph indexes; lets each round touch only
        the incident edges of the vertices it removes.
    """

    state: PeelState
    vertex_offsets: np.ndarray
    edge_offsets: np.ndarray
    vertices_remaining: np.ndarray
    edges_remaining: np.ndarray
    incidence_ptr: np.ndarray
    incidence_edges: np.ndarray

    @property
    def num_graphs(self) -> int:
        """Batch size B."""
        return int(self.vertex_offsets.shape[0]) - 1

    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence[Hypergraph],
        *,
        wide_ids: bool = False,
        arena: Optional[RoundArena] = None,
    ) -> "BatchedPeelState":
        """Stack ``graphs`` block-diagonally into one flat peeling state.

        All graphs with at least one edge must share the same arity ``r``
        (edgeless graphs stack with anything); mixed arities raise
        ``ValueError`` because their endpoint rows cannot share one
        ``(m, r)`` array.

        The stacked layout is compact (``uint32`` ids / ``int32`` offsets
        and rounds) whenever the flat totals fit 32-bit, unless
        ``wide_ids`` forces int64.  Stacking concatenates the per-graph
        arrays each graph already caches — in compact mode the cached
        32-bit copies, so repeat batches over the same graphs (sweeps,
        the decode service) share one narrowed CSR instead of
        re-narrowing per trial.  With an ``arena`` the stacked buffers
        themselves are reused across same-shape batches.
        """
        arities = {g.edge_size for g in graphs if g.num_edges > 0}
        if len(arities) > 1:
            raise ValueError(
                f"batched peeling requires same-arity graphs; got arities {sorted(arities)}"
            )
        r = arities.pop() if arities else 0
        vertex_counts = np.asarray([g.num_vertices for g in graphs], dtype=np.int64)
        edge_counts = np.asarray([g.num_edges for g in graphs], dtype=np.int64)
        vertex_offsets = np.zeros(len(graphs) + 1, dtype=np.int64)
        edge_offsets = np.zeros(len(graphs) + 1, dtype=np.int64)
        np.cumsum(vertex_counts, out=vertex_offsets[1:])
        np.cumsum(edge_counts, out=edge_offsets[1:])
        total_v = int(vertex_offsets[-1])
        total_e = int(edge_offsets[-1])
        compact = (
            not wide_ids
            and total_v < _INT32_LIMIT
            and total_e * max(r, 1) < _INT32_LIMIT
        )
        edge_dtype = np.uint32 if compact else np.int64
        idx_dtype = np.int32 if compact else np.int64

        def take(name: str, shape, dtype) -> np.ndarray:
            if arena is not None:
                return arena.take(f"batched/{name}", shape, dtype)
            return np.empty(shape, dtype=dtype)

        # One concatenate per column beats a per-graph copy loop; the
        # per-graph vertex offsets are added in place with a single
        # vectorized repeat.  Concatenating straight into the (arena)
        # destination avoids the intermediate buffer, and the offset shifts
        # are pre-cast so the in-place adds never widen the compact arrays.
        degrees = take("degrees", total_v, idx_dtype)
        if graphs:
            np.concatenate(
                [
                    g.compact_degrees_view if compact else g.degrees_view
                    for g in graphs
                ],
                out=degrees,
            )
        if total_e:
            edges = take("edges", (total_e, r), edge_dtype)
            np.concatenate(
                [
                    (g.compact_edges if compact else g.edges).reshape(-1, r)
                    for g in graphs
                ],
                out=edges,
            )
            shift = np.repeat(vertex_offsets[:-1], edge_counts)
            edges += shift.astype(edge_dtype, copy=False)[:, None]
        else:
            edges = np.empty((0, r), dtype=edge_dtype)
        incidence_ptr = take("inc_ptr", total_v + 1, idx_dtype)
        incidence_ptr[0] = 0
        if total_v:
            np.concatenate(
                [
                    (g.compact_incidence_ptr if compact else g.incidence_ptr)[1:]
                    for g in graphs
                    if g.num_vertices
                ],
                out=incidence_ptr[1:],
            )
            incidence_ptr[1:] += np.repeat(r * edge_offsets[:-1], vertex_counts)
        incidence_edges = take("inc_edges", total_e * r, edge_dtype)
        if graphs and total_e:
            np.concatenate(
                [
                    g.compact_incidence_edges if compact else g.incidence_edges
                    for g in graphs
                ],
                out=incidence_edges,
            )
            incidence_edges += np.repeat(
                edge_offsets[:-1], r * edge_counts
            ).astype(edge_dtype, copy=False)

        if arena is not None:
            vertex_alive = arena.full("batched/vertex_alive", total_v, bool, True)
            edge_alive = arena.full("batched/edge_alive", total_e, bool, True)
            vertex_peel_round = arena.full(
                "batched/vertex_round", total_v, idx_dtype, UNPEELED
            )
            edge_peel_round = arena.full(
                "batched/edge_round", total_e, idx_dtype, UNPEELED
            )
        else:
            vertex_alive = np.ones(total_v, dtype=bool)
            edge_alive = np.ones(total_e, dtype=bool)
            vertex_peel_round = np.full(total_v, UNPEELED, dtype=idx_dtype)
            edge_peel_round = np.full(total_e, UNPEELED, dtype=idx_dtype)

        state = PeelState(
            edges=edges,
            degrees=degrees,
            vertex_alive=vertex_alive,
            edge_alive=edge_alive,
            vertex_peel_round=vertex_peel_round,
            edge_peel_round=edge_peel_round,
            vertices_remaining=total_v,
            edges_remaining=total_e,
            arena=arena,
        )
        return cls(
            state=state,
            vertex_offsets=vertex_offsets,
            edge_offsets=edge_offsets,
            vertices_remaining=vertex_counts.copy(),
            edges_remaining=edge_counts.copy(),
            incidence_ptr=incidence_ptr,
            incidence_edges=incidence_edges,
        )

    def checkpoint(self) -> BatchedPeelCheckpoint:
        """Snapshot the flat state plus the per-graph live counters.

        Delegates the columnar copies to :meth:`PeelState.checkpoint`; the
        offset tables and CSR index are immutable and not captured.
        """
        return BatchedPeelCheckpoint(
            state=self.state.checkpoint(),
            vertices_remaining=self.vertices_remaining.copy(),
            edges_remaining=self.edges_remaining.copy(),
        )

    def resume(self, checkpoint: BatchedPeelCheckpoint) -> "BatchedPeelState":
        """Restore the flat state and per-graph counters from ``checkpoint``, in place."""
        self.state.resume(checkpoint.state)
        np.copyto(self.vertices_remaining, checkpoint.vertices_remaining)
        np.copyto(self.edges_remaining, checkpoint.edges_remaining)
        return self

    def incident_edges_of(self, vertices: np.ndarray) -> np.ndarray:
        """Flat gather of every edge incident to ``vertices`` (with repeats).

        The multi-slice gather over the CSR index: an edge appears once per
        listed endpoint and dead edges are included — the caller filters on
        ``edge_alive`` and deduplicates.
        """
        starts = self.incidence_ptr[vertices]
        lengths = self.incidence_ptr[vertices + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        out_offsets = np.zeros(lengths.shape[0], dtype=np.int64)
        np.cumsum(lengths[:-1], out=out_offsets[1:])
        flat = np.arange(total, dtype=np.int64) + np.repeat(starts - out_offsets, lengths)
        return self.incidence_edges[flat]

    def split_vertex_array(self, values: np.ndarray, g: int) -> np.ndarray:
        """Graph ``g``'s slice of a flat per-vertex array (a copy)."""
        return values[self.vertex_offsets[g]: self.vertex_offsets[g + 1]].copy()

    def split_edge_array(self, values: np.ndarray, g: int) -> np.ndarray:
        """Graph ``g``'s slice of a flat per-edge array (a copy)."""
        return values[self.edge_offsets[g]: self.edge_offsets[g + 1]].copy()

    def split_vertex_round(self, g: int) -> np.ndarray:
        """Graph ``g``'s vertex peel rounds, widened to the int64 boundary dtype."""
        lo, hi = self.vertex_offsets[g], self.vertex_offsets[g + 1]
        return self.state.vertex_peel_round[lo:hi].astype(np.int64)

    def split_edge_round(self, g: int) -> np.ndarray:
        """Graph ``g``'s edge peel rounds, widened to the int64 boundary dtype."""
        lo, hi = self.edge_offsets[g], self.edge_offsets[g + 1]
        return self.state.edge_peel_round[lo:hi].astype(np.int64)


def _per_graph_counts(sorted_indices: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """How many of ``sorted_indices`` fall into each ``[offsets[g], offsets[g+1])``."""
    return np.diff(np.searchsorted(sorted_indices, offsets))


#: Above this many values, deduplicate through the scratch-flag scatter;
#: below it, sort + adjacent-compare wins (measured crossover ~1e5 on the
#: index arrays these rounds produce — np.unique itself is far slower than
#: either at every relevant size).
_DENSE_DEDUP_THRESHOLD = 1 << 17


def _sorted_unique(values: np.ndarray, scratch_flag: np.ndarray) -> np.ndarray:
    """Sorted unique of ``values`` (non-negative indices into the flag domain).

    ``scratch_flag`` must be an all-False bool array over the value domain;
    it is returned all-False again.  Strategy is picked by size: sort +
    adjacent-dedup for small batches, scatter + ``flatnonzero`` (whose cost
    is dominated by the fixed domain scan) for large ones.
    """
    if values.size < _DENSE_DEDUP_THRESHOLD:
        ordered = np.sort(values)
        keep = np.ones(ordered.size, dtype=bool)
        keep[1:] = ordered[1:] != ordered[:-1]
        return ordered[keep]
    scratch_flag[values] = True
    out = np.flatnonzero(scratch_flag)
    scratch_flag[out] = False
    return out


def batched_peel(
    kernel: PeelingKernel,
    graphs: Sequence[Hypergraph],
    k: int,
    *,
    update: str = "full",
    max_rounds: Optional[int] = None,
    track_stats: bool = True,
    wide_ids: bool = False,
    arena: Optional[RoundArena] = None,
) -> List[PeelingResult]:
    """Peel B independent graphs in lockstep and split the per-graph results.

    The returned list matches ``[ParallelPeeler(k, ...).peel(g) for g in
    graphs]`` element for element — same rounds, same peel-round arrays,
    same per-round work accounting — while executing only one fused kernel
    pass per round for the whole batch.

    Parameters
    ----------
    kernel:
        Kernel backend supplying the round primitives.
    graphs:
        Same-arity hypergraphs to peel (results in input order).
    k:
        Degree threshold; vertices of degree ``< k`` are removed each round.
    update:
        ``"full"`` or ``"frontier"`` — the same work-accounting modes the
        :class:`~repro.core.peeling.ParallelPeeler` supports, with identical
        per-graph work terms.
    max_rounds:
        Safety cap on lockstep rounds (defaults to ``4 * max_n + 16``).
    track_stats:
        Record per-round :class:`~repro.core.results.RoundStats` per graph.
    wide_ids:
        Force the wide ``int64`` stacked layout (compact 32-bit is the
        default whenever the batch fits; results are bit-identical).
    arena:
        Scratch arena backing the stacked state and the per-round dedup
        flags / candidate ramp; defaults to the calling thread's shared
        arena, so repeat batches reuse one set of buffers instead of
        reallocating the whole working set per call.
    """
    graphs = list(graphs)
    if not graphs:
        return []
    if update not in ("full", "frontier"):
        raise ValueError(f"update must be 'full' or 'frontier', got {update!r}")
    frontier_mode = update == "frontier"
    if arena is None:
        arena = default_arena()
    batch = BatchedPeelState.from_graphs(graphs, wide_ids=wide_ids, arena=arena)
    state = batch.state
    num_graphs = batch.num_graphs
    v_off = batch.vertex_offsets
    e_off = batch.edge_offsets
    total_v = int(v_off[-1])
    total_e = int(e_off[-1])

    max_n = max((g.num_vertices for g in graphs), default=0)
    limit = max_rounds if max_rounds is not None else 4 * max(max_n, 1) + 16

    # Per-graph bookkeeping the flat state cannot provide.
    num_rounds = np.zeros(num_graphs, dtype=np.int64)
    active = np.ones(num_graphs, dtype=bool)
    stats: List[List[RoundStats]] = [[] for _ in range(num_graphs)]
    empty = np.empty(0, dtype=np.int64)
    # Reusable scratch mask for deduplicating dying edges: scatter-set, read
    # back with flatnonzero (sorted for free), clear only the set entries.
    # Both flags and the identity ramp come from the arena, so steady-state
    # calls allocate nothing (the allocation-count test pins this).
    dying_flag = arena.flag("batched/dying_flag", total_e)
    # Candidate tracking (both modes): only a vertex that lost an incident
    # edge can become removable, so each round examines the previous
    # round's touched endpoints instead of re-scanning every vertex of
    # every graph — the scatter/flatnonzero flag round-trip deduplicates
    # them and keeps the candidate list sorted for free.  This is the
    # frontier-correctness argument the single-graph engine already relies
    # on; in full mode it changes only *how* the (identical) removable set
    # is found, while the recorded work term remains the full-scan count.
    candidate_flag = arena.flag("batched/candidate_flag", total_v)
    candidates = arena.arange("batched/candidates", total_v)

    for round_index in range(1, limit + 1):
        examined_per_graph = None
        if frontier_mode and track_stats:
            # Frontier work accounting needs the live candidate set per
            # graph, so filter it up front and hand the kernel the very
            # same array (its internal re-filter is then a no-op).
            live = (
                candidates[state.vertex_alive[candidates]] if candidates.size else empty
            )
            examined_per_graph = _per_graph_counts(live, v_off)
            removable, _, _ = kernel.find_removable(state, k, candidates=live)
        else:
            if track_stats:
                examined_per_graph = batch.vertices_remaining.copy()
            removable, _, _ = kernel.find_removable(state, k, candidates=candidates)
        if removable.size == 0:
            break

        kernel.kill_vertices(state, removable, round_index)
        # Dying-edge detection via the incidence index: only the removed
        # vertices' incident edges can die, so the round's edge work is
        # proportional to the removals, not to the batch size.  kill_edges
        # then performs the exact same state mutations the single-graph
        # engine's mask-scan path would.
        incident = batch.incident_edges_of(removable)
        dying = (
            _sorted_unique(incident[state.edge_alive[incident]], dying_flag)
            if incident.size
            else empty
        )
        if dying.size:
            # Inline of kernel.kill_edges (same mutations, same order) so
            # the endpoint rows are gathered once and reused to seed the
            # next round's candidates; the repeat-safe degree scatter still
            # goes through the kernel primitive.
            state.edge_alive[dying] = False
            state.edge_peel_round[dying] = round_index
            state.edges_remaining -= int(dying.size)
            endpoints = state.edges[dying].reshape(-1)
            kernel.scatter_degree_updates(state.degrees, endpoints)
            # Next round's candidates: every endpoint of a killed edge
            # (removed and dead ones drop out through the alive filter).
            candidates = _sorted_unique(endpoints, candidate_flag)
        else:
            candidates = empty

        removed_per_graph = _per_graph_counts(removable, v_off)
        dying_per_graph = _per_graph_counts(dying, e_off)
        batch.vertices_remaining -= removed_per_graph
        batch.edges_remaining -= dying_per_graph

        # A graph that removed nothing this round is at its fixed point:
        # its block can never change again, so it stops accumulating rounds
        # and stats exactly where its per-graph loop would have stopped.
        progressed = removed_per_graph > 0
        active &= progressed
        num_rounds[active] = round_index
        if track_stats:
            for g in np.flatnonzero(active):
                stats[g].append(
                    RoundStats(
                        round_index=round_index,
                        vertices_peeled=int(removed_per_graph[g]),
                        edges_peeled=int(dying_per_graph[g]),
                        vertices_remaining=int(batch.vertices_remaining[g]),
                        edges_remaining=int(batch.edges_remaining[g]),
                        work=int(examined_per_graph[g]),
                    )
                )
    else:  # pragma: no cover - loop exhausted without fixed point
        raise RuntimeError(
            f"batched parallel peeling did not reach a fixed point within {limit} rounds"
        )

    return [
        PeelingResult(
            k=k,
            mode="parallel",
            num_rounds=int(num_rounds[g]),
            num_subrounds=int(num_rounds[g]),
            success=int(batch.edges_remaining[g]) == 0,
            vertex_peel_round=batch.split_vertex_round(g),
            edge_peel_round=batch.split_edge_round(g),
            round_stats=stats[g],
        )
        for g in range(num_graphs)
    ]
