"""Unified peeling-kernel layer: columnar state + swappable round primitives.

The paper's unifying observation is that k-core peeling, IBLT listing and
erasure decoding are *one* round-synchronous process with different per-edge
side effects.  This package is that observation as code:

* :class:`~repro.kernels.state.PeelState` — the struct-of-arrays working set
  (alive masks, degrees, peel-round arrays, frontier) every engine shares.
* :class:`~repro.kernels.base.PeelingKernel` — the backend protocol of
  vectorized round primitives (``find_removable``, ``kill_edges``,
  ``scatter_degree_updates``, frontier maintenance, ``pure_cells``).
* :func:`~repro.kernels.rounds.peel_subround` /
  :func:`~repro.kernels.rounds.remove_hyperedges` — the shared inner loop,
  parameterized by an :data:`~repro.kernels.base.EdgeEffect` hook so pure
  k-core peeling and XOR-payload IBLT removal are the same code path.
* the kernel registry — ``"numpy"`` always, ``"numba"`` auto-registered when
  Numba is importable; select with ``kernel=`` on any engine/decoder,
  :class:`repro.PeelingConfig`, or the CLI's ``--kernel``.
"""

from repro.kernels.base import EdgeEffect, PeelingKernel
from repro.kernels.batched import BatchedPeelState, batched_peel
from repro.kernels.numpy_backend import NumpyKernel
from repro.kernels.registry import (
    DEFAULT_KERNEL,
    KernelFactory,
    available_kernels,
    get_kernel,
    register_kernel,
    unregister_kernel,
)
from repro.kernels.rounds import SubroundOutcome, peel_subround, remove_hyperedges
from repro.kernels.state import PeelState

if "numpy" not in available_kernels():  # tolerate re-imports (e.g. importlib.reload)
    register_kernel("numpy", NumpyKernel)

try:  # the Numba backend is optional; register it only when importable
    from repro.kernels.numba_backend import NumbaKernel
except ImportError:  # pragma: no cover - exercised only without numba
    NumbaKernel = None  # type: ignore[assignment,misc]
else:  # pragma: no cover - exercised only with numba installed
    if "numba" not in available_kernels():
        register_kernel("numba", NumbaKernel)

__all__ = [
    "PeelState",
    "BatchedPeelState",
    "batched_peel",
    "PeelingKernel",
    "EdgeEffect",
    "NumpyKernel",
    "NumbaKernel",
    "SubroundOutcome",
    "peel_subround",
    "remove_hyperedges",
    "DEFAULT_KERNEL",
    "KernelFactory",
    "register_kernel",
    "unregister_kernel",
    "get_kernel",
    "available_kernels",
]
