"""Unified peeling-kernel layer: columnar state + swappable round primitives.

The paper's unifying observation is that k-core peeling, IBLT listing and
erasure decoding are *one* round-synchronous process with different per-edge
side effects.  This package is that observation as code:

* :class:`~repro.kernels.state.PeelState` — the struct-of-arrays working set
  (alive masks, degrees, peel-round arrays, frontier) every engine shares.
* :class:`~repro.kernels.arena.RoundArena` — a grow-only scratch-buffer
  pool (one per worker thread via
  :func:`~repro.kernels.arena.default_arena`) that backs the mutable state
  arrays and per-round flags, so repeated trials reuse memory instead of
  reallocating the working set every peel.
* :class:`~repro.kernels.base.PeelingKernel` — the backend protocol of
  vectorized round primitives (``find_removable``, ``kill_edges``,
  ``scatter_degree_updates``, frontier maintenance, ``pure_cells``), plus
  the optional fused hooks compiled backends add on top.
* :func:`~repro.kernels.rounds.peel_subround` /
  :func:`~repro.kernels.rounds.remove_hyperedges` — the shared inner loop,
  parameterized by an :data:`~repro.kernels.base.EdgeEffect` hook so pure
  k-core peeling and XOR-payload IBLT removal are the same code path.
* the kernel registry — ``"numpy"`` always; the compiled tiers ``"numba"``
  (JIT, ``prange``-parallel) and ``"cffi"`` (system-cc-compiled C) are
  *declared lazily* whenever their toolchain looks present, and pay their
  import/JIT/compile cost only on the first ``get_kernel`` call.  A
  declared backend whose load fails raises
  :class:`~repro.kernels.registry.KernelUnavailableError` naming the cause
  — a broken Numba install can never poison ``import repro``.  Select with
  ``kernel=`` on any engine/decoder, :class:`repro.PeelingConfig`, or the
  CLI's ``--kernel``.
"""

import importlib.util
import shutil

from repro.kernels.arena import RoundArena, default_arena
from repro.kernels.base import EdgeEffect, PeelingKernel
from repro.kernels.batched import BatchedPeelCheckpoint, BatchedPeelState, batched_peel
from repro.kernels.numpy_backend import NumpyKernel
from repro.kernels.registry import (
    DEFAULT_KERNEL,
    KernelFactory,
    KernelUnavailableError,
    available_kernels,
    get_kernel,
    ready_kernels,
    register_kernel,
    register_lazy_kernel,
    unregister_kernel,
)
from repro.kernels.rounds import (
    SubroundOutcome,
    drop_edges,
    peel_subround,
    remove_hyperedges,
    reseed_frontier,
)
from repro.kernels.state import PeelCheckpoint, PeelState


def _load_numba_kernel() -> KernelFactory:
    """Lazy loader for the ``"numba"`` backend (imports + JIT machinery)."""
    from repro.kernels.numba_backend import NumbaKernel

    return NumbaKernel


def _load_cffi_kernel() -> KernelFactory:
    """Lazy loader for the ``"cffi"`` backend (compiles the C library)."""
    from repro.kernels.cffi_backend import CffiKernel, ensure_library

    ensure_library()
    return CffiKernel


# Registration tolerates re-imports (e.g. importlib.reload): never re-declare
# a name that is already present.  The gates here are *cheap* presence checks
# (is the module findable / is a C compiler on PATH) — the heavy work, and
# any failure it produces, is deferred to the first get_kernel() lookup.
if "numpy" not in available_kernels():
    register_kernel("numpy", NumpyKernel)
if "numba" not in available_kernels() and importlib.util.find_spec("numba") is not None:
    register_lazy_kernel("numba", _load_numba_kernel)
if (
    "cffi" not in available_kernels()
    and importlib.util.find_spec("cffi") is not None
    and any(shutil.which(cc) for cc in ("cc", "gcc", "clang"))
):
    register_lazy_kernel("cffi", _load_cffi_kernel)


def __getattr__(name: str):
    """Expose the compiled backend classes without importing them eagerly."""
    if name == "NumbaKernel":
        from repro.kernels.numba_backend import NumbaKernel

        return NumbaKernel
    if name == "CffiKernel":
        from repro.kernels.cffi_backend import CffiKernel

        return CffiKernel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PeelState",
    "PeelCheckpoint",
    "RoundArena",
    "default_arena",
    "BatchedPeelCheckpoint",
    "BatchedPeelState",
    "batched_peel",
    "PeelingKernel",
    "EdgeEffect",
    "NumpyKernel",
    "NumbaKernel",
    "CffiKernel",
    "SubroundOutcome",
    "drop_edges",
    "peel_subround",
    "remove_hyperedges",
    "reseed_frontier",
    "DEFAULT_KERNEL",
    "KernelFactory",
    "KernelUnavailableError",
    "register_kernel",
    "register_lazy_kernel",
    "unregister_kernel",
    "get_kernel",
    "available_kernels",
    "ready_kernels",
]
