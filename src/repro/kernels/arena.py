"""Grow-only scratch-buffer arena shared across peel rounds and trials.

Round-synchronous peeling allocates the same families of temporaries over
and over: alive masks and peel-round arrays per trial, candidate/dying
dedup flags and ``arange`` identity ramps per round.  At sweep scale those
allocations — not the arithmetic — dominate the allocator profile, and at
``n = 10^6`` each trial churns tens of megabytes of short-lived arrays.

A :class:`RoundArena` is a named, grow-only pool of NumPy buffers.  Each
``(name, kind)`` key owns one backing buffer that only ever grows; callers
receive right-sized views, so once the pool has seen the largest shape of a
workload, steady-state rounds and repeat trials allocate nothing (the
:attr:`RoundArena.allocations` counter is the regression-test contract for
this).  The arena makes no attempt at lifetime tracking: two live users of
the same key alias the same memory, so every key namespace (``"state/"``,
``"batched/"``, ``"iblt/"``, ...) must have at most one user at a time —
which the engines guarantee by construction, since each ``peel`` /
``batched_peel`` / ``decode_many`` call runs to completion before the next
one starts on that thread.

:func:`default_arena` hands out one arena per thread, which is what gives
sweeps and the micro-batching decode service cross-trial buffer reuse for
free: worker threads and ``peel_many``'s serial loop keep hitting the same
thread-local pool even though engines are rebuilt per trial.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Tuple, Union

import numpy as np

__all__ = ["RoundArena", "default_arena"]

ShapeLike = Union[int, Tuple[int, ...]]


class RoundArena:
    """Named pool of reusable scratch buffers (grow-only, no lifetime tracking)."""

    __slots__ = ("_buffers", "allocations")

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, str], np.ndarray] = {}
        #: Count of backing-buffer allocations performed so far.  Steady-state
        #: rounds/trials must not move it — the allocation-count regression
        #: test asserts exactly that.
        self.allocations = 0

    def _grow(self, key: Tuple[str, str], size: int, dtype, zero: bool) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            # Doubling keeps the amortized copy/alloc count logarithmic when a
            # workload's sizes creep upward across trials.
            capacity = size if buf is None else max(size, 2 * buf.size)
            buf = (
                np.zeros(capacity, dtype=dtype)
                if zero
                else np.empty(capacity, dtype=dtype)
            )
            self._buffers[key] = buf
            self.allocations += 1
        return buf

    def take(self, name: str, shape: ShapeLike, dtype) -> np.ndarray:
        """A writable view of shape ``shape`` over the ``name`` buffer.

        Contents are arbitrary (previous users' data); callers must fill
        every element they read.  One live user per ``name`` at a time.
        """
        dtype = np.dtype(dtype)
        if isinstance(shape, int):
            size = shape
            shape = (shape,)
        else:
            size = math.prod(shape)
        buf = self._grow((name, dtype.str), int(size), dtype, zero=False)
        return buf[:size].reshape(shape)

    def full(self, name: str, shape: ShapeLike, dtype, fill_value) -> np.ndarray:
        """Like :meth:`take` but with every element set to ``fill_value``."""
        out = self.take(name, shape, dtype)
        out[...] = fill_value
        return out

    def flag(self, name: str, size: int) -> np.ndarray:
        """An all-False bool scratch of length ``size``.

        Contract: the caller returns the view all-False again (clear exactly
        the entries it set) — that is what lets reuse skip the O(size)
        re-zeroing that ``np.zeros`` would pay every round.
        """
        buf = self._grow((name, "flag"), int(size), bool, zero=True)
        return buf[:size]

    def arange(self, name: str, size: int) -> np.ndarray:
        """The identity ramp ``[0, size)`` as int64 (shared; do not write)."""
        size = int(size)
        key = (name, "arange")
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            capacity = size if buf is None else max(size, 2 * buf.size)
            buf = np.arange(capacity, dtype=np.int64)
            self._buffers[key] = buf
            self.allocations += 1
        return buf[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes held by the pool's backing buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every backing buffer (the allocation counter is kept)."""
        self._buffers.clear()


_THREAD_LOCAL = threading.local()


def default_arena() -> RoundArena:
    """The calling thread's shared arena (created on first use).

    Engines pass this into :class:`~repro.kernels.state.PeelState` /
    ``batched_peel`` so repeated trials on one worker thread reuse the same
    buffers; each thread owning its own pool keeps the views race-free
    without locking.
    """
    arena = getattr(_THREAD_LOCAL, "arena", None)
    if arena is None:
        arena = _THREAD_LOCAL.arena = RoundArena()
    return arena
