"""Reference kernel backend: vectorized NumPy round primitives.

This backend is the ground truth the parity suite pins every other backend
against.  The primitives are the exact operations the pre-kernel engines ran
inline — boolean-mask selection, ``any(axis=1)`` edge death detection and
``np.ufunc.at`` scatter updates — so refactoring the engines onto the kernel
layer changed neither their results nor their accounting.

Dtype contract: every primitive is layout-generic.  A :class:`PeelState`
arrives either *wide* (``int64`` throughout) or *compact* (``uint32`` edge
ids, signed ``int32`` degrees / peel rounds, so the ``UNPEELED`` sentinel
and in-place ``-=`` with promoted intermediates still work — NumPy's
``same_kind`` in-place casting rejects ``int64``-into-``uint32`` but
accepts it into ``int32``).  Indexing, boolean masking, ``bincount`` and
setitem round-stamping are all dtype-polymorphic, so a single code path
serves both layouts bit-identically; compiled backends instead dispatch to
per-dtype specializations and must preserve the same semantics.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.kernels.base import EdgeEffect
from repro.kernels.state import PeelState

__all__ = ["NumpyKernel"]


class NumpyKernel:
    """Pure-NumPy implementation of the :class:`~repro.kernels.base.PeelingKernel` protocol."""

    name = "numpy"

    def warmup(self) -> None:
        """No-op: the reference backend has no compile step to front-load.

        Compiled backends override this to force their one-time JIT /
        shared-library build on tiny inputs, so benchmarks can exclude (and
        report) the compile cost separately from the timed repetitions.
        """

    # ------------------------------------------------------------------ #
    # round primitives
    # ------------------------------------------------------------------ #
    def find_removable(
        self, state: PeelState, k: int, *, candidates: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
        degrees = state.degrees
        alive = state.vertex_alive
        if candidates is None:
            # The live count is maintained incrementally and always equals
            # alive.sum() here, so the full scan's work term is free.
            examined = state.vertices_remaining
            mask = alive & (degrees < k)
            return np.flatnonzero(mask), mask, examined
        live = candidates[alive[candidates]] if candidates.size else candidates
        removable = live[degrees[live] < k]
        return removable, None, int(live.size)

    def make_mask(self, size: int, indices: np.ndarray) -> np.ndarray:
        mask = np.zeros(size, dtype=bool)
        mask[indices] = True
        return mask

    def kill_vertices(self, state: PeelState, removable: np.ndarray, round_index: int) -> None:
        state.vertex_alive[removable] = False
        state.vertex_peel_round[removable] = round_index
        state.vertices_remaining -= int(removable.size)

    def find_dying_edges(self, state: PeelState, removable_mask: np.ndarray) -> np.ndarray:
        if state.num_edges == 0:
            return np.empty(0, dtype=np.int64)
        # Column-wise OR accumulation instead of mask[edges].any(axis=1):
        # boolean OR is order-free so the result is bit-identical, but this
        # skips both the (m, r) gather materialization and the axis-1
        # reduce over tiny rows, and ``take`` stays on the fast path for
        # the compact uint32 ids where fancy indexing pays an index
        # conversion per round.
        edges = state.edges
        dying_mask = removable_mask.take(edges[:, 0])
        for j in range(1, edges.shape[1]):
            dying_mask |= removable_mask.take(edges[:, j])
        dying_mask &= state.edge_alive
        return np.flatnonzero(dying_mask)

    def kill_edges(
        self,
        state: PeelState,
        dying: np.ndarray,
        round_index: int,
        *,
        collect_touched: bool = False,
        edge_effect: Optional[EdgeEffect] = None,
    ) -> Optional[np.ndarray]:
        state.edge_alive[dying] = False
        state.edge_peel_round[dying] = round_index
        state.edges_remaining -= int(dying.size)
        endpoints = state.edges[dying].reshape(-1)
        self.scatter_degree_updates(state.degrees, endpoints)
        if edge_effect is not None:
            edge_effect(dying)
        return self.unique(endpoints) if collect_touched else None

    def refresh_frontier(self, state: PeelState, touched: Optional[np.ndarray]) -> None:
        if touched is None:
            touched = np.empty(0, dtype=np.int64)
        state.frontier = touched[state.vertex_alive[touched]] if touched.size else touched

    def reseed_frontier(self, state: PeelState, dirty: np.ndarray) -> np.ndarray:
        # Resume primitive: install the (deduplicated, live) degree-changed
        # vertices as the frontier so a resumed schedule starts from the
        # churn instead of re-scanning the fixed point.
        dirty = np.unique(np.asarray(dirty, dtype=np.int64))
        state.frontier = dirty[state.vertex_alive[dirty]] if dirty.size else dirty
        return state.frontier

    # ------------------------------------------------------------------ #
    # scatter primitives
    # ------------------------------------------------------------------ #
    def scatter_degree_updates(
        self, degrees: np.ndarray, endpoints: np.ndarray, amount: int = 1
    ) -> None:
        # ``np.subtract.at`` serializes one element at a time; once the
        # scatter is dense relative to the target, a counting pass is an
        # order of magnitude faster and arithmetically identical.  The
        # sparse case keeps the direct scatter — a bincount there would
        # allocate and scan far more than the update touches.  Both
        # branches hand the target's own dtype to the ufunc: a python-int
        # amount (or bincount's int64 counts) against compact int32
        # degrees would otherwise force the casting slow path, ~25x on
        # the scatter.
        if endpoints.size * 4 >= degrees.size:
            counts = np.bincount(endpoints, minlength=degrees.size)
            degrees -= (amount * counts).astype(degrees.dtype, copy=False)
        else:
            np.subtract.at(degrees, endpoints, degrees.dtype.type(amount))

    def scatter_sub(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        np.subtract.at(target, indices, values)

    def scatter_xor(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        np.bitwise_xor.at(target, indices, values)

    def unique(self, values: np.ndarray) -> np.ndarray:
        return np.unique(values)

    # ------------------------------------------------------------------ #
    # IBLT cell selection
    # ------------------------------------------------------------------ #
    def pure_cells(
        self,
        count: np.ndarray,
        key_sum: np.ndarray,
        check_sum: np.ndarray,
        checksum_fn: Callable[[np.ndarray], np.ndarray],
        *,
        signed: bool,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        counts = count[start:stop]
        candidate = np.abs(counts) == 1 if signed else counts == 1
        idx = np.flatnonzero(candidate)
        if idx.size == 0:
            return idx
        keys = key_sum[start + idx]
        ok = (checksum_fn(keys) == check_sum[start + idx]) & (keys != 0)
        return start + idx[ok]

    # ------------------------------------------------------------------ #
    # sequential schedule
    # ------------------------------------------------------------------ #
    def sequential_peel(
        self,
        state: PeelState,
        k: int,
        incidence_ptr: np.ndarray,
        incidence_edges: np.ndarray,
    ) -> Tuple[np.ndarray, int, int]:
        edges = state.edges
        degrees = state.degrees
        vertex_alive = state.vertex_alive
        edge_alive = state.edge_alive
        vertex_peel_round = state.vertex_peel_round
        edge_peel_round = state.edge_peel_round
        peel_order = []
        work = 0
        worklist = list(np.flatnonzero(degrees < k))
        step = 0
        while worklist:
            v = int(worklist.pop())
            work += 1
            if not vertex_alive[v] or degrees[v] >= k:
                continue
            step += 1
            vertex_alive[v] = False
            vertex_peel_round[v] = step
            for e in incidence_edges[incidence_ptr[v]: incidence_ptr[v + 1]]:
                e = int(e)
                if not edge_alive[e]:
                    continue
                edge_alive[e] = False
                edge_peel_round[e] = step
                peel_order.append(e)
                for u in edges[e]:
                    u = int(u)
                    degrees[u] -= 1
                    if vertex_alive[u] and degrees[u] < k:
                        worklist.append(u)
        state.vertices_remaining = int(vertex_alive.sum())
        state.edges_remaining = int(edge_alive.sum())
        return np.asarray(peel_order, dtype=np.int64), work, step
