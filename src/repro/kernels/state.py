"""Columnar peeling state shared by every round-synchronous engine.

A :class:`PeelState` is the struct-of-arrays working set of one peeling run:
alive masks for vertices and edges, the mutable degree vector, the per-round
peel arrays that end up in :class:`~repro.core.results.PeelingResult`, and
(for frontier schedules) the candidate set to examine next round.  Engines
own the loop structure — what counts as a round, which statistics to record —
while every state mutation goes through a
:class:`~repro.kernels.base.PeelingKernel` backend, so the same engine code
runs on plain NumPy or on a JIT-compiled backend without change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.results import UNPEELED
from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["PeelState"]


@dataclass
class PeelState:
    """Struct-of-arrays state of an in-progress peeling process.

    Attributes
    ----------
    edges:
        The ``(m, r)`` edge array of the hypergraph being peeled (borrowed,
        never mutated).
    degrees:
        Mutable degree vector of shape ``(n,)``; kernels scatter-decrement it
        as edges die.
    vertex_alive / edge_alive:
        Boolean alive masks of shapes ``(n,)`` and ``(m,)``.
    vertex_peel_round / edge_peel_round:
        Per-vertex / per-edge (1-based) round of removal, ``UNPEELED`` while
        alive; these arrays are handed to the result object unchanged.
    vertices_remaining / edges_remaining:
        Live counts, maintained incrementally so engines never re-scan the
        masks for bookkeeping.
    frontier:
        Candidate vertices to examine next round (frontier schedules only);
        ``None`` means "examine everything".
    incidence_ptr / incidence_edges:
        Optional CSR vertex→edge index of the graph being peeled (the
        arrays :attr:`repro.hypergraph.Hypergraph.incidence_ptr` /
        ``incidence_edges`` already cache).  ``None`` by default — only
        engines targeting a compiled backend's fused round primitive attach
        them (see :meth:`~repro.kernels.base.PeelingKernel.fused_subround`),
        so the reference NumPy path never pays for an index it does not
        read.
    """

    edges: np.ndarray
    degrees: np.ndarray
    vertex_alive: np.ndarray
    edge_alive: np.ndarray
    vertex_peel_round: np.ndarray
    edge_peel_round: np.ndarray
    vertices_remaining: int
    edges_remaining: int
    frontier: Optional[np.ndarray] = field(default=None)
    incidence_ptr: Optional[np.ndarray] = field(default=None)
    incidence_edges: Optional[np.ndarray] = field(default=None)

    @classmethod
    def from_graph(cls, graph: Hypergraph) -> "PeelState":
        """Initial state for peeling ``graph``: everything alive, true degrees."""
        n = graph.num_vertices
        m = graph.num_edges
        return cls(
            edges=graph.edges,
            degrees=graph.degrees(),
            vertex_alive=np.ones(n, dtype=bool),
            edge_alive=np.ones(m, dtype=bool),
            vertex_peel_round=np.full(n, UNPEELED, dtype=np.int64),
            edge_peel_round=np.full(m, UNPEELED, dtype=np.int64),
            vertices_remaining=n,
            edges_remaining=m,
        )

    @property
    def num_vertices(self) -> int:
        """Total vertex count ``n`` (alive or not)."""
        return int(self.degrees.shape[0])

    @property
    def num_edges(self) -> int:
        """Total edge count ``m`` (alive or not)."""
        return int(self.edge_alive.shape[0])

    @property
    def done(self) -> bool:
        """True once no edges remain (the k-core is empty)."""
        return self.edges_remaining == 0
