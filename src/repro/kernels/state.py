"""Columnar peeling state shared by every round-synchronous engine.

A :class:`PeelState` is the struct-of-arrays working set of one peeling run:
alive masks for vertices and edges, the mutable degree vector, the per-round
peel arrays that end up in :class:`~repro.core.results.PeelingResult`, and
(for frontier schedules) the candidate set to examine next round.  Engines
own the loop structure — what counts as a round, which statistics to record —
while every state mutation goes through a
:class:`~repro.kernels.base.PeelingKernel` backend, so the same engine code
runs on plain NumPy or on a JIT-compiled backend without change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.results import UNPEELED
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.arena import RoundArena

__all__ = ["PeelCheckpoint", "PeelState"]


@dataclass(frozen=True)
class PeelCheckpoint:
    """Owning snapshot of a :class:`PeelState` at a fixed point (or any round).

    Every mutable column is copied out of the (possibly arena-backed) state,
    so a checkpoint survives arena reuse and later resumed rounds: restoring
    it with :meth:`PeelState.resume` rewinds the state bit-for-bit to the
    captured round.  The immutable ``edges`` / incidence arrays are *not*
    captured — they belong to the graph and never change.
    """

    degrees: np.ndarray
    vertex_alive: np.ndarray
    edge_alive: np.ndarray
    vertex_peel_round: np.ndarray
    edge_peel_round: np.ndarray
    vertices_remaining: int
    edges_remaining: int
    rounds_completed: int
    frontier: Optional[np.ndarray] = None


@dataclass
class PeelState:
    """Struct-of-arrays state of an in-progress peeling process.

    Attributes
    ----------
    edges:
        The ``(m, r)`` edge array of the hypergraph being peeled (borrowed,
        never mutated).
    degrees:
        Mutable degree vector of shape ``(n,)``; kernels scatter-decrement it
        as edges die.
    vertex_alive / edge_alive:
        Boolean alive masks of shapes ``(n,)`` and ``(m,)``.
    vertex_peel_round / edge_peel_round:
        Per-vertex / per-edge (1-based) round of removal, ``UNPEELED`` while
        alive; these arrays are handed to the result object unchanged.
    vertices_remaining / edges_remaining:
        Live counts, maintained incrementally so engines never re-scan the
        masks for bookkeeping.
    frontier:
        Candidate vertices to examine next round (frontier schedules only);
        ``None`` means "examine everything".
    incidence_ptr / incidence_edges:
        Optional CSR vertex→edge index of the graph being peeled (the
        arrays :attr:`repro.hypergraph.Hypergraph.incidence_ptr` /
        ``incidence_edges`` already cache).  ``None`` by default — only
        engines targeting a compiled backend's fused round primitive attach
        them (see :meth:`~repro.kernels.base.PeelingKernel.fused_subround`),
        so the reference NumPy path never pays for an index it does not
        read.
    arena:
        The :class:`~repro.kernels.arena.RoundArena` backing the mutable
        arrays, or ``None`` when they are owned.  Arena-backed arrays alias
        the pool's reusable buffers, so anything that must outlive this
        state (the result peel-round arrays) goes through
        :meth:`result_peel_rounds`, which copies exactly when needed.
    rounds_completed:
        Rounds executed on this state so far.  0 for a fresh state; a state
        restored via :meth:`resume` (or kept resident between
        :meth:`checkpoint` calls) carries the round it stopped at, so a
        resumed engine continues stamping peel rounds where the previous
        fixed point left off instead of restarting at round 1.

    Dtypes
    ------
    By default the state is *compact* whenever the graph fits 32-bit ids
    (see :attr:`~repro.hypergraph.Hypergraph.supports_compact_ids`):
    ``edges`` / ``incidence_edges`` are ``uint32`` and ``degrees`` /
    ``incidence_ptr`` / the peel-round arrays are ``int32`` (signed, since
    ``UNPEELED`` is ``-1``) — half the memory bandwidth per round of the
    wide ``int64`` layout.  ``wide_ids=True`` is the escape hatch back to
    int64 everywhere; results are bit-identical either way (the parity
    suite pins compact vs wide on every backend), because index arrays
    *returned* by kernels and results stay int64 at the boundary.
    """

    edges: np.ndarray
    degrees: np.ndarray
    vertex_alive: np.ndarray
    edge_alive: np.ndarray
    vertex_peel_round: np.ndarray
    edge_peel_round: np.ndarray
    vertices_remaining: int
    edges_remaining: int
    frontier: Optional[np.ndarray] = field(default=None)
    incidence_ptr: Optional[np.ndarray] = field(default=None)
    incidence_edges: Optional[np.ndarray] = field(default=None)
    arena: Optional[RoundArena] = field(default=None, repr=False)
    rounds_completed: int = 0

    @classmethod
    def from_graph(
        cls,
        graph: Hypergraph,
        *,
        wide_ids: bool = False,
        arena: Optional[RoundArena] = None,
        attach_incidence: bool = False,
    ) -> "PeelState":
        """Initial state for peeling ``graph``: everything alive, true degrees.

        Parameters
        ----------
        wide_ids:
            Force the wide ``int64`` layout even when the graph fits compact
            32-bit ids (the compact layout is the default whenever it fits).
        arena:
            Optional scratch arena to back the mutable arrays (alive masks,
            degrees, peel rounds) with reused buffers instead of fresh
            allocations.  At most one arena-backed state may be live per
            arena at a time — engines create one state per ``peel`` call,
            which satisfies this by construction.
        attach_incidence:
            Attach the graph's (dtype-matching) CSR incidence index, for
            engines that target a fused kernel round or the sequential
            worklist.
        """
        n = graph.num_vertices
        m = graph.num_edges
        compact = not wide_ids and graph.supports_compact_ids
        round_dtype = np.int32 if compact else np.int64
        if arena is not None:
            degrees = arena.take("state/degrees", n, round_dtype)
            vertex_alive = arena.full("state/vertex_alive", n, bool, True)
            edge_alive = arena.full("state/edge_alive", m, bool, True)
            vertex_peel_round = arena.full("state/vertex_round", n, round_dtype, UNPEELED)
            edge_peel_round = arena.full("state/edge_round", m, round_dtype, UNPEELED)
        else:
            degrees = np.empty(n, dtype=round_dtype)
            vertex_alive = np.ones(n, dtype=bool)
            edge_alive = np.ones(m, dtype=bool)
            vertex_peel_round = np.full(n, UNPEELED, dtype=round_dtype)
            edge_peel_round = np.full(m, UNPEELED, dtype=round_dtype)
        graph.degrees_into(degrees)
        state = cls(
            edges=graph.compact_edges if compact else graph.edges,
            degrees=degrees,
            vertex_alive=vertex_alive,
            edge_alive=edge_alive,
            vertex_peel_round=vertex_peel_round,
            edge_peel_round=edge_peel_round,
            vertices_remaining=n,
            edges_remaining=m,
            arena=arena,
        )
        if attach_incidence:
            if compact:
                state.incidence_ptr = graph.compact_incidence_ptr
                state.incidence_edges = graph.compact_incidence_edges
            else:
                state.incidence_ptr = graph.incidence_ptr
                state.incidence_edges = graph.incidence_edges
        return state

    def checkpoint(self) -> PeelCheckpoint:
        """Snapshot the mutable columns so this round can be returned to.

        The copies own their memory, so checkpoints taken from arena-backed
        states stay valid after the arena recycles the buffers for the next
        trial.  The frontier (when present) is widened to the int64 boundary
        dtype like every other index array that crosses the kernel boundary.
        """
        return PeelCheckpoint(
            degrees=self.degrees.copy(),
            vertex_alive=self.vertex_alive.copy(),
            edge_alive=self.edge_alive.copy(),
            vertex_peel_round=self.vertex_peel_round.copy(),
            edge_peel_round=self.edge_peel_round.copy(),
            vertices_remaining=int(self.vertices_remaining),
            edges_remaining=int(self.edges_remaining),
            rounds_completed=int(self.rounds_completed),
            frontier=None
            if self.frontier is None
            else self.frontier.astype(np.int64, copy=True),
        )

    def resume(self, checkpoint: PeelCheckpoint) -> "PeelState":
        """Restore the mutable columns from ``checkpoint``, in place.

        Copies back *into* the existing buffers (arena-backed or owned), so
        the state object keeps aliasing whatever storage it was built on.
        Shapes must match the checkpointed run; a checkpoint taken from a
        different graph raises ``ValueError`` instead of silently writing
        garbage.  Returns ``self`` for chaining.
        """
        if (
            checkpoint.degrees.shape != self.degrees.shape
            or checkpoint.edge_alive.shape != self.edge_alive.shape
        ):
            raise ValueError(
                "checkpoint shapes "
                f"(n={checkpoint.degrees.shape[0]}, m={checkpoint.edge_alive.shape[0]}) "
                f"do not match this state (n={self.num_vertices}, m={self.num_edges})"
            )
        np.copyto(self.degrees, checkpoint.degrees, casting="same_kind")
        np.copyto(self.vertex_alive, checkpoint.vertex_alive)
        np.copyto(self.edge_alive, checkpoint.edge_alive)
        np.copyto(self.vertex_peel_round, checkpoint.vertex_peel_round, casting="same_kind")
        np.copyto(self.edge_peel_round, checkpoint.edge_peel_round, casting="same_kind")
        self.vertices_remaining = checkpoint.vertices_remaining
        self.edges_remaining = checkpoint.edges_remaining
        self.rounds_completed = checkpoint.rounds_completed
        self.frontier = (
            None if checkpoint.frontier is None else checkpoint.frontier.copy()
        )
        return self

    def result_peel_rounds(self, *, force_copy: bool = False) -> tuple:
        """``(vertex_peel_round, edge_peel_round)`` safe to hand to results.

        Results are int64 regardless of the working layout (the golden
        fingerprints hash raw bytes, so the boundary dtype is pinned), and
        must not alias arena buffers that the next trial will overwrite.
        Copies happen exactly when one of those forces them — the wide,
        owned state hands its arrays over untouched like it always did.
        Resumable engines pass ``force_copy=True`` because their owned state
        outlives the result and keeps mutating across later ``resume`` calls.
        """
        vertex_rounds = self.vertex_peel_round
        edge_rounds = self.edge_peel_round
        if vertex_rounds.dtype != np.int64 or self.arena is not None or force_copy:
            return (
                vertex_rounds.astype(np.int64),
                edge_rounds.astype(np.int64),
            )
        return vertex_rounds, edge_rounds

    @property
    def num_vertices(self) -> int:
        """Total vertex count ``n`` (alive or not)."""
        return int(self.degrees.shape[0])

    @property
    def num_edges(self) -> int:
        """Total edge count ``m`` (alive or not)."""
        return int(self.edge_alive.shape[0])

    @property
    def done(self) -> bool:
        """True once no edges remain (the k-core is empty)."""
        return self.edges_remaining == 0
