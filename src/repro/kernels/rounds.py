"""The shared inner loop: one synchronous removal step, any schedule.

:func:`peel_subround` is the select → kill-vertices → kill-edges → scatter
sequence every round-synchronous engine repeats.  The parallel engine calls
it once per round (full scan or frontier candidates), the subtable engine
once per subtable per round, and payload-carrying processes pass an
``edge_effect`` hook that fires on the killed edges.
:func:`remove_hyperedges` is the same scatter core on raw cell arrays, used
by the IBLT decoders whose "edges" (keys) are discovered mid-flight rather
than known up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.results import DROPPED
from repro.kernels.arena import RoundArena
from repro.kernels.base import EdgeEffect, PeelingKernel
from repro.kernels.state import PeelState

__all__ = [
    "SubroundOutcome",
    "drop_edges",
    "peel_subround",
    "remove_hyperedges",
    "reseed_frontier",
]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class SubroundOutcome:
    """What one synchronous removal step did.

    Attributes
    ----------
    removable:
        Vertices peeled this step.
    num_dying:
        Edges killed this step.
    touched:
        Unique endpoints of the killed edges (only populated when the caller
        asked for frontier collection; empty otherwise).
    examined:
        Vertex inspections performed (the work term).
    """

    removable: np.ndarray
    num_dying: int
    touched: np.ndarray
    examined: int

    @property
    def num_removed(self) -> int:
        """Vertices peeled this step."""
        return int(self.removable.size)


def peel_subround(
    kernel: PeelingKernel,
    state: PeelState,
    k: int,
    round_index: int,
    *,
    candidates: Optional[np.ndarray] = None,
    collect_touched: bool = False,
    edge_effect: Optional[EdgeEffect] = None,
    arena: Optional[RoundArena] = None,
) -> SubroundOutcome:
    """Run one synchronous removal step on ``state`` and return its outcome.

    Parameters
    ----------
    kernel:
        Backend supplying the vectorized primitives.
    state:
        Working state; mutated in place.
    k:
        Degree threshold — vertices of degree ``< k`` are removed.
    round_index:
        Value stamped into the peel-round arrays for everything removed now.
    candidates:
        Restrict examination to these vertices (frontier schedules, subtable
        members); ``None`` examines every live vertex.
    collect_touched:
        Deduplicate the endpoints of killed edges into ``touched`` (needed to
        seed the next frontier; skipped otherwise since ``unique`` costs a
        sort).
    edge_effect:
        Optional hook fired with the killed edge indices after degrees are
        scattered — the seam where IBLT-style payload removal plugs into the
        same inner loop.
    arena:
        Optional :class:`~repro.kernels.arena.RoundArena`; when given, the
        candidates path builds its removable mask in a reused scratch flag
        (cleared before returning) instead of allocating a fresh
        ``zeros(n)`` every subround.

    Notes
    -----
    Backends may expose an optional ``fused_subround`` hook (see
    :class:`~repro.kernels.base.PeelingKernel`) collapsing the whole
    sequence into one compiled pass; it is tried first and may decline
    (return ``None``) to fall back to the primitive-by-primitive path
    below.  The reference NumPy backend has no such hook, so its path is
    unchanged.
    """
    fused = getattr(kernel, "fused_subround", None)
    if fused is not None:
        outcome = fused(
            state,
            k,
            round_index,
            candidates=candidates,
            collect_touched=collect_touched,
            edge_effect=edge_effect,
        )
        if outcome is not None:
            return outcome
    removable, removable_mask, examined = kernel.find_removable(
        state, k, candidates=candidates
    )
    if removable.size == 0:
        return SubroundOutcome(removable, 0, _EMPTY, examined)
    kernel.kill_vertices(state, removable, round_index)
    arena_mask = removable_mask is None and arena is not None
    if removable_mask is None:
        if arena_mask:
            removable_mask = arena.flag("subround/removable_mask", state.num_vertices)
            removable_mask[removable] = True
        else:
            removable_mask = kernel.make_mask(state.num_vertices, removable)
    dying = kernel.find_dying_edges(state, removable_mask)
    if arena_mask:
        # Restore the arena flag's all-False contract by clearing only the
        # entries set above (never an O(n) re-zeroing).
        removable_mask[removable] = False
    touched: Optional[np.ndarray] = _EMPTY
    if dying.size:
        touched = kernel.kill_edges(
            state,
            dying,
            round_index,
            collect_touched=collect_touched,
            edge_effect=edge_effect,
        )
    return SubroundOutcome(
        removable, int(dying.size), touched if touched is not None else _EMPTY, examined
    )


def reseed_frontier(
    kernel: PeelingKernel,
    state: PeelState,
    dirty: np.ndarray,
) -> np.ndarray:
    """Reseed ``state.frontier`` from a set of dirty vertices and return it.

    After churn mutates the graph under a checkpointed fixed point, only the
    vertices whose degree changed (``dirty``) can become newly removable —
    the fixed point is monotone everywhere else.  This primitive installs
    exactly those (deduplicated, live) vertices as the frontier so a resumed
    frontier schedule examines churn-proportional work instead of the whole
    vertex set.

    Backends may expose an optional ``reseed_frontier(state, dirty)`` hook
    (see :class:`~repro.kernels.base.PeelingKernel`); backends without one
    (the compiled tiers decline-to-generic) fall back to the NumPy path
    below, which is the reference semantics.
    """
    hook = getattr(kernel, "reseed_frontier", None)
    if hook is not None:
        return hook(state, dirty)
    dirty = np.unique(np.asarray(dirty, dtype=np.int64))
    state.frontier = dirty[state.vertex_alive[dirty]] if dirty.size else dirty
    return state.frontier


def drop_edges(
    kernel: PeelingKernel,
    state: PeelState,
    edge_ids: np.ndarray,
) -> np.ndarray:
    """Delete edges from a (possibly checkpointed) state as *churn*, not peeling.

    The edges are marked dead and their endpoints' degrees decremented, but
    their peel-round stamp is the :data:`~repro.core.results.DROPPED`
    sentinel, not a round number — these edges were removed by the mutation
    stream, not by the process, so they appear in neither the rounds
    accounting nor the core masks.  Returns the unique endpoints of the
    dropped edges (int64): exactly the dirty-vertex set to hand to
    :func:`reseed_frontier` / ``engine.resume``.  Already-dead edges are
    ignored, so callers can pass raw churn ids without filtering.
    """
    edge_ids = np.unique(np.asarray(edge_ids, dtype=np.int64))
    live = edge_ids[state.edge_alive[edge_ids]] if edge_ids.size else edge_ids
    if live.size == 0:
        return _EMPTY
    state.edge_alive[live] = False
    state.edge_peel_round[live] = DROPPED
    state.edges_remaining -= int(live.size)
    endpoints = state.edges[live].reshape(-1)
    kernel.scatter_degree_updates(state.degrees, endpoints)
    return kernel.unique(endpoints).astype(np.int64, copy=False)


def remove_hyperedges(
    kernel: PeelingKernel,
    cells: np.ndarray,
    counts: np.ndarray,
    deltas: np.ndarray,
    payloads: Sequence[Tuple[np.ndarray, np.ndarray]] = (),
) -> None:
    """Scatter-remove a batch of hyperedges given their endpoint matrix.

    ``cells`` has shape ``(b, r)`` — row ``i`` lists the endpoints (cells) of
    edge (key) ``i``.  For every endpoint column the per-edge ``deltas`` are
    subtracted from ``counts`` and every ``(target, values)`` payload pair is
    XORed into ``target`` — for an IBLT, ``(key_sum, keys)`` and
    ``(check_sum, checks)``.  With empty ``payloads`` and unit deltas this is
    exactly the degree update of k-core peeling; the XOR payloads are the
    only difference between the two processes, which is the paper's point.

    Backends may expose an optional ``fused_remove_hyperedges`` hook (see
    :class:`~repro.kernels.base.PeelingKernel`) handling the whole batch —
    count scatter plus every XOR payload — in one compiled pass; it is
    tried first and may decline (return falsy) to fall back to the
    per-column scatter loop below.
    """
    fused = getattr(kernel, "fused_remove_hyperedges", None)
    if fused is not None and fused(cells, counts, deltas, payloads):
        return
    for j in range(cells.shape[1]):
        column = cells[:, j]
        kernel.scatter_sub(counts, column, deltas)
        for target, values in payloads:
            kernel.scatter_xor(target, column, values)
