"""The kernel-backend protocol: the vectorized primitives of one peel round.

Every round-synchronous schedule in the paper — parallel k-core peeling,
subtable peeling, flat and subtable IBLT recovery — is the same process:
*select* removable vertices (cells), *kill* their incident edges (keys), and
*scatter* the degree (count) updates back, optionally with a payload side
effect per killed edge (the IBLT decoders XOR the recovered key and its
checksum out of the key's other cells).  A :class:`PeelingKernel` supplies
exactly those primitives, so the engines contain only schedule logic and a
backend (NumPy today, Numba when importable, CUDA/Triton some day) can be
swapped under all of them at once via the kernel registry.

Backends other than the reference NumPy implementation must be *bit-exact*:
the parity suite pins round counts, work and conflict accounting of every
engine across kernels.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.kernels.state import PeelState

__all__ = ["PeelingKernel", "EdgeEffect"]


EdgeEffect = Callable[[np.ndarray], None]
"""Per-round side-effect hook: called with the indices of the edges killed
this (sub)round, after degrees have been scattered.  ``None`` for pure k-core
peeling; payload-carrying processes (erasure symbols, XOR clauses) hook their
removal here."""


@runtime_checkable
class PeelingKernel(Protocol):
    """Backend of vectorized round primitives shared by all peeling engines.

    Optional fused hooks
    --------------------
    Compiled backends may additionally provide any of the following; they
    are *not* part of the runtime-checkable protocol (a plain-NumPy backend
    must stay a valid kernel without them) and are discovered by
    ``getattr`` at dispatch time:

    ``fused_subround(state, k, round_index, *, candidates=None,
    collect_touched=False, edge_effect=None) -> Optional[SubroundOutcome]``
        One compiled pass replacing the whole select → kill-vertices →
        kill-edges → scatter sequence of
        :func:`~repro.kernels.rounds.peel_subround`.  Must be bit-exact
        with the three-call reference path (same removable/dying sets,
        same stamps, same accounting) and may return ``None`` to decline a
        configuration it does not implement (e.g. a state without the CSR
        incidence attached), in which case the caller falls back to the
        primitive-by-primitive path.

    ``fused_remove_hyperedges(cells, counts, deltas, payloads) -> bool``
        One compiled pass replacing the per-column scatter loop of
        :func:`~repro.kernels.rounds.remove_hyperedges` (the IBLT XOR
        removal).  Returns ``True`` when it handled the request, ``False``
        to decline (unexpected payload shape/dtypes) and fall back.

    ``warmup() -> None``
        Force any one-time JIT / shared-library compilation on tiny inputs
        so benchmark harnesses can pay (and report) the compile cost
        outside the timed region.

    ``reseed_frontier(state, dirty) -> np.ndarray``
        Resume primitive: replace ``state.frontier`` with the deduplicated
        live members of ``dirty`` (the vertices whose degree changed under
        churn) and return the new frontier, so a resumed schedule examines
        churn-proportional work.  Backends without the hook decline to the
        generic NumPy fallback in :func:`~repro.kernels.rounds.reseed_frontier`
        — the same decline-to-generic contract as the fused hooks.
    """

    name: str

    # ------------------------------------------------------------------ #
    # round primitives over PeelState
    # ------------------------------------------------------------------ #
    def find_removable(
        self, state: PeelState, k: int, *, candidates: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
        """Select the vertices to peel this (sub)round.

        With ``candidates=None`` every live vertex is examined (full scan);
        otherwise only the live members of ``candidates``.  Returns
        ``(removable, removable_mask, examined)`` where ``removable_mask`` is
        a boolean mask over all vertices (``None`` when the candidate path
        did not need to build one) and ``examined`` is the number of vertex
        inspections performed — the work term of the cost model.
        """
        ...

    def make_mask(self, size: int, indices: np.ndarray) -> np.ndarray:
        """Boolean mask of length ``size`` with ``indices`` set True."""
        ...

    def kill_vertices(self, state: PeelState, removable: np.ndarray, round_index: int) -> None:
        """Mark ``removable`` dead and stamp their peel round."""
        ...

    def find_dying_edges(self, state: PeelState, removable_mask: np.ndarray) -> np.ndarray:
        """Indices of live edges with at least one endpoint in ``removable_mask``."""
        ...

    def kill_edges(
        self,
        state: PeelState,
        dying: np.ndarray,
        round_index: int,
        *,
        collect_touched: bool = False,
        edge_effect: Optional[EdgeEffect] = None,
    ) -> Optional[np.ndarray]:
        """Kill ``dying`` edges, scatter degree updates, apply the edge effect.

        Returns the unique endpoints of the killed edges when
        ``collect_touched`` (the frontier schedule's candidate seed), else
        ``None`` so non-frontier schedules skip the dedup entirely.
        """
        ...

    def refresh_frontier(self, state: PeelState, touched: Optional[np.ndarray]) -> None:
        """Replace ``state.frontier`` with the live members of ``touched``."""
        ...

    # ------------------------------------------------------------------ #
    # scatter primitives (the inner loop of edge removal)
    # ------------------------------------------------------------------ #
    def scatter_degree_updates(
        self, degrees: np.ndarray, endpoints: np.ndarray, amount: int = 1
    ) -> None:
        """Unbuffered ``degrees[endpoints] -= amount`` with repeat-safe semantics."""
        ...

    def scatter_sub(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        """Unbuffered ``target[indices] -= values`` (per-index values)."""
        ...

    def scatter_xor(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        """Unbuffered ``target[indices] ^= values`` (per-index values)."""
        ...

    def unique(self, values: np.ndarray) -> np.ndarray:
        """Sorted unique values (deduplicates killed-edge endpoints into
        frontier seeds)."""
        ...

    # ------------------------------------------------------------------ #
    # IBLT cell selection (find_removable's analogue on cell arrays)
    # ------------------------------------------------------------------ #
    def pure_cells(
        self,
        count: np.ndarray,
        key_sum: np.ndarray,
        check_sum: np.ndarray,
        checksum_fn: Callable[[np.ndarray], np.ndarray],
        *,
        signed: bool,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        """Absolute indices of pure cells within ``[start, stop)``.

        A cell is pure when its count is ``+1`` (or ``±1`` if ``signed``),
        its key field is non-zero and ``checksum_fn`` of the key field
        matches the checksum field.
        """
        ...

    # ------------------------------------------------------------------ #
    # sequential schedule (the worklist baseline)
    # ------------------------------------------------------------------ #
    def sequential_peel(
        self,
        state: PeelState,
        k: int,
        incidence_ptr: np.ndarray,
        incidence_edges: np.ndarray,
    ) -> Tuple[np.ndarray, int, int]:
        """Greedy one-vertex-at-a-time peeling to the fixed point.

        Mutates ``state`` in place and returns ``(peel_order, work, steps)``:
        the edge indices in removal order, the number of worklist pops, and
        the number of vertices actually removed.
        """
        ...
