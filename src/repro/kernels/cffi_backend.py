"""C kernel backend: fused peel rounds compiled on demand with the system cc.

This is the second compiled tier next to the Numba backend.  It carries no
package dependency beyond :mod:`cffi` (ABI mode — no ``ffi.compile`` build
isolation, no setuptools): the C source below is written into a build
directory, compiled once with the system C compiler into a hash-named shared
library, and ``dlopen``-ed.  Recompiles happen only when the source or flag
set changes; repeat runs reuse the cached ``.so``.

Compilation first tries ``-fopenmp`` (the one OpenMP loop — the disjoint
vertex-kill stamp — is race-free); when the toolchain lacks OpenMP the build
falls back to a portable serial binary with identical results, so the
backend works on any machine with *a* C compiler.

Like every backend, this one must stay bit-exact with the NumPy reference:
the fused subround reproduces the reference path's removable order
(ascending full scan / stable candidate order), dying-edge order
(ascending), stamp values and degree arithmetic, and the parity suite pins
it against the golden fingerprints.  Everything the C tier does not
implement (``pure_cells``, the sequential worklist, frontier maintenance)
is inherited from :class:`~repro.kernels.numpy_backend.NumpyKernel`.

The :mod:`repro.kernels` package declares this backend lazily as
``"cffi"``; the loader runs :func:`ensure_library` so a missing compiler or
a failed build surfaces as a clear
:class:`~repro.kernels.registry.KernelUnavailableError` instead of an
import-time crash.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.base import EdgeEffect
from repro.kernels.numpy_backend import NumpyKernel
from repro.kernels.rounds import SubroundOutcome
from repro.kernels.state import PeelState

__all__ = ["CffiKernel", "ensure_library"]

_EMPTY = np.empty(0, dtype=np.int64)

_CDEF = """
int repro_fused_subround(
    const int64_t *edges, int64_t m, int64_t r,
    const int64_t *inc_ptr, const int64_t *inc_edges,
    int64_t *degrees, int64_t n,
    uint8_t *vertex_alive, uint8_t *edge_alive,
    int64_t *vertex_round, int64_t *edge_round,
    const int64_t *candidates, int64_t num_candidates, int64_t use_candidates,
    int64_t k, int64_t round_index,
    int64_t *removable_out, int64_t *dying_out, int64_t *stats_out);
int repro_fused_subround_u32(
    const uint32_t *edges, int64_t m, int64_t r,
    const int32_t *inc_ptr, const uint32_t *inc_edges,
    int32_t *degrees, int64_t n,
    uint8_t *vertex_alive, uint8_t *edge_alive,
    int32_t *vertex_round, int32_t *edge_round,
    const int64_t *candidates, int64_t num_candidates, int64_t use_candidates,
    int64_t k, int64_t round_index,
    int64_t *removable_out, int64_t *dying_out, int64_t *stats_out);
void repro_remove_hyperedges(
    const int64_t *cells, int64_t b, int64_t r,
    int64_t *counts, const int64_t *deltas,
    uint64_t *key_sum, const uint64_t *keys,
    uint64_t *check_sum, const uint64_t *checks);
void repro_scatter_sub_i64(
    int64_t *target, const int64_t *indices, const int64_t *values,
    int64_t count);
void repro_scatter_xor_u64(
    uint64_t *target, const int64_t *indices, const uint64_t *values,
    int64_t count);
void repro_scatter_sub_scalar_i64(
    int64_t *target, const int64_t *indices, int64_t count, int64_t amount);
void repro_scatter_sub_scalar_i32(
    int32_t *target, const uint32_t *indices, int64_t count, int64_t amount);
"""

_SOURCE = """
#include <stdint.h>
#include <stdlib.h>

/* One fused find/kill/scatter subround; see peel_subround for semantics.
 * Buffers removable_out (>= scan size), dying_out (>= m) and stats_out
 * ([num_removable, num_dying, examined]) are caller-allocated.  Returns
 * nonzero (before mutating anything) if the scratch allocation fails.
 *
 * The body is an X-macro instantiated once per id layout: the wide int64
 * layout and the compact layout (uint32 edge ids, int32 CSR pointers /
 * degrees / peel rounds).  Candidates and the output index buffers stay
 * int64 in both so the Python wrapper marshals one shape of scratch.
 * Phase notes (identical in both instantiations):
 *   1. removable selection — ascending full scan / stable candidate order,
 *      matching the reference backend;
 *   2. vertex kills — disjoint indices, so the omp loop is race-free
 *      (_Pragma is ignored by a non-OpenMP build);
 *   3. dying edges via the CSR incidence — marking costs work proportional
 *      to the removals, the compaction scan yields the ascending edge
 *      order of the reference flatnonzero;
 *   4. edge kills + degree scatter — subtraction commutes, so any order is
 *      bit-identical to the reference scatter.
 * Stamped round indices are bounded by the removals (every stamping round
 * removed a vertex), so they always fit ROUND_T. */
#define DEFINE_FUSED_SUBROUND(NAME, EDGE_T, PTR_T, DEG_T, ROUND_T) \\
int NAME( \\
    const EDGE_T *edges, int64_t m, int64_t r, \\
    const PTR_T *inc_ptr, const EDGE_T *inc_edges, \\
    DEG_T *degrees, int64_t n, \\
    uint8_t *vertex_alive, uint8_t *edge_alive, \\
    ROUND_T *vertex_round, ROUND_T *edge_round, \\
    const int64_t *candidates, int64_t num_candidates, int64_t use_candidates, \\
    int64_t k, int64_t round_index, \\
    int64_t *removable_out, int64_t *dying_out, int64_t *stats_out) \\
{ \\
    uint8_t *mark = (uint8_t *)calloc((size_t)m, 1); \\
    if (mark == NULL) { \\
        return 1; \\
    } \\
    int64_t total = use_candidates ? num_candidates : n; \\
    int64_t num_removable = 0; \\
    int64_t examined = 0; \\
    for (int64_t i = 0; i < total; i++) { \\
        int64_t v = use_candidates ? candidates[i] : i; \\
        if (!vertex_alive[v]) { \\
            continue; \\
        } \\
        examined++; \\
        if (degrees[v] < k) { \\
            removable_out[num_removable++] = v; \\
        } \\
    } \\
    stats_out[0] = num_removable; \\
    stats_out[1] = 0; \\
    stats_out[2] = examined; \\
    if (num_removable == 0) { \\
        free(mark); \\
        return 0; \\
    } \\
    _Pragma("omp parallel for") \\
    for (int64_t i = 0; i < num_removable; i++) { \\
        int64_t v = removable_out[i]; \\
        vertex_alive[v] = 0; \\
        vertex_round[v] = (ROUND_T)round_index; \\
    } \\
    for (int64_t i = 0; i < num_removable; i++) { \\
        int64_t v = removable_out[i]; \\
        for (int64_t idx = inc_ptr[v]; idx < inc_ptr[v + 1]; idx++) { \\
            int64_t e = (int64_t)inc_edges[idx]; \\
            if (edge_alive[e]) { \\
                mark[e] = 1; \\
            } \\
        } \\
    } \\
    int64_t num_dying = 0; \\
    for (int64_t e = 0; e < m; e++) { \\
        if (mark[e]) { \\
            dying_out[num_dying++] = e; \\
        } \\
    } \\
    free(mark); \\
    stats_out[1] = num_dying; \\
    for (int64_t i = 0; i < num_dying; i++) { \\
        int64_t e = dying_out[i]; \\
        edge_alive[e] = 0; \\
        edge_round[e] = (ROUND_T)round_index; \\
        const EDGE_T *row = edges + e * r; \\
        for (int64_t j = 0; j < r; j++) { \\
            degrees[row[j]]--; \\
        } \\
    } \\
    return 0; \\
}

DEFINE_FUSED_SUBROUND(repro_fused_subround, int64_t, int64_t, int64_t, int64_t)
DEFINE_FUSED_SUBROUND(repro_fused_subround_u32, uint32_t, int32_t, int32_t, int32_t)

/* Fused IBLT removal: count deltas plus key/checksum XOR, one pass over the
 * (b, r) cell matrix.  Subtraction and XOR commute, so the row-major order
 * matches the reference path's column-major scatters bit for bit. */
void repro_remove_hyperedges(
    const int64_t *cells, int64_t b, int64_t r,
    int64_t *counts, const int64_t *deltas,
    uint64_t *key_sum, const uint64_t *keys,
    uint64_t *check_sum, const uint64_t *checks)
{
    for (int64_t i = 0; i < b; i++) {
        int64_t delta = deltas[i];
        uint64_t key = keys[i];
        uint64_t check = checks[i];
        const int64_t *row = cells + i * r;
        for (int64_t j = 0; j < r; j++) {
            int64_t c = row[j];
            counts[c] -= delta;
            key_sum[c] ^= key;
            check_sum[c] ^= check;
        }
    }
}

void repro_scatter_sub_i64(
    int64_t *target, const int64_t *indices, const int64_t *values,
    int64_t count)
{
    for (int64_t i = 0; i < count; i++) {
        target[indices[i]] -= values[i];
    }
}

void repro_scatter_xor_u64(
    uint64_t *target, const int64_t *indices, const uint64_t *values,
    int64_t count)
{
    for (int64_t i = 0; i < count; i++) {
        target[indices[i]] ^= values[i];
    }
}

void repro_scatter_sub_scalar_i64(
    int64_t *target, const int64_t *indices, int64_t count, int64_t amount)
{
    for (int64_t i = 0; i < count; i++) {
        target[indices[i]] -= amount;
    }
}

/* Compact-layout flavour of the scalar degree scatter: int32 degrees
 * indexed by uint32 endpoint ids (the batched lockstep engine's hot
 * update when the stacked state is compact). */
void repro_scatter_sub_scalar_i32(
    int32_t *target, const uint32_t *indices, int64_t count, int64_t amount)
{
    int32_t a = (int32_t)amount;
    for (int64_t i = 0; i < count; i++) {
        target[indices[i]] -= a;
    }
}
"""

_BASE_FLAGS = ["-O3", "-fPIC", "-shared"]
#: (suffix, extra flags) attempts, in preference order.
_FLAG_ATTEMPTS = (
    ("omp", ["-fopenmp"]),
    ("serial", ["-Wno-unknown-pragmas"]),
)

_FFI: Any = None
_LIB: Any = None
_LIB_PATH: Optional[Path] = None


def _build_dir() -> Path:
    """Build directory for the compiled library (override: REPRO_CBUILD_DIR)."""
    override = os.environ.get("REPRO_CBUILD_DIR")
    if override:
        return Path(override)
    root = Path(__file__).resolve().parents[3]
    return root / "_cbuild"


def _find_compiler() -> str:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    raise RuntimeError("no C compiler found (tried cc, gcc, clang)")


def _compile_library(build_dir: Path, compiler: str) -> Path:
    """Compile (or reuse) the shared library; returns its path."""
    digest = hashlib.sha256(
        ("\n".join([_SOURCE, _CDEF, " ".join(_BASE_FLAGS), compiler])).encode()
    ).hexdigest()[:16]
    build_dir.mkdir(parents=True, exist_ok=True)
    for suffix, _ in _FLAG_ATTEMPTS:
        cached = build_dir / f"repro_kernel_{digest}.{suffix}.so"
        if cached.exists():
            return cached
    source_path = build_dir / f"repro_kernel_{digest}.c"
    source_path.write_text(_SOURCE)
    errors = []
    for suffix, extra in _FLAG_ATTEMPTS:
        target = build_dir / f"repro_kernel_{digest}.{suffix}.so"
        tmp = target.with_suffix(f".tmp{os.getpid()}")
        cmd = [compiler, *_BASE_FLAGS, *extra, str(source_path), "-o", str(tmp)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            os.replace(tmp, target)  # atomic: concurrent builders converge
            return target
        tmp.unlink(missing_ok=True)
        errors.append(f"[{' '.join(cmd)}] {proc.stderr.strip()[:500]}")
    raise RuntimeError(
        "C kernel backend failed to compile:\n" + "\n".join(errors)
    )


def _self_test(ffi: Any, lib: Any) -> None:
    """Smoke-test the fresh library against hand-computed expectations.

    Every array whose pointer crosses into C is bound to a local for the
    duration of the call — ``arr.ctypes.data`` of a temporary would dangle
    by the time C dereferences it.
    """
    target = np.array([10, 20, 30], dtype=np.int64)
    idx = np.array([0, 2, 0], dtype=np.int64)
    vals = np.array([1, 2, 3], dtype=np.int64)
    lib.repro_scatter_sub_i64(
        ffi.cast("int64_t *", target.ctypes.data),
        ffi.cast("const int64_t *", idx.ctypes.data),
        ffi.cast("const int64_t *", vals.ctypes.data),
        3,
    )
    if not np.array_equal(target, [6, 20, 28]):
        raise RuntimeError(f"C scatter_sub self-test mismatch: {target.tolist()}")
    xt = np.array([0, 0], dtype=np.uint64)
    xidx = np.array([1, 1], dtype=np.int64)
    xvals = np.array([5, 3], dtype=np.uint64)
    lib.repro_scatter_xor_u64(
        ffi.cast("uint64_t *", xt.ctypes.data),
        ffi.cast("const int64_t *", xidx.ctypes.data),
        ffi.cast("const uint64_t *", xvals.ctypes.data),
        2,
    )
    if not np.array_equal(xt, [0, 6]):
        raise RuntimeError(f"C scatter_xor self-test mismatch: {xt.tolist()}")
    t32 = np.array([10, 20, 30], dtype=np.int32)
    i32 = np.array([0, 2, 0], dtype=np.uint32)
    lib.repro_scatter_sub_scalar_i32(
        ffi.cast("int32_t *", t32.ctypes.data),
        ffi.cast("const uint32_t *", i32.ctypes.data),
        3,
        2,
    )
    if not np.array_equal(t32, [6, 20, 28]):
        raise RuntimeError(
            f"C scatter_sub_scalar_i32 self-test mismatch: {t32.tolist()}"
        )


def ensure_library(force: bool = False) -> Path:
    """Compile (or reuse) and load the C library; returns its path.

    Raises on a missing cffi module, a missing compiler, a failed compile
    or a failed self-test — the lazy-registry loader converts any of those
    into a :class:`~repro.kernels.registry.KernelUnavailableError`.
    """
    global _FFI, _LIB, _LIB_PATH
    if _LIB is not None and not force:
        return _LIB_PATH  # type: ignore[return-value]
    import cffi  # deferred: optional dependency

    compiler = _find_compiler()
    try:
        path = _compile_library(_build_dir(), compiler)
    except OSError:
        # Unwritable default build dir (read-only checkout): fall back to tmp.
        path = _compile_library(
            Path(tempfile.gettempdir()) / "repro_cbuild", compiler
        )
    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    lib = ffi.dlopen(str(path))
    _self_test(ffi, lib)
    _FFI, _LIB, _LIB_PATH = ffi, lib, path
    return path


def _c_i64(arr: np.ndarray) -> bool:
    return arr.dtype == np.int64 and arr.flags.c_contiguous


def _c_arr(arr: np.ndarray, dtype) -> bool:
    return arr.dtype == dtype and arr.flags.c_contiguous


class CffiKernel(NumpyKernel):
    """cc-compiled kernel backend (bit-exact with :class:`NumpyKernel`)."""

    name = "cffi"

    def __init__(self) -> None:
        ensure_library()

    # ------------------------------------------------------------------ #
    # fused hooks
    # ------------------------------------------------------------------ #
    def fused_subround(
        self,
        state: PeelState,
        k: int,
        round_index: int,
        *,
        candidates: Optional[np.ndarray] = None,
        collect_touched: bool = False,
        edge_effect: Optional[EdgeEffect] = None,
    ) -> Optional[SubroundOutcome]:
        """One compiled pass for the whole subround; ``None`` declines.

        Declines (falling back to the primitive-by-primitive path) when the
        state has no CSR incidence attached, is edgeless, or carries
        unexpected dtypes/layouts.  Two compiled flavours cover the two id
        layouts — all-wide (int64 throughout) dispatches to
        ``repro_fused_subround``, all-compact (uint32 edge ids, int32
        pointers/degrees/rounds) to ``repro_fused_subround_u32``; a state
        mixing layouts declines.
        """
        if state.incidence_ptr is None or state.incidence_edges is None:
            return None
        if state.num_edges == 0:
            return None
        edges = state.edges
        degrees = state.degrees
        inc_ptr = state.incidence_ptr
        inc_edges = state.incidence_edges
        vertex_round = state.vertex_peel_round
        edge_round = state.edge_peel_round
        ffi, lib = _FFI, _LIB
        if (
            _c_i64(edges)
            and _c_i64(degrees)
            and _c_i64(inc_ptr)
            and _c_i64(inc_edges)
            and _c_i64(vertex_round)
            and _c_i64(edge_round)
        ):
            fn = lib.repro_fused_subround
            edge_t, ptr_t, word_t = "int64_t", "int64_t", "int64_t"
        elif (
            _c_arr(edges, np.uint32)
            and _c_arr(degrees, np.int32)
            and _c_arr(inc_ptr, np.int32)
            and _c_arr(inc_edges, np.uint32)
            and _c_arr(vertex_round, np.int32)
            and _c_arr(edge_round, np.int32)
        ):
            fn = lib.repro_fused_subround_u32
            edge_t, ptr_t, word_t = "uint32_t", "int32_t", "int32_t"
        else:
            return None
        use_candidates = candidates is not None
        examined_full = state.vertices_remaining
        cand = (
            np.ascontiguousarray(candidates, dtype=np.int64)
            if use_candidates
            else _EMPTY
        )
        scan = cand.shape[0] if use_candidates else state.num_vertices
        # The index scratch is int64 in both layouts; the arena (when the
        # engine supplied one) recycles it across rounds and trials.  Both
        # slices handed back in the outcome are .copy()'d, so reuse is safe.
        if state.arena is not None:
            removable_out = state.arena.take("cffi/removable", scan, np.int64)
            dying_out = state.arena.take("cffi/dying", state.num_edges, np.int64)
        else:
            removable_out = np.empty(scan, dtype=np.int64)
            dying_out = np.empty(state.num_edges, dtype=np.int64)
        stats = np.zeros(3, dtype=np.int64)
        status = fn(
            ffi.cast(f"const {edge_t} *", edges.ctypes.data),
            state.num_edges,
            edges.shape[1],
            ffi.cast(f"const {ptr_t} *", inc_ptr.ctypes.data),
            ffi.cast(f"const {edge_t} *", inc_edges.ctypes.data),
            ffi.cast(f"{word_t} *", degrees.ctypes.data),
            state.num_vertices,
            ffi.cast("uint8_t *", state.vertex_alive.ctypes.data),
            ffi.cast("uint8_t *", state.edge_alive.ctypes.data),
            ffi.cast(f"{word_t} *", vertex_round.ctypes.data),
            ffi.cast(f"{word_t} *", edge_round.ctypes.data),
            ffi.cast("const int64_t *", cand.ctypes.data),
            cand.shape[0],
            1 if use_candidates else 0,
            k,
            round_index,
            ffi.cast("int64_t *", removable_out.ctypes.data),
            ffi.cast("int64_t *", dying_out.ctypes.data),
            ffi.cast("int64_t *", stats.ctypes.data),
        )
        if status != 0:
            return None  # scratch allocation failed; nothing was mutated
        num_removable, num_dying, examined_cand = (int(x) for x in stats)
        examined = examined_cand if use_candidates else examined_full
        removable = removable_out[:num_removable].copy()
        if num_removable == 0:
            return SubroundOutcome(removable, 0, _EMPTY, examined)
        dying = dying_out[:num_dying].copy()
        state.vertices_remaining -= num_removable
        state.edges_remaining -= num_dying
        touched = _EMPTY
        if num_dying:
            if edge_effect is not None:
                edge_effect(dying)
            if collect_touched:
                touched = self.unique(state.edges[dying].reshape(-1))
        return SubroundOutcome(removable, num_dying, touched, examined)

    def fused_remove_hyperedges(
        self,
        cells: np.ndarray,
        counts: np.ndarray,
        deltas: np.ndarray,
        payloads: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> bool:
        """Compiled IBLT removal (count + key/checksum XOR); False declines."""
        if len(payloads) != 2 or counts.dtype != np.int64 or deltas.dtype != np.int64:
            return False
        (key_sum, keys), (check_sum, checks) = payloads
        for target, values in ((key_sum, keys), (check_sum, checks)):
            if target.dtype != np.uint64 or values.dtype != np.uint64:
                return False
        if not (counts.flags.c_contiguous and key_sum.flags.c_contiguous
                and check_sum.flags.c_contiguous):
            return False
        ffi, lib = _FFI, _LIB
        # Bind every (possibly copied) array to a local: a temporary's
        # ctypes.data pointer would dangle before C dereferences it.
        cells = np.ascontiguousarray(cells, dtype=np.int64)
        deltas = np.ascontiguousarray(deltas)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        checks = np.ascontiguousarray(checks, dtype=np.uint64)
        lib.repro_remove_hyperedges(
            ffi.cast("const int64_t *", cells.ctypes.data),
            cells.shape[0],
            cells.shape[1],
            ffi.cast("int64_t *", counts.ctypes.data),
            ffi.cast("const int64_t *", deltas.ctypes.data),
            ffi.cast("uint64_t *", key_sum.ctypes.data),
            ffi.cast("const uint64_t *", keys.ctypes.data),
            ffi.cast("uint64_t *", check_sum.ctypes.data),
            ffi.cast("const uint64_t *", checks.ctypes.data),
        )
        return True

    # ------------------------------------------------------------------ #
    # primitive overrides
    # ------------------------------------------------------------------ #
    def scatter_degree_updates(
        self, degrees: np.ndarray, endpoints: np.ndarray, amount: int = 1
    ) -> None:
        if _c_i64(degrees):
            endpoints = np.ascontiguousarray(endpoints, dtype=np.int64)
            _LIB.repro_scatter_sub_scalar_i64(
                _FFI.cast("int64_t *", degrees.ctypes.data),
                _FFI.cast("const int64_t *", endpoints.ctypes.data),
                endpoints.shape[0],
                amount,
            )
            return
        if _c_arr(degrees, np.int32):
            endpoints = np.ascontiguousarray(endpoints, dtype=np.uint32)
            _LIB.repro_scatter_sub_scalar_i32(
                _FFI.cast("int32_t *", degrees.ctypes.data),
                _FFI.cast("const uint32_t *", endpoints.ctypes.data),
                endpoints.shape[0],
                amount,
            )
            return
        super().scatter_degree_updates(degrees, endpoints, amount)

    def scatter_sub(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        if not (_c_i64(target) and values.dtype == np.int64):
            super().scatter_sub(target, indices, values)
            return
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values)
        _LIB.repro_scatter_sub_i64(
            _FFI.cast("int64_t *", target.ctypes.data),
            _FFI.cast("const int64_t *", indices.ctypes.data),
            _FFI.cast("const int64_t *", values.ctypes.data),
            indices.shape[0],
        )

    def scatter_xor(self, target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
        if not (
            target.dtype == np.uint64
            and target.flags.c_contiguous
            and values.dtype == np.uint64
        ):
            super().scatter_xor(target, indices, values)
            return
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values)
        _LIB.repro_scatter_xor_u64(
            _FFI.cast("uint64_t *", target.ctypes.data),
            _FFI.cast("const int64_t *", indices.ctypes.data),
            _FFI.cast("const uint64_t *", values.ctypes.data),
            indices.shape[0],
        )

    # ------------------------------------------------------------------ #
    # warm-up
    # ------------------------------------------------------------------ #
    def warmup(self) -> None:
        """Compile/load the library; run a toy fused subround per id layout."""
        ensure_library()
        layouts = (
            (np.int64, np.int64, np.int64),  # edges, ptr, rounds/degrees
            (np.uint32, np.int32, np.int32),
        )
        for edge_dtype, ptr_dtype, word_dtype in layouts:
            state = PeelState(
                edges=np.array([[0, 1]], dtype=edge_dtype),
                degrees=np.array([1, 1], dtype=word_dtype),
                vertex_alive=np.ones(2, dtype=bool),
                edge_alive=np.ones(1, dtype=bool),
                vertex_peel_round=np.full(2, -1, dtype=word_dtype),
                edge_peel_round=np.full(1, -1, dtype=word_dtype),
                vertices_remaining=2,
                edges_remaining=1,
                incidence_ptr=np.array([0, 1, 2], dtype=ptr_dtype),
                incidence_edges=np.array([0, 0], dtype=edge_dtype),
            )
            outcome = self.fused_subround(state, 2, 1)
            if outcome is None or outcome.num_removed != 2 or outcome.num_dying != 1:
                raise RuntimeError(
                    "cffi kernel warm-up subround returned wrong outcome "
                    f"for the {np.dtype(edge_dtype).name} edge layout"
                )
