"""The kernel-backend registry: select round primitives by name.

Mirrors the engine / decoder / backend registries built on
:class:`repro.utils.registry.Registry`.  ``"numpy"`` (the reference backend)
is always present; compiled backends (``"numba"``, ``"cffi"``) are
*declared lazily* (see :mod:`repro.kernels`): their names appear in
:func:`available_kernels` whenever the toolchain looks present, but the
heavy work — importing Numba, JIT-compiling, invoking the C compiler —
happens only on the first :func:`get_kernel` call.  A backend whose lazy
load fails raises :class:`KernelUnavailableError` naming the failing import
at *every* lookup (the failure is cached, the traceback is not re-paid),
instead of poisoning package import the way an eager ``import numba`` at
registration time would.

Engines and decoders accept either a registered name or a ready kernel
instance via :func:`get_kernel`, so a custom backend can be injected without
registering it globally.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from repro.kernels.base import PeelingKernel
from repro.utils.registry import Registry

__all__ = [
    "DEFAULT_KERNEL",
    "KernelFactory",
    "KernelUnavailableError",
    "register_kernel",
    "register_lazy_kernel",
    "unregister_kernel",
    "get_kernel",
    "available_kernels",
    "ready_kernels",
]

DEFAULT_KERNEL = "numpy"
"""Kernel used when the caller does not name one (the reference backend)."""

KernelFactory = Callable[[], PeelingKernel]
"""A zero-argument callable (usually the backend class) building a kernel."""

KernelLoader = Callable[[], KernelFactory]
"""A zero-argument callable performing a backend's one-time heavy setup
(import, JIT/C compilation) and returning its factory.  Raising any
exception marks the backend unavailable; the error message is cached and
re-raised as :class:`KernelUnavailableError` on every later lookup."""


class KernelUnavailableError(RuntimeError):
    """A declared kernel backend failed its one-time load (import/compile).

    The message names the backend and the underlying failure, so
    ``get_kernel("numba")`` on a present-but-broken Numba install tells the
    caller exactly which import blew up instead of surfacing an opaque
    registry miss — and the package import itself never pays (or propagates)
    the broken dependency.
    """


_KERNELS: Registry[KernelFactory] = Registry("kernel")
#: Declared-but-not-yet-loaded backends: name -> loader.
_LAZY: Dict[str, KernelLoader] = {}
#: Backends whose loader already failed: name -> cached error message.
_BROKEN: Dict[str, str] = {}


def register_kernel(name: str, factory: KernelFactory, *, overwrite: bool = False) -> None:
    """Register a kernel backend factory under ``name``.

    Parameters
    ----------
    name:
        Registry key; the string callers pass as ``kernel=`` (and the CLI's
        ``--kernel``).
    factory:
        Backend class or zero-argument callable returning an object
        satisfying :class:`~repro.kernels.base.PeelingKernel`.
    overwrite:
        Allow replacing an existing entry (default False).
    """
    if overwrite:
        _LAZY.pop(name, None)
        _BROKEN.pop(name, None)
    elif name in _LAZY:
        raise ValueError(
            f"kernel {name!r} is already registered (lazily); "
            "pass overwrite=True to replace it"
        )
    _KERNELS.register(name, factory, overwrite=overwrite)


def register_lazy_kernel(name: str, loader: KernelLoader, *, overwrite: bool = False) -> None:
    """Declare a backend whose import/compile cost is deferred to first use.

    ``loader`` runs at most once, on the first :func:`get_kernel` lookup of
    ``name``; on success its returned factory is promoted into the eager
    registry, on failure the error is cached and every subsequent lookup
    raises :class:`KernelUnavailableError` with the original cause's message.
    """
    if not isinstance(name, str) or not name:
        raise TypeError(f"kernel name must be a non-empty string, got {name!r}")
    if not callable(loader):
        raise TypeError(f"kernel loader must be callable, got {loader!r}")
    taken = name in _LAZY or name in _KERNELS.names()
    if taken and not overwrite:
        raise ValueError(
            f"kernel {name!r} is already registered; pass overwrite=True to replace it"
        )
    if overwrite and name in _KERNELS.names():
        _KERNELS.unregister(name)
    _BROKEN.pop(name, None)
    _LAZY[name] = loader


def unregister_kernel(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests); unknown names raise."""
    known = False
    if name in _LAZY:
        del _LAZY[name]
        known = True
    if _BROKEN.pop(name, None) is not None:
        known = True
    if name in _KERNELS.names():
        _KERNELS.unregister(name)
        known = True
    if not known:
        # Re-raise the registry's own unknown-name error for a uniform message.
        _KERNELS.unregister(name)


def _load_lazy(name: str) -> KernelFactory:
    """Run (or replay the outcome of) ``name``'s one-time loader."""
    if name in _BROKEN:
        raise KernelUnavailableError(_BROKEN[name])
    loader = _LAZY.pop(name)
    try:
        factory = loader()
    except Exception as exc:  # noqa: BLE001 - any load failure must be named
        message = (
            f"kernel backend {name!r} is registered but failed to load: "
            f"{type(exc).__name__}: {exc}"
        )
        _BROKEN[name] = message
        raise KernelUnavailableError(message) from exc
    _KERNELS.register(name, factory, overwrite=True)
    return factory


def get_kernel(kernel: Union[str, PeelingKernel, None] = None) -> PeelingKernel:
    """Resolve ``kernel`` to a backend instance.

    Accepts a registered name, an already-built kernel instance (returned
    as-is), or ``None`` for the default backend.  Unknown names raise
    ``ValueError`` listing the registered names; declared backends whose
    lazy load failed raise :class:`KernelUnavailableError` naming the cause.
    """
    if kernel is None:
        kernel = DEFAULT_KERNEL
    if isinstance(kernel, str):
        if kernel in _LAZY or kernel in _BROKEN:
            return _load_lazy(kernel)()
        return _KERNELS.get(kernel)()
    if isinstance(kernel, PeelingKernel):
        return kernel
    raise TypeError(
        f"kernel must be a registered name or a PeelingKernel instance, got {kernel!r}"
    )


def available_kernels() -> Tuple[str, ...]:
    """Sorted names of every *declared* kernel backend.

    Includes lazily-declared compiled backends that have not been probed
    yet; resolving one of those may still raise
    :class:`KernelUnavailableError` (use :func:`ready_kernels` for the
    probed subset).  Backends whose load already failed are excluded.
    """
    names = set(_KERNELS.names()) | set(_LAZY)
    return tuple(sorted(names))


def ready_kernels() -> Tuple[str, ...]:
    """Sorted names of every backend that actually resolves right now.

    Probes lazily-declared backends (paying their one-time import/compile
    cost) and silently drops the ones that fail — callers that sweep "every
    kernel" (the benchmark harness) want the working set, not a crash on
    the first broken optional dependency.
    """
    ready = []
    for name in available_kernels():
        try:
            get_kernel(name)
        except KernelUnavailableError:
            continue
        ready.append(name)
    return tuple(ready)
