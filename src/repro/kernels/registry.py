"""The kernel-backend registry: select round primitives by name.

Mirrors the engine / decoder / backend registries built on
:class:`repro.utils.registry.Registry`.  ``"numpy"`` (the reference backend)
is always present; ``"numba"`` registers itself automatically when Numba is
importable (see :mod:`repro.kernels`).  Engines and decoders accept either a
registered name or a ready kernel instance via :func:`get_kernel`, so a
custom backend can be injected without registering it globally.
"""

from __future__ import annotations

from typing import Callable, Tuple, Union

from repro.kernels.base import PeelingKernel
from repro.utils.registry import Registry

__all__ = [
    "DEFAULT_KERNEL",
    "KernelFactory",
    "register_kernel",
    "unregister_kernel",
    "get_kernel",
    "available_kernels",
]

DEFAULT_KERNEL = "numpy"
"""Kernel used when the caller does not name one (the reference backend)."""

KernelFactory = Callable[[], PeelingKernel]
"""A zero-argument callable (usually the backend class) building a kernel."""

_KERNELS: Registry[KernelFactory] = Registry("kernel")


def register_kernel(name: str, factory: KernelFactory, *, overwrite: bool = False) -> None:
    """Register a kernel backend factory under ``name``.

    Parameters
    ----------
    name:
        Registry key; the string callers pass as ``kernel=`` (and the CLI's
        ``--kernel``).
    factory:
        Backend class or zero-argument callable returning an object
        satisfying :class:`~repro.kernels.base.PeelingKernel`.
    overwrite:
        Allow replacing an existing entry (default False).
    """
    _KERNELS.register(name, factory, overwrite=overwrite)


def unregister_kernel(name: str) -> None:
    """Remove ``name`` from the registry (mainly for tests); unknown names raise."""
    _KERNELS.unregister(name)


def get_kernel(kernel: Union[str, PeelingKernel, None] = None) -> PeelingKernel:
    """Resolve ``kernel`` to a backend instance.

    Accepts a registered name, an already-built kernel instance (returned
    as-is), or ``None`` for the default backend.  Unknown names raise
    ``ValueError`` listing the registered names.
    """
    if kernel is None:
        kernel = DEFAULT_KERNEL
    if isinstance(kernel, str):
        return _KERNELS.get(kernel)()
    if isinstance(kernel, PeelingKernel):
        return kernel
    raise TypeError(
        f"kernel must be a registered name or a PeelingKernel instance, got {kernel!r}"
    )


def available_kernels() -> Tuple[str, ...]:
    """Sorted names of every registered kernel backend."""
    return _KERNELS.names()
