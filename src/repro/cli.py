"""Command-line interface: reproduce any table or figure from a terminal.

Examples
--------
::

    python -m repro table1 --sizes 10000 20000 --densities 0.7 0.85 --trials 10
    python -m repro table2 --n 100000 --c 0.7
    python -m repro table3            # IBLT, r=3
    python -m repro table4            # IBLT, r=4
    python -m repro table5
    python -m repro table6
    python -m repro figure1
    python -m repro thresholds --k 2 --r 4
    python -m repro peel --n 100000 --c 0.7 --r 4 --k 2 --engine subtable
    python -m repro peel --n 100000 --kernel numpy
    python -m repro peel --n 1000000 --engine shm-parallel --workers 4
    python -m repro peel --n 100000 --incremental --churn 0.01
    python -m repro decode --num-cells 30000 --decoder flat
    python -m repro decode --incremental --churn 0.01
    python -m repro table1 --backend processes --workers 4
    python -m repro table1 --backend batched   # fuse same-cell trials
    python -m repro table1 --out table1.json --progress
    python -m repro table1 --out table1.json --resume   # skip finished cells
    python -m repro table3 --decoder flat
    python -m repro bench --quick
    python -m repro bench --compare BENCH_kernels.json --tolerance 0.5
    python -m repro serve --port 8641 --batch-window-ms 2
    python -m repro decode-client --port 8641 --requests 64 --expect-mean-batch-gt 1

Every sub-command prints the same layout the paper's tables use; the
defaults are the scaled-down settings documented in EXPERIMENTS.md.
Engines, IBLT decoders, kernel backends and execution backends are all
selected by their registry names (``--engine``, ``--decoder``, ``--kernel``,
``--backend``), so anything registered through :mod:`repro.engine`,
:mod:`repro.iblt`, :mod:`repro.kernels` or :mod:`repro.parallel` is
reachable from the command line.

Every experiment sub-command is one declarative sweep (:mod:`repro.sweeps`)
run by a single generic driver, so they all share ``--out`` (JSON sweep
artifact, checkpointed per cell), ``--resume`` (reuse completed cells from a
compatible artifact) and ``--progress`` (per-cell reporting on stderr).
``repro bench`` runs the kernel benchmark harness (:mod:`repro.bench`),
writes ``BENCH_kernels.json``, and can gate regressions against a prior run
via ``--compare``/``--tolerance``.  ``repro serve`` runs the long-lived
asyncio decode service (:mod:`repro.serve`) that coalesces concurrent
requests into fused ``decode_many`` batches, and ``repro decode-client``
load-drives one and verifies every response against a local decode.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.analysis import peeling_threshold
from repro.analysis.rounds import predict_rounds
from repro.bench import add_bench_arguments, run_bench_command
from repro.engine import available_engines
from repro.iblt import available_decoders
from repro.kernels import available_kernels
from repro.parallel.backend import available_backends, get_backend
from repro.sweeps import (
    AggregateFn,
    BatchTrialFn,
    SweepSpec,
    TrialFn,
    print_progress,
    run_sweep,
)

__all__ = ["build_parser", "main"]

# One sweep sub-command = spec + trial + aggregate + renderer, optionally
# followed by a cell-level batch trial (used by --backend batched); the
# generic driver (_run_sweep_command) supplies scheduling, artifacts and
# progress.
_RenderFn = Callable[[List[Any], argparse.Namespace], str]
SweepCommandParts = Union[
    Tuple[SweepSpec, TrialFn, AggregateFn, _RenderFn],
    Tuple[SweepSpec, TrialFn, AggregateFn, _RenderFn, BatchTrialFn],
]


def _add_backend_flags(parser: argparse.ArgumentParser) -> None:
    """Attach trial-dispatch flags shared by every trial-running sub-command."""
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="execution backend for independent trials (default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for pool backends (default: backend-specific)",
    )


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the flags every sweep-driven sub-command shares."""
    _add_backend_flags(parser)
    parser.add_argument(
        "--out",
        default=None,
        metavar="ARTIFACT.json",
        help=(
            "write a JSON sweep artifact here, checkpointed after every "
            "completed cell"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "reuse completed cells from the artifact at --out when its spec "
            "fingerprint matches; only missing cells are run"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-cell progress to stderr",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Parallel Peeling Algorithms' (SPAA 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="parallel peeling failures and rounds vs n")
    t1.add_argument("--sizes", type=int, nargs="+", default=[10_000, 20_000, 40_000])
    t1.add_argument("--densities", type=float, nargs="+", default=[0.7, 0.75, 0.8, 0.85])
    t1.add_argument("--trials", type=int, default=10)
    t1.add_argument("--r", type=int, default=4)
    t1.add_argument("--k", type=int, default=2)
    t1.add_argument("--seed", type=int, default=1)
    _add_sweep_flags(t1)

    t2 = sub.add_parser("table2", help="recurrence prediction vs experiment")
    t2.add_argument("--n", type=int, default=100_000)
    t2.add_argument("--c", type=float, default=0.7)
    t2.add_argument("--rounds", type=int, default=16)
    t2.add_argument("--trials", type=int, default=5)
    t2.add_argument("--seed", type=int, default=1)
    _add_sweep_flags(t2)

    parallel_decoders = tuple(n for n in available_decoders() if n != "serial")
    for name, default_r in (("table3", 3), ("table4", 4)):
        t = sub.add_parser(name, help=f"IBLT recovery/insertion with r={default_r}")
        t.add_argument("--num-cells", type=int, default=30_000)
        t.add_argument("--loads", type=float, nargs="+", default=[0.75, 0.83])
        t.add_argument("--threads", type=int, default=4096)
        t.add_argument(
            "--decoder",
            choices=parallel_decoders,
            default="subtable",
            help="parallel decoder to benchmark against serial recovery (default: subtable)",
        )
        t.add_argument("--seed", type=int, default=1)
        t.set_defaults(iblt_r=default_r)
        _add_sweep_flags(t)

    t5 = sub.add_parser("table5", help="subtable peeling subrounds vs n")
    t5.add_argument("--sizes", type=int, nargs="+", default=[10_000, 20_000, 40_000])
    t5.add_argument("--densities", type=float, nargs="+", default=[0.7, 0.75])
    t5.add_argument("--trials", type=int, default=10)
    t5.add_argument("--seed", type=int, default=1)
    _add_sweep_flags(t5)

    t6 = sub.add_parser("table6", help="subtable recurrence vs experiment")
    t6.add_argument("--n", type=int, default=100_000)
    t6.add_argument("--c", type=float, default=0.7)
    t6.add_argument("--rounds", type=int, default=7)
    t6.add_argument("--trials", type=int, default=5)
    t6.add_argument("--seed", type=int, default=1)
    _add_sweep_flags(t6)

    f1 = sub.add_parser("figure1", help="beta evolution near the threshold")
    f1.add_argument("--densities", type=float, nargs="+", default=[0.77, 0.772])
    f1.add_argument("--k", type=int, default=2)
    f1.add_argument("--r", type=int, default=4)
    _add_sweep_flags(f1)

    th = sub.add_parser("thresholds", help="print c*_{k,r} and round predictions")
    th.add_argument("--k", type=int, default=2)
    th.add_argument("--r", type=int, default=4)
    th.add_argument("--n", type=int, default=1_000_000)

    peel = sub.add_parser("peel", help="peel one random hypergraph and report rounds")
    peel.add_argument("--n", type=int, default=100_000)
    peel.add_argument("--c", type=float, default=0.7)
    peel.add_argument("--r", type=int, default=4)
    peel.add_argument("--k", type=int, default=2)
    peel.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="peeling engine (default: parallel)",
    )
    peel.add_argument(
        "--mode",
        choices=available_engines(),
        default=None,
        help="deprecated alias for --engine",
    )
    peel.add_argument(
        "--kernel",
        choices=available_kernels(),
        default=None,
        help="kernel backend for the round primitives (default: numpy)",
    )
    peel.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for intra-trial engines such as shm-parallel "
            "(default: all cores); rejected by engines that do not take one"
        ),
    )
    peel.add_argument("--seed", type=int, default=1)
    peel.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "after the full peel, drop a --churn fraction of edges from the "
            "resident state, resume from the dirty frontier, and verify the "
            "resumed result against a from-scratch peel of the mutated graph "
            "(requires a resumable engine: parallel or sequential)"
        ),
    )
    peel.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="edge fraction dropped before the resume (default: %(default)s)",
    )

    decode = sub.add_parser(
        "decode",
        help="decode one random IBLT and report rounds",
        description=(
            "Build one IBLT from random distinct keys and decode it with any "
            "registered decoder.  --incremental bootstraps a resident decode "
            "session, churns a --churn fraction of the keys, re-decodes "
            "incrementally (re-peeling only the dirty neighbourhood) and "
            "verifies the checkpoint bit-for-bit against a from-scratch "
            "decode of the mutated table, exiting non-zero on any mismatch."
        ),
    )
    decode.add_argument("--num-cells", type=int, default=30_000,
                        help="cells in the table, rounded up to a multiple of --r")
    decode.add_argument("--r", type=int, default=3)
    decode.add_argument("--load", type=float, default=0.75,
                        help="keys inserted as a fraction of the cell count")
    decode.add_argument(
        "--decoder",
        choices=available_decoders(),
        default="serial",
        help="IBLT decoder (default: serial)",
    )
    decode.add_argument(
        "--kernel",
        choices=available_kernels(),
        default=None,
        help="kernel backend forwarded to parallel decoders (default: numpy)",
    )
    decode.add_argument("--seed", type=int, default=1)
    decode.add_argument(
        "--incremental",
        action="store_true",
        help="bootstrap a decode session, churn keys, checkpoint incrementally, verify",
    )
    decode.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="key fraction replaced between bootstrap and checkpoint (default: %(default)s)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the async IBLT-decode service with micro-batching",
        description=(
            "Long-lived asyncio TCP server speaking the repro.serve frame "
            "protocol: concurrent decode requests are coalesced by "
            "(num_cells, r, layout, seed, signed) and flushed into fused "
            "IBLT.decode_many batches when --max-batch requests are waiting "
            "or the --batch-window-ms latency budget expires.  SIGINT/SIGTERM "
            "drain gracefully and print the metrics snapshot as JSON."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8641,
                       help="listening port; 0 binds an ephemeral port (default: %(default)s)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help=("latency budget: how long the first request of a batch "
                             "waits for peers before flushing (default: %(default)s)"))
    serve.add_argument("--max-batch", type=int, default=256,
                       help="flush a batch as soon as it holds this many requests")
    serve.add_argument("--max-pending", type=int, default=1024,
                       help="admitted-but-unanswered request bound (backpressure)")
    serve.add_argument("--executor-workers", type=int, default=1,
                       help="decode executor threads (default: 1, serial decodes)")
    serve.add_argument("--kernel", choices=available_kernels(), default=None,
                       help="kernel backend for the batched decoder (default: numpy)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening (for --port 0 scripts)")

    client = sub.add_parser(
        "decode-client",
        help="load-drive a running decode service and verify the results",
        description=(
            "Build a fleet of random same-geometry IBLTs, fire them at a "
            "repro serve instance concurrently, check every response "
            "bit-for-bit against a local decode(decoder='flat'), and print a "
            "JSON summary (throughput, latency percentiles, server stats)."
        ),
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--requests", type=int, default=32)
    client.add_argument("--connections", type=int, default=1,
                        help="TCP connections to spread the requests over")
    client.add_argument("--num-cells", type=int, default=240)
    client.add_argument("--r", type=int, default=3)
    client.add_argument("--load", type=float, default=0.6,
                        help=("keys inserted per table as a fraction of --num-cells; "
                              "the default stays comfortably under the r=3 peeling "
                              "threshold so decodes succeed (default: %(default)s)"))
    client.add_argument("--seed", type=int, default=1)
    client.add_argument("--no-verify", dest="verify", action="store_false",
                        help="skip the local flat-decode comparison (pure load mode)")
    client.add_argument("--expect-mean-batch-gt", type=float, default=None, metavar="X",
                        help=("exit non-zero unless the server's mean batch size "
                              "exceeds X (CI uses this to prove fusion engaged)"))

    bench = sub.add_parser(
        "bench",
        help="benchmark engines and decoders across kernel backends",
        description=(
            "Time peel/peel_many/IBLT decode for every engine × kernel "
            "combination and write the results to a JSON file "
            "(BENCH_kernels.json by default).  --compare diffs against a "
            "prior run and fails on regressions past --tolerance."
        ),
    )
    add_bench_arguments(bench)

    return parser


# --------------------------------------------------------------------- #
# The generic sweep driver and its per-command spec builders
# --------------------------------------------------------------------- #

def _build_table1(args: argparse.Namespace) -> SweepCommandParts:
    from repro.experiments import table1 as mod

    spec = mod.table1_spec(
        sizes=args.sizes, densities=args.densities, r=args.r, k=args.k,
        trials=args.trials, seed=args.seed,
    )
    return (
        spec,
        mod._table1_trial,
        mod._table1_aggregate,
        lambda rows, a: mod.format_table1(rows),
        mod._table1_batch_trial,
    )


def _build_table2(args: argparse.Namespace) -> SweepCommandParts:
    from repro.experiments import table2 as mod

    spec = mod.table2_spec(
        n=args.n, c=args.c, rounds=args.rounds, trials=args.trials, seed=args.seed
    )
    return (
        spec,
        mod._table2_trial,
        mod._table2_aggregate,
        lambda rows, a: mod.format_table2(rows[0], c=a.c),
    )


def _build_table34(args: argparse.Namespace) -> SweepCommandParts:
    from repro.experiments import table34 as mod
    from repro.parallel import ParallelMachine

    spec = mod.table34_spec(
        args.iblt_r,
        loads=tuple(args.loads),
        num_cells=args.num_cells,
        machine=ParallelMachine(num_threads=args.threads),
        decoder=args.decoder,
        seed=args.seed,
    )
    return spec, mod._table34_trial, mod._table34_aggregate, lambda rows, a: mod.format_table34(rows)


def _build_table5(args: argparse.Namespace) -> SweepCommandParts:
    from repro.experiments import table5 as mod

    spec = mod.table5_spec(
        sizes=args.sizes, densities=args.densities, trials=args.trials, seed=args.seed
    )
    return spec, mod._table5_trial, mod._table5_aggregate, lambda rows, a: mod.format_table5(rows)


def _build_table6(args: argparse.Namespace) -> SweepCommandParts:
    from repro.experiments import table6 as mod

    spec = mod.table6_spec(
        n=args.n, c=args.c, rounds=args.rounds, trials=args.trials, seed=args.seed
    )
    return (
        spec,
        mod._table6_trial,
        mod._table6_aggregate,
        lambda rows, a: mod.format_table6(rows[0], c=a.c),
    )


def _build_figure1(args: argparse.Namespace) -> SweepCommandParts:
    from repro.experiments import figure1 as mod

    spec = mod.figure1_spec(tuple(args.densities), k=args.k, r=args.r)
    return (
        spec,
        mod._figure1_trial,
        mod._figure1_aggregate,
        lambda rows, a: mod.format_figure1({s.c: s for s in rows}, k=a.k, r=a.r),
    )


_SWEEP_BUILDERS = {
    "table1": _build_table1,
    "table2": _build_table2,
    "table3": _build_table34,
    "table4": _build_table34,
    "table5": _build_table5,
    "table6": _build_table6,
    "figure1": _build_figure1,
}


def _run_sweep_command(args: argparse.Namespace) -> str:
    """Generic driver behind every experiment sub-command."""
    if args.resume and args.out is None:
        raise SystemExit("--resume requires --out (the artifact to resume from)")
    parts = _SWEEP_BUILDERS[args.command](args)
    spec, trial, aggregate, render = parts[:4]
    batch_trial = parts[4] if len(parts) > 4 else None
    with get_backend(args.backend, max_workers=args.workers) as backend:
        rows = run_sweep(
            spec,
            trial,
            aggregate,
            batch_trial=batch_trial,
            backend=backend,
            out=args.out,
            resume=args.resume,
            progress=print_progress if args.progress else None,
        )
    return render(rows, args)


def _run_thresholds(args: argparse.Namespace) -> str:
    c_star = peeling_threshold(args.k, args.r)
    lines = [f"c*_{{{args.k},{args.r}}} = {c_star:.6f}"]
    for c in (0.9 * c_star, 0.99 * c_star, 1.01 * c_star, 1.1 * c_star):
        prediction = predict_rounds(args.n, c, args.k, args.r)
        lines.append(
            f"  c = {c:.4f} ({prediction.regime:>8}): predicted rounds at n={args.n}: "
            f"{prediction.rounds:.0f}"
        )
    return "\n".join(lines)


def _run_peel(args: argparse.Namespace) -> Union[str, Tuple[str, int]]:
    from repro.engine import peel
    from repro.hypergraph import partitioned_hypergraph, random_hypergraph

    engine = args.engine or args.mode or "parallel"
    if engine == "subtable":
        n = args.n + (-args.n) % args.r
        graph = partitioned_hypergraph(n, args.c, args.r, seed=args.seed)
    else:
        graph = random_hypergraph(args.n, args.c, args.r, seed=args.seed)
    opts = {} if args.workers is None else {"num_workers": args.workers}
    if args.incremental:
        return _run_peel_incremental(args, engine, graph, opts)
    result = peel(graph, engine, k=args.k, kernel=args.kernel, **opts)
    lines = [result.summary()]
    prediction = predict_rounds(graph.num_vertices, args.c, args.k, args.r)
    lines.append(
        f"recurrence prediction: {prediction.rounds:.0f} rounds ({prediction.regime} threshold "
        f"c* = {prediction.threshold:.4f})"
    )
    return "\n".join(lines)


def _run_peel_incremental(args, engine, graph, opts) -> Tuple[str, int]:
    """The --incremental flow of ``repro peel``: peel, churn edges, resume, verify."""
    import numpy as np

    from repro.engine import peel, peel_resumable, resume
    from repro.hypergraph import hypergraph_from_edges
    from repro.kernels import drop_edges, get_kernel

    if engine not in ("parallel", "sequential"):
        raise SystemExit(
            f"--incremental requires a resumable engine (parallel or sequential), got {engine!r}"
        )
    result, state = peel_resumable(graph, engine, k=args.k, kernel=args.kernel, **opts)
    lines = [result.summary()]
    m = graph.num_edges
    drop_count = max(1, min(m, int(args.churn * m)))
    rng = np.random.default_rng(args.seed + 1)
    dropped = np.sort(rng.choice(m, size=drop_count, replace=False)).astype(np.int64)
    dirty = drop_edges(get_kernel(args.kernel), state, dropped)
    resumed = resume(state, dirty, engine, k=args.k, kernel=args.kernel, **opts)
    lines.append(
        f"churned {drop_count} of {m} edges ({drop_count / m:.2%}), "
        f"{dirty.size} dirty vertices"
    )
    lines.append("resumed: " + resumed.summary())
    keep = np.setdiff1d(np.arange(m, dtype=np.int64), dropped)
    mutated = hypergraph_from_edges(graph.num_vertices, graph.edges[keep])
    scratch = peel(mutated, engine, k=args.k, kernel=args.kernel, **opts)
    ok = bool(
        resumed.core_size == scratch.core_size
        and np.array_equal(resumed.core_vertex_mask, scratch.core_vertex_mask)
        and np.array_equal(resumed.core_edge_mask[keep], scratch.core_edge_mask)
    )
    lines.append(
        "verified: resumed core matches a from-scratch peel of the mutated graph"
        if ok
        else "MISMATCH: resumed core differs from a from-scratch peel of the mutated graph"
    )
    return "\n".join(lines), 0 if ok else 1


def _run_decode(args: argparse.Namespace) -> Union[str, Tuple[str, int]]:
    import numpy as np

    from repro.apps.sparse_recovery import random_distinct_keys
    from repro.iblt import IBLT

    num_cells = args.num_cells + (-args.num_cells) % args.r
    num_keys = max(1, int(args.load * num_cells))
    churn = max(1, min(num_keys, int(args.churn * num_keys)))
    pool = random_distinct_keys(num_keys + churn, seed=args.seed)
    keys = pool[:num_keys]
    table = IBLT(num_cells, args.r, layout="subtables", seed=args.seed)
    table.insert(keys)
    options = {} if args.kernel is None else {"kernel": args.kernel}
    if not args.incremental:
        result = table.decode(decoder=args.decoder, signed=True, **options)
        return (
            f"IBLT decode ({args.decoder}): {num_keys} keys in {num_cells} cells: "
            f"success={result.success} rounds={result.rounds} "
            f"recovered={np.asarray(result.recovered).size}"
        )
    bootstrap = table.decode(decoder=args.decoder, signed=True, incremental=True, **options)
    lines = [
        f"bootstrap decode ({args.decoder}): {num_keys} keys in {num_cells} cells: "
        f"success={bootstrap.success} rounds={bootstrap.rounds}"
    ]
    rng = np.random.default_rng(args.seed + 1)
    deleted = rng.choice(keys, size=churn, replace=False).astype(np.uint64)
    inserted = pool[num_keys:]
    table.delete(deleted)
    table.insert(inserted)
    incr = table.decode(decoder=args.decoder, signed=True, incremental=True, **options)
    lines.append(
        f"incremental checkpoint after churn of {churn} deletes + {inserted.size} inserts "
        f"({args.churn:.2%}): success={incr.success} "
        f"resumed_from_round={incr.resumed_from_round} "
        f"rounds_incremental={incr.rounds_incremental} cells_scanned={incr.cells_scanned}"
    )
    scratch = IBLT.from_bytes(table.to_bytes()).decode(
        decoder=args.decoder, signed=True, **options
    )
    ok = bool(
        bool(incr.success) == bool(scratch.success)
        and np.array_equal(
            np.sort(np.asarray(incr.recovered, dtype=np.uint64)),
            np.sort(np.asarray(scratch.recovered, dtype=np.uint64)),
        )
        and np.array_equal(
            np.sort(np.asarray(incr.removed, dtype=np.uint64)),
            np.sort(np.asarray(scratch.removed, dtype=np.uint64)),
        )
    )
    lines.append(
        "verified: checkpoint is bit-identical to a from-scratch decode of the mutated table"
        if ok
        else "MISMATCH: checkpoint differs from a from-scratch decode of the mutated table"
    )
    return "\n".join(lines), 0 if ok else 1


def _run_serve(args: argparse.Namespace) -> str:
    import asyncio
    import json

    from repro.serve.server import DecodeServer, run_server

    server = DecodeServer(
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch_size=args.max_batch,
        max_pending=args.max_pending,
        executor_workers=args.executor_workers,
        kernel=args.kernel,
    )

    def announce(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    snapshot = asyncio.run(
        run_server(server, port_file=args.port_file, announce=announce)
    )
    return json.dumps(snapshot, indent=2)


def _run_decode_client(args: argparse.Namespace) -> Tuple[str, int]:
    import asyncio
    import json

    from repro.serve.client import run_load

    if args.requests < 1:
        raise SystemExit("--requests must be >= 1")
    summary = asyncio.run(
        run_load(
            args.host,
            args.port,
            requests=args.requests,
            connections=args.connections,
            num_cells=args.num_cells,
            r=args.r,
            load=args.load,
            seed=args.seed,
            verify=args.verify,
        )
    )
    code = 0
    problems = []
    # decode_failures (tables whose 2-core was non-empty) are a property of
    # the workload, not the service: with --verify on, a failure that is
    # bit-identical to the local flat decode is correct service behaviour,
    # so only mismatches gate the exit code.
    if summary["mismatches"]:
        problems.append(
            f"{len(summary['mismatches'])} response(s) differ from the local flat decode"
        )
    if args.expect_mean_batch_gt is not None:
        mean_batch = summary.get("server_stats", {}).get("mean_batch_size", 0.0)
        if not mean_batch > args.expect_mean_batch_gt:
            problems.append(
                f"server mean batch size {mean_batch:.2f} is not > "
                f"{args.expect_mean_batch_gt} (fusion did not engage)"
            )
    if problems:
        summary["problems"] = problems
        code = 1
    return json.dumps(summary, indent=2), code


_DISPATCH = {
    **{name: _run_sweep_command for name in _SWEEP_BUILDERS},
    "thresholds": _run_thresholds,
    "peel": _run_peel,
    "decode": _run_decode,
    "bench": run_bench_command,
    "serve": _run_serve,
    "decode-client": _run_decode_client,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    result = _DISPATCH[args.command](args)
    output, code = result if isinstance(result, tuple) else (result, 0)
    print(output)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
