"""The asyncio TCP front door: ``repro serve``.

One :class:`DecodeServer` owns a listening socket, a
:class:`~repro.serve.batcher.MicroBatcher`, a single-thread decode
executor and a :class:`~repro.serve.metrics.ServeMetrics` instance.  Each
connection runs a read loop that admits frames one at a time (acquiring a
batcher slot *before* spawning the request task, so backpressure reaches
the socket) and fans requests out as tasks — which is exactly what lets
one connection's concurrent requests coalesce into a fused batch.

Error isolation: a malformed *request* (hostile table bytes, bad flags)
fails that request with an ``ERROR`` frame and the connection keeps
serving; an unframeable *stream* (bad length prefix, oversized frame,
unknown frame type) closes that connection — never the server.

Session requests (flags bit 1) take a different path from the batcher:
each connection keeps the latest shipment of every table geometry it has
sent plus that table's resident
:class:`~repro.iblt.incremental.IncrementalDecodeSession`; a repeated
shipment is diffed cell-by-cell against the resident copy, the delta is
applied to the session, and only the dirty neighbourhood is re-peeled.
Session requests are answered *in shipment order* (the read loop awaits
them inline rather than spawning a task — an old shipment applied after
a newer one would corrupt the resident state), with the numpy work still
offloaded to the decode executor.

Graceful shutdown (:meth:`DecodeServer.stop`, wired to SIGINT/SIGTERM by
:func:`run_server`): stop accepting, let in-flight requests finish,
drain the batcher, close connections, and dump the metrics snapshot.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple

import numpy as np

from repro.iblt.iblt import IBLT
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import ServeMetrics

__all__ = ["DecodeServer", "run_server"]


class DecodeServer:
    """Long-lived IBLT-decode service with micro-batching.

    Parameters
    ----------
    host, port:
        Listening address; ``port=0`` binds an ephemeral port (read it
        back from :attr:`port` after :meth:`start`).
    batch_window_ms:
        Latency budget of the coalescer in milliseconds (see
        :class:`MicroBatcher`).
    max_batch_size:
        Flush a group as soon as it holds this many requests.
    max_pending:
        Backpressure bound on admitted-but-unanswered requests.
    max_frame_bytes:
        Reject frames longer than this before allocating.
    executor_workers:
        Decode-executor threads (default 1: decodes stay serial, the
        event loop stays responsive).
    decoder, kernel:
        Batch decoder registry name (default ``"batched"``) and optional
        kernel backend forwarded to it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_window_ms: float = 2.0,
        max_batch_size: int = 256,
        max_pending: int = 1024,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        executor_workers: int = 1,
        decoder: str = "batched",
        kernel: Optional[str] = None,
    ) -> None:
        self.host = host
        self._requested_port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        self.metrics = ServeMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(executor_workers)), thread_name_prefix="repro-decode"
        )
        self.batcher = MicroBatcher(
            self._executor,
            batch_window=float(batch_window_ms) / 1e3,
            max_batch_size=max_batch_size,
            max_pending=max_pending,
            metrics=self.metrics,
            decoder=decoder,
            kernel=kernel,
        )
        self._decoder = decoder
        self._decode_options: Dict[str, Any] = {} if kernel is None else {"kernel": kernel}
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._admission: Optional[asyncio.Semaphore] = None  # created in start()
        self._max_pending = int(max_pending)
        self._stopping = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._admission = asyncio.Semaphore(self._max_pending)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: finish what was admitted, then tear down."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Connections notice `_stopping` and exit their read loops after
        # answering everything admitted; give them a bounded head start,
        # then cancel stragglers (idle keep-alive connections).
        await self.batcher.drain()
        if self._connections:
            done, pending = await asyncio.wait(list(self._connections), timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(list(pending))
        self._executor.shutdown(wait=True)

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot()

    # ------------------------------------------------------------------ #
    # per-connection machinery
    # ------------------------------------------------------------------ #
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()  # responses interleave; frames must not
        requests: Set[asyncio.Task] = set()
        # Resident incremental state, one entry per table geometry this
        # connection has shipped with the session flag.  The keyed value is
        # the latest shipment of that table, carrying its decode session.
        sessions: Dict[Tuple[int, int, str, int, bool], IBLT] = {}
        try:
            while not self._stopping:
                try:
                    frame_type, request_id, payload = await protocol.read_frame(
                        reader, max_frame_bytes=self.max_frame_bytes
                    )
                except asyncio.IncompleteReadError:
                    break  # clean EOF between frames
                except protocol.FrameError as exc:
                    self.metrics.observe_error()
                    await self._send(
                        writer, write_lock, protocol.FRAME_ERROR, 0, str(exc).encode()
                    )
                    break  # the stream is unframeable; this connection is done
                if frame_type == protocol.FRAME_DECODE_REQUEST:
                    # Admission control *before* spawning the request task:
                    # with max_pending requests unanswered this read loop
                    # suspends, stops pulling frames, and TCP flow control
                    # pushes the backpressure to the client.
                    await self._admission.acquire()
                    self.metrics.observe_request()
                    if payload and payload[0] & 2:
                        # Session requests mutate per-connection resident
                        # state, so they must apply in shipment order:
                        # answer inline instead of spawning a task.  The
                        # numpy work still runs on the decode executor.
                        try:
                            await self._handle_session_decode(
                                writer, write_lock, request_id, payload, sessions
                            )
                        finally:
                            self._admission.release()
                        continue
                    task = asyncio.ensure_future(
                        self._handle_decode(writer, write_lock, request_id, payload)
                    )
                    requests.add(task)
                    task.add_done_callback(requests.discard)
                    task.add_done_callback(lambda _t: self._admission.release())
                elif frame_type == protocol.FRAME_STATS_REQUEST:
                    body = json.dumps(self.metrics_snapshot()).encode()
                    await self._send(
                        writer, write_lock, protocol.FRAME_STATS_RESULT, request_id, body
                    )
                else:
                    self.metrics.observe_error()
                    await self._send(
                        writer,
                        write_lock,
                        protocol.FRAME_ERROR,
                        request_id,
                        f"unexpected frame type {frame_type} from a client".encode(),
                    )
            if requests:
                await asyncio.wait(list(requests))
        except (ConnectionResetError, BrokenPipeError):
            pass  # the peer vanished; nothing left to answer
        finally:
            for task in requests:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_decode(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        request_id: int,
        payload: bytes,
    ) -> None:
        """One request: parse → coalesce → decode → answer.

        Any failure is scoped to this request: the client gets an ``ERROR``
        frame with its id and the connection keeps serving.
        """
        try:
            table, signed, _session = protocol.decode_decode_request(payload)
            result = await self.batcher.submit(table, signed=signed)
            body = protocol.encode_decode_result(result)
            await self._send(
                writer, write_lock, protocol.FRAME_DECODE_RESULT, request_id, body
            )
            self.metrics.observe_response()
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            self.metrics.observe_error()
            try:
                await self._send(
                    writer, write_lock, protocol.FRAME_ERROR, request_id, str(exc).encode()
                )
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_session_decode(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        request_id: int,
        payload: bytes,
        sessions: Dict[Tuple[int, int, str, int, bool], IBLT],
    ) -> None:
        """One session request: diff against the resident table, re-peel.

        The first shipment of a geometry bootstraps a resident
        :class:`~repro.iblt.incremental.IncrementalDecodeSession`; every
        later shipment of the same geometry is reduced to the cells whose
        ``count``/``key_sum``/``check_sum`` differ from the resident copy,
        applied as a cell delta, and answered by an incremental checkpoint
        that re-peels only the dirty neighbourhood.  The answer is always
        bit-identical to a from-scratch decode of the shipped table.
        """
        try:
            table, signed, _session = protocol.decode_decode_request(payload)
            key = (table.num_cells, table.r, table.layout, table.hasher.seed, signed)
            resident = sessions.get(key)
            loop = asyncio.get_running_loop()
            if resident is None:
                result = await loop.run_in_executor(
                    self._executor, self._session_bootstrap, table, signed
                )
                sessions[key] = table
                self.metrics.observe_session(bootstrap=True)
            else:
                result = await loop.run_in_executor(
                    self._executor, self._session_checkpoint, resident, table, signed
                )
                self.metrics.observe_session(bootstrap=False)
            body = protocol.encode_decode_result(result)
            await self._send(
                writer, write_lock, protocol.FRAME_DECODE_RESULT, request_id, body
            )
            self.metrics.observe_response()
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            self.metrics.observe_error()
            try:
                await self._send(
                    writer, write_lock, protocol.FRAME_ERROR, request_id, str(exc).encode()
                )
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _session_bootstrap(self, table: IBLT, signed: bool):
        """Executor half of a first session shipment: full decode, state kept."""
        return table.decode(
            decoder=self._decoder,
            signed=signed,
            incremental=True,
            **self._decode_options,
        )

    def _session_checkpoint(self, resident: IBLT, shipped: IBLT, signed: bool):
        """Executor half of a repeat shipment: cell diff → delta → re-peel."""
        dirty = np.flatnonzero(
            (shipped.count != resident.count)
            | (shipped.key_sum != resident.key_sum)
            | (shipped.check_sum != resident.check_sum)
        )
        if dirty.size:
            resident._session.apply_cell_delta(
                dirty,
                shipped.count[dirty] - resident.count[dirty],
                shipped.key_sum[dirty] ^ resident.key_sum[dirty],
                shipped.check_sum[dirty] ^ resident.check_sum[dirty],
            )
            resident.count[dirty] = shipped.count[dirty]
            resident.key_sum[dirty] = shipped.key_sum[dirty]
            resident.check_sum[dirty] = shipped.check_sum[dirty]
        return resident.decode(
            decoder=self._decoder,
            signed=signed,
            incremental=True,
            **self._decode_options,
        )

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        frame_type: int,
        request_id: int,
        payload: bytes,
    ) -> None:
        async with write_lock:
            writer.write(protocol.encode_frame(frame_type, request_id, payload))
            await writer.drain()


async def run_server(
    server: DecodeServer,
    *,
    port_file: Optional[str] = None,
    announce=None,
) -> Dict[str, Any]:
    """Start ``server``, run until SIGINT/SIGTERM, drain, return the metrics.

    ``port_file`` (used by the CI smoke and any script that binds port 0)
    receives the bound port as text once the socket is listening.
    ``announce`` is called with a human-readable listening line.
    """
    await server.start()
    if announce is not None:
        announce(f"repro serve listening on {server.host}:{server.port}")
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(str(server.port))
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - win/embedded
            pass
    try:
        await stop_event.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()
    return server.metrics_snapshot()


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim
    """Stand-alone entry point mirroring ``repro serve``."""
    from repro.cli import main as cli_main

    return cli_main(["serve", *(argv or sys.argv[1:])])
