"""Wire protocol of the decode service: length-prefixed frames over TCP.

Every message is one *frame*::

    frame := u32 body_length (big-endian) | body
    body  := u8 frame_type | u32 request_id (big-endian) | payload

``request_id`` is assigned by the client and echoed verbatim in the
response, so a connection can have any number of requests in flight and
the client maps responses back without ordering assumptions (the server
completes requests batch by batch, not in arrival order).

Frame types
-----------
``DECODE_REQUEST``
    payload = 1 flags byte (bit 0: signed decoding; bit 1: session — the
    server keeps the decode state resident per connection and decodes
    repeated shipments of the same evolving table incrementally) followed
    by the :meth:`repro.iblt.IBLT.to_bytes` encoding of the table to
    decode.
``DECODE_RESULT``
    payload = ``!BIII`` (success, rounds, num_recovered, num_removed)
    followed by the recovered then removed keys as little-endian uint64.
``ERROR``
    payload = UTF-8 error message; sent with the failing request's id
    (or id 0 for connection-level protocol errors).
``STATS_REQUEST`` / ``STATS_RESULT``
    empty request; the response payload is the server's metrics snapshot
    as UTF-8 JSON.

Frame parsing errors split into two severities: :class:`FrameError` (the
stream itself is unframeable — bad length prefix, oversized frame,
truncated body — the connection must close) and per-request payload
errors (a well-framed request with a hostile body — the server answers
that request with an ``ERROR`` frame and keeps serving).
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass

import numpy as np

from repro.iblt.iblt import IBLT

__all__ = [
    "FRAME_DECODE_REQUEST",
    "FRAME_DECODE_RESULT",
    "FRAME_ERROR",
    "FRAME_STATS_REQUEST",
    "FRAME_STATS_RESULT",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameError",
    "RemoteDecodeError",
    "RemoteDecodeResult",
    "encode_frame",
    "read_frame",
    "encode_decode_request",
    "decode_decode_request",
    "encode_decode_result",
    "decode_decode_result",
]

FRAME_DECODE_REQUEST = 1
FRAME_DECODE_RESULT = 2
FRAME_ERROR = 3
FRAME_STATS_REQUEST = 4
FRAME_STATS_RESULT = 5

_KNOWN_FRAME_TYPES = frozenset(
    (
        FRAME_DECODE_REQUEST,
        FRAME_DECODE_RESULT,
        FRAME_ERROR,
        FRAME_STATS_REQUEST,
        FRAME_STATS_RESULT,
    )
)

DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024
"""Frames longer than this are rejected before any allocation (a hostile
length prefix must not make the server allocate gigabytes)."""

_LENGTH = struct.Struct("!I")
_BODY_HEAD = struct.Struct("!BI")  # frame type, request id
_RESULT_HEAD = struct.Struct("!BIII")  # success, rounds, n_recovered, n_removed


class FrameError(ValueError):
    """The byte stream is not a valid frame stream (connection-fatal)."""


class RemoteDecodeError(RuntimeError):
    """The server answered a request with an ``ERROR`` frame."""


@dataclass(frozen=True)
class RemoteDecodeResult:
    """A decode outcome as it crosses the wire.

    Carries the fields every decoder agrees on (``recovered`` / ``removed``
    keys in decoder order, ``success``, ``rounds``); per-round statistics
    stay server-side.
    """

    recovered: np.ndarray
    removed: np.ndarray
    success: bool
    rounds: int

    @property
    def num_recovered(self) -> int:
        return int(self.recovered.size + self.removed.size)


# --------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------- #

def encode_frame(frame_type: int, request_id: int, payload: bytes = b"") -> bytes:
    """Serialize one frame (length prefix included)."""
    body = _BODY_HEAD.pack(frame_type, request_id) + payload
    return _LENGTH.pack(len(body)) + body


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> "tuple[int, int, bytes]":
    """Read one frame; returns ``(frame_type, request_id, payload)``.

    Raises ``asyncio.IncompleteReadError`` on clean EOF before the length
    prefix, and :class:`FrameError` on an unframeable stream (oversized or
    undersized length prefix, unknown frame type).
    """
    length_bytes = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(length_bytes)
    if length < _BODY_HEAD.size:
        raise FrameError(f"frame body of {length} bytes is shorter than the frame header")
    if length > max_frame_bytes:
        raise FrameError(f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:  # mid-frame EOF is corruption
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} body bytes)"
        ) from exc
    frame_type, request_id = _BODY_HEAD.unpack_from(body)
    if frame_type not in _KNOWN_FRAME_TYPES:
        raise FrameError(f"unknown frame type {frame_type}")
    return frame_type, request_id, body[_BODY_HEAD.size:]


# --------------------------------------------------------------------- #
# payload codecs
# --------------------------------------------------------------------- #

def encode_decode_request(table: IBLT, *, signed: bool = True, session: bool = False) -> bytes:
    """Payload of a ``DECODE_REQUEST``: flags byte + serialized table.

    ``session`` sets flag bit 1: the server decodes this table against the
    connection's resident session state (incremental re-peel of whatever
    changed since the previous shipment of the same-geometry table) instead
    of from scratch.
    """
    return bytes([(1 if signed else 0) | (2 if session else 0)]) + table.to_bytes()


def decode_decode_request(payload: bytes) -> "tuple[IBLT, bool, bool]":
    """Parse a ``DECODE_REQUEST`` payload into ``(table, signed, session)``.

    Raises ``ValueError`` on anything malformed; the table bytes go
    through the hardened :meth:`IBLT.from_bytes` validation.
    """
    if len(payload) < 1:
        raise ValueError("empty decode request (missing flags byte)")
    flags = payload[0]
    if flags not in (0, 1, 2, 3):
        raise ValueError(f"invalid decode-request flags byte {flags}")
    table = IBLT.from_bytes(payload[1:])
    return table, bool(flags & 1), bool(flags & 2)


def encode_decode_result(result) -> bytes:
    """Payload of a ``DECODE_RESULT`` from any decoder-result object.

    ``result`` needs the common ``recovered`` / ``removed`` / ``success``
    / ``rounds`` surface (both ``IBLTDecodeResult`` and
    ``ParallelDecodeResult`` expose it).
    """
    recovered = np.asarray(result.recovered, dtype=np.uint64)
    removed = np.asarray(result.removed, dtype=np.uint64)
    head = _RESULT_HEAD.pack(
        1 if result.success else 0, int(result.rounds), recovered.size, removed.size
    )
    return head + recovered.astype("<u8").tobytes() + removed.astype("<u8").tobytes()


def decode_decode_result(payload: bytes) -> RemoteDecodeResult:
    """Parse a ``DECODE_RESULT`` payload."""
    if len(payload) < _RESULT_HEAD.size:
        raise ValueError(
            f"truncated decode result: {len(payload)} bytes is shorter than "
            f"the {_RESULT_HEAD.size}-byte result header"
        )
    success, rounds, n_recovered, n_removed = _RESULT_HEAD.unpack_from(payload)
    expected = _RESULT_HEAD.size + 8 * (n_recovered + n_removed)
    if len(payload) != expected:
        raise ValueError(
            f"decode result length mismatch: expected {expected} bytes for "
            f"{n_recovered}+{n_removed} keys, got {len(payload)}"
        )
    offset = _RESULT_HEAD.size
    recovered = np.frombuffer(payload, dtype="<u8", count=n_recovered, offset=offset).astype(
        np.uint64
    )
    offset += 8 * n_recovered
    removed = np.frombuffer(payload, dtype="<u8", count=n_removed, offset=offset).astype(
        np.uint64
    )
    return RemoteDecodeResult(
        recovered=recovered, removed=removed, success=bool(success), rounds=int(rounds)
    )
