"""Asyncio client of the decode service.

:class:`DecodeClient` multiplexes any number of in-flight requests over
one TCP connection: every request gets a fresh id, a background reader
task dispatches response frames to per-request futures, and
:meth:`DecodeClient.decode_many` therefore returns results in *input
order* no matter which batches the server fused them into.  Firing many
``decode`` calls concurrently over one connection is exactly the traffic
shape the server's micro-batcher coalesces.

The module also carries the ``repro decode-client`` load driver
(:func:`run_load`): it builds a fleet of random same-geometry tables,
fires them concurrently over one or more connections, verifies every
response against a local ``IBLT.decode(decoder="flat")`` and reports
throughput, client-side latency percentiles and the server's stats frame.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.iblt.iblt import IBLT
from repro.serve import protocol
from repro.serve.protocol import RemoteDecodeError, RemoteDecodeResult

__all__ = ["DecodeClient", "run_load"]


class DecodeClient:
    """One multiplexed connection to a :class:`~repro.serve.server.DecodeServer`.

    Use as an async context manager::

        async with await DecodeClient.connect("127.0.0.1", 8641) as client:
            result = await client.decode(table)
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 1
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> "DecodeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes=max_frame_bytes)

    async def __aenter__(self) -> "DecodeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #
    async def decode(
        self, table: IBLT, *, signed: bool = True, session: bool = False
    ) -> RemoteDecodeResult:
        """Decode one table on the server; raises :class:`RemoteDecodeError`
        if the server answered with an error frame.

        ``session=True`` asks the server to keep the decode state resident
        on this connection: ship the same (mutated) table again with the
        flag set and the server re-peels only what changed since the last
        shipment, answering bit-identically to a from-scratch decode.
        Session requests are answered in shipment order.
        """
        payload = protocol.encode_decode_request(table, signed=signed, session=session)
        return await self._request(protocol.FRAME_DECODE_REQUEST, payload)

    async def decode_many(
        self, tables: Sequence[IBLT], *, signed: bool = True
    ) -> List[RemoteDecodeResult]:
        """Fire all tables concurrently; results stream back in input order.

        All requests are in flight at once (the server is free to fuse
        them); the returned list matches the input order regardless of the
        server's completion order.
        """
        return list(
            await asyncio.gather(*(self.decode(t, signed=signed) for t in tables))
        )

    async def stats(self) -> Dict[str, Any]:
        """Fetch the server's metrics snapshot."""
        return await self._request(protocol.FRAME_STATS_REQUEST, b"")

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._fail_pending(ConnectionError("client closed"))

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    async def _request(self, frame_type: int, payload: bytes):
        if self._closed:
            raise ConnectionError("client is closed")
        loop = asyncio.get_running_loop()
        request_id = self._next_id
        self._next_id = (self._next_id % 0xFFFFFFFF) + 1
        future: asyncio.Future = loop.create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(protocol.encode_frame(frame_type, request_id, payload))
                await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame_type, request_id, payload = await protocol.read_frame(
                    self._reader, max_frame_bytes=self._max_frame_bytes
                )
                future = self._pending.get(request_id)
                if frame_type == protocol.FRAME_ERROR and request_id == 0:
                    # Connection-level protocol error: everything dies.
                    raise protocol.FrameError(payload.decode(errors="replace"))
                if future is None or future.done():
                    continue  # response to a request we gave up on
                if frame_type == protocol.FRAME_DECODE_RESULT:
                    future.set_result(protocol.decode_decode_result(payload))
                elif frame_type == protocol.FRAME_STATS_RESULT:
                    future.set_result(json.loads(payload.decode()))
                elif frame_type == protocol.FRAME_ERROR:
                    future.set_exception(
                        RemoteDecodeError(payload.decode(errors="replace"))
                    )
                else:
                    future.set_exception(
                        protocol.FrameError(f"unexpected frame type {frame_type}")
                    )
        except asyncio.CancelledError:
            raise
        except asyncio.IncompleteReadError:
            self._fail_pending(ConnectionError("server closed the connection"))
        except Exception as exc:  # noqa: BLE001 - fail every waiter, then stop
            self._fail_pending(exc)

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)


# --------------------------------------------------------------------- #
# the load driver behind `repro decode-client`
# --------------------------------------------------------------------- #

def _build_workload(
    *,
    requests: int,
    num_cells: int,
    r: int,
    load: float,
    seed: int,
) -> List[IBLT]:
    """Deterministic fleet of same-geometry tables with distinct key sets."""
    from repro.apps.sparse_recovery import random_distinct_keys

    tables: List[IBLT] = []
    num_keys = max(1, int(load * num_cells))
    for index in range(requests):
        table = IBLT(num_cells, r, layout="subtables", seed=seed)
        table.insert(random_distinct_keys(num_keys, seed=seed + 1 + index))
        tables.append(table)
    return tables


async def run_load(
    host: str,
    port: int,
    *,
    requests: int = 32,
    connections: int = 1,
    num_cells: int = 240,
    r: int = 3,
    load: float = 0.7,
    seed: int = 1,
    signed: bool = True,
    verify: bool = True,
    fetch_stats: bool = True,
) -> Dict[str, Any]:
    """Fire ``requests`` concurrent decodes and summarize the run.

    Returns a JSON-ready summary with throughput, client-side latency
    percentiles, verification mismatches (every response compared
    bit-for-bit against a local ``decode(decoder="flat")``) and, when
    ``fetch_stats``, the server's own metrics snapshot.
    """
    tables = _build_workload(
        requests=requests, num_cells=num_cells, r=r, load=load, seed=seed
    )
    expected = (
        [t.decode(decoder="flat", signed=signed) for t in tables] if verify else None
    )
    clients = [
        await DecodeClient.connect(host, port) for _ in range(max(1, connections))
    ]
    loop = asyncio.get_running_loop()
    latencies = [0.0] * len(tables)

    async def one(index: int, table: IBLT) -> RemoteDecodeResult:
        client = clients[index % len(clients)]
        started = loop.time()
        result = await client.decode(table, signed=signed)
        latencies[index] = loop.time() - started
        return result

    started = loop.time()
    try:
        results = await asyncio.gather(
            *(one(i, t) for i, t in enumerate(tables))
        )
        elapsed = loop.time() - started
        server_stats = await clients[0].stats() if fetch_stats else None
    finally:
        for client in clients:
            await client.close()

    mismatches: List[int] = []
    failures: List[int] = []
    if expected is not None:
        for index, (got, want) in enumerate(zip(results, expected)):
            if not np.array_equal(got.recovered, want.recovered) or not np.array_equal(
                got.removed, want.removed
            ) or got.success != want.success:
                mismatches.append(index)
    for index, got in enumerate(results):
        if not got.success:
            failures.append(index)

    lat_ms = np.asarray(latencies, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(lat_ms, (50.0, 95.0, 99.0))
    summary: Dict[str, Any] = {
        "requests": requests,
        "connections": max(1, connections),
        "num_cells": num_cells,
        "r": r,
        "load": load,
        "elapsed_s": elapsed,
        "requests_per_s": requests / elapsed if elapsed > 0 else float("inf"),
        "latency_ms": {"p50": float(p50), "p95": float(p95), "p99": float(p99)},
        "decode_failures": failures,
        "verified": expected is not None,
        "mismatches": mismatches,
    }
    if server_stats is not None:
        summary["server_stats"] = server_stats
    return summary
