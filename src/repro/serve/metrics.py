"""Server-side metrics of the decode service.

One :class:`ServeMetrics` instance lives per server; the batcher and the
connection handlers record into it from the event-loop thread only (no
locking needed).  :meth:`ServeMetrics.snapshot` renders a JSON-ready dict
— the payload of a ``STATS_RESULT`` frame and of the shutdown dump.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Dict

import numpy as np

__all__ = ["ServeMetrics", "LATENCY_WINDOW"]

LATENCY_WINDOW = 65_536
"""Latency samples kept for the percentile estimates (a sliding window, so
a long-lived server's stats frame stays bounded and recent)."""


class ServeMetrics:
    """Counters and latency window of one decode server."""

    def __init__(self, *, latency_window: int = LATENCY_WINDOW) -> None:
        self.requests_received = 0
        self.responses_sent = 0
        self.errors = 0
        self.batches_flushed = 0
        self.fused_batches = 0  # batches of size > 1
        self.solo_batches = 0  # batches of size 1
        self.fused_requests = 0  # requests served from a fused batch
        self.solo_requests = 0
        self.batch_size_histogram: Counter = Counter()
        self.window_flushes = 0  # flushes triggered by the latency budget
        self.size_flushes = 0  # flushes triggered by the max batch size
        self.drain_flushes = 0  # flushes triggered by shutdown drain
        self.session_requests = 0  # decode requests served from a resident session
        self.session_bootstraps = 0  # session requests that decoded from scratch
        self._latencies: deque = deque(maxlen=latency_window)

    # ------------------------------------------------------------------ #
    # recording (event-loop thread only)
    # ------------------------------------------------------------------ #
    def observe_request(self) -> None:
        self.requests_received += 1

    def observe_response(self) -> None:
        self.responses_sent += 1

    def observe_error(self) -> None:
        self.errors += 1

    def observe_batch(self, size: int, *, trigger: str) -> None:
        """Record one flushed batch; ``trigger`` is ``window``/``size``/``drain``."""
        self.batches_flushed += 1
        self.batch_size_histogram[int(size)] += 1
        if size > 1:
            self.fused_batches += 1
            self.fused_requests += size
        else:
            self.solo_batches += 1
            self.solo_requests += size
        if trigger == "window":
            self.window_flushes += 1
        elif trigger == "size":
            self.size_flushes += 1
        else:
            self.drain_flushes += 1

    def observe_session(self, *, bootstrap: bool) -> None:
        """Record one session-flagged decode request."""
        self.session_requests += 1
        if bootstrap:
            self.session_bootstraps += 1

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(float(seconds))

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def mean_batch_size(self) -> float:
        total = sum(size * count for size, count in self.batch_size_histogram.items())
        return total / self.batches_flushed if self.batches_flushed else 0.0

    def latency_percentiles_ms(self) -> Dict[str, float]:
        """p50/p95/p99 of the enqueue-to-result latency window, in ms."""
        if not self._latencies:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        samples = np.asarray(self._latencies, dtype=np.float64) * 1e3
        p50, p95, p99 = np.percentile(samples, (50.0, 95.0, 99.0))
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of everything recorded so far."""
        return {
            "requests_received": self.requests_received,
            "responses_sent": self.responses_sent,
            "errors": self.errors,
            "batches_flushed": self.batches_flushed,
            "fused_batches": self.fused_batches,
            "solo_batches": self.solo_batches,
            "fused_requests": self.fused_requests,
            "solo_requests": self.solo_requests,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_histogram": {
                str(size): count for size, count in sorted(self.batch_size_histogram.items())
            },
            "flush_triggers": {
                "window": self.window_flushes,
                "size": self.size_flushes,
                "drain": self.drain_flushes,
            },
            "session_requests": self.session_requests,
            "session_bootstraps": self.session_bootstraps,
            "latency_ms": self.latency_percentiles_ms(),
            "latency_samples": len(self._latencies),
        }
