"""The decode service: an asyncio front door over the batched IBLT kernels.

The batched subsystem fuses B same-geometry decodes into one lockstep
pass; this package converts *traffic* into that shape:

* :mod:`~repro.serve.protocol` — the length-prefixed frame protocol whose
  decode-request body is ``IBLT.to_bytes``.
* :mod:`~repro.serve.batcher` — the micro-batching coalescer: in-flight
  requests grouped by ``(num_cells, r, layout, seed, signed)`` and
  flushed into ``IBLT.decode_many(decoder="batched")`` on a size or
  latency-budget trigger.
* :mod:`~repro.serve.server` — the TCP server behind ``repro serve``
  (bounded admission, per-request error isolation, graceful drain).
* :mod:`~repro.serve.client` — the multiplexing asyncio client and the
  ``repro decode-client`` load driver.
* :mod:`~repro.serve.metrics` — per-server counters, batch-size
  histogram and latency percentiles.
"""

from repro.serve.batcher import BatchKey, MicroBatcher, batch_key
from repro.serve.client import DecodeClient, run_load
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    FrameError,
    RemoteDecodeError,
    RemoteDecodeResult,
)
from repro.serve.server import DecodeServer, run_server

__all__ = [
    "BatchKey",
    "MicroBatcher",
    "batch_key",
    "DecodeClient",
    "run_load",
    "ServeMetrics",
    "FrameError",
    "RemoteDecodeError",
    "RemoteDecodeResult",
    "DecodeServer",
    "run_server",
]
