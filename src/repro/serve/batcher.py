"""Micro-batching coalescer: in-flight decode requests → ``decode_many`` batches.

The service exists to convert concurrent traffic into the fused lockstep
decode path (:class:`repro.iblt.batched_decode.BatchedFlatDecoder`), which
requires every table in a batch to share geometry, layout and hash seed.
The :class:`MicroBatcher` therefore groups pending requests by the *batch
key* ``(num_cells, r, layout, seed, signed)`` and flushes a group when
either

* it reaches ``max_batch_size`` requests (size flush), or
* ``batch_window`` seconds elapse after the group's *first* request
  arrives (latency-budget flush — a lone request is never stuck waiting
  for peers that may not come).

A flushed batch runs ``IBLT.decode_many(..., decoder="batched")`` on a
thread-pool executor, so the event loop keeps accepting and coalescing
new requests while numpy churns; per-request results are identical to a
direct ``IBLT.decode(decoder="flat")`` because the lockstep pass is
bit-for-bit the flat schedule (pinned in ``tests/test_batched_decode.py``
and re-pinned end-to-end in ``tests/test_serve.py``).

Backpressure is a counting semaphore over *admitted-but-unanswered*
requests: :meth:`MicroBatcher.submit` suspends once ``max_pending``
requests are in flight, which in the server propagates to the socket (the
connection's read loop stops pulling frames, TCP flow control does the
rest).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from typing import Dict, List, Optional, Tuple

from repro.iblt.iblt import IBLT
from repro.serve.metrics import ServeMetrics
from repro.utils.validation import check_positive_int

__all__ = ["BatchKey", "MicroBatcher", "batch_key"]

BatchKey = Tuple[int, int, str, int, bool]


def batch_key(table: IBLT, *, signed: bool) -> BatchKey:
    """The fusion key: tables decode together iff these five fields match."""
    return (table.num_cells, table.r, str(table.layout), table.hasher.seed, bool(signed))


class _Pending:
    __slots__ = ("table", "future", "enqueued_at")

    def __init__(self, table: IBLT, future: "asyncio.Future", enqueued_at: float) -> None:
        self.table = table
        self.future = future
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Coalesce concurrent decode requests into fused ``decode_many`` calls.

    Parameters
    ----------
    executor:
        Where decode batches run (a ``ThreadPoolExecutor``; one worker
        keeps decodes serial, which is right for a single-socket host).
    batch_window:
        Latency budget in *seconds*: how long the first request of a group
        may wait for peers before the group is flushed.  ``0`` disables
        coalescing-by-time (every request flushes immediately unless the
        size trigger fuses simultaneous arrivals).
    max_batch_size:
        Size trigger: a group is flushed as soon as it holds this many
        requests.
    max_pending:
        Backpressure bound on admitted-but-unanswered requests.
    metrics:
        Optional :class:`ServeMetrics` to record into.
    decoder, kernel:
        Decoder registry name for the batch pass (default ``"batched"``)
        and optional kernel-backend name forwarded to it.
    """

    def __init__(
        self,
        executor: Executor,
        *,
        batch_window: float = 0.002,
        max_batch_size: int = 256,
        max_pending: int = 1024,
        metrics: Optional[ServeMetrics] = None,
        decoder: str = "batched",
        kernel: Optional[str] = None,
    ) -> None:
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.executor = executor
        self.batch_window = float(batch_window)
        self.max_batch_size = check_positive_int(max_batch_size, "max_batch_size")
        self.max_pending = check_positive_int(max_pending, "max_pending")
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.decoder = decoder
        self.kernel = kernel
        self._groups: Dict[BatchKey, List[_Pending]] = {}
        self._timers: Dict[BatchKey, asyncio.TimerHandle] = {}
        self._inflight: "set[asyncio.Future]" = set()
        self._slots: Optional[asyncio.Semaphore] = None  # created lazily in the loop

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(self, table: IBLT, *, signed: bool = True):
        """Enqueue one table; resolves to its decoder result.

        Suspends while ``max_pending`` requests are already in flight
        (backpressure), then joins — or opens — the group for the table's
        batch key.
        """
        loop = asyncio.get_running_loop()
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.max_pending)
        await self._slots.acquire()
        future: asyncio.Future = loop.create_future()
        pending = _Pending(table, future, loop.time())
        key = batch_key(table, signed=signed)
        group = self._groups.setdefault(key, [])
        group.append(pending)
        if len(group) >= self.max_batch_size:
            self._flush(key, trigger="size")
        elif len(group) == 1:
            if self.batch_window <= 0:
                self._flush(key, trigger="window")
            else:
                self._timers[key] = loop.call_later(
                    self.batch_window, self._flush, key, "window"
                )
        try:
            return await future
        finally:
            self._slots.release()

    @property
    def num_waiting(self) -> int:
        """Requests currently coalescing (not yet flushed to the executor)."""
        return sum(len(group) for group in self._groups.values())

    # ------------------------------------------------------------------ #
    # flushing
    # ------------------------------------------------------------------ #
    def _flush(self, key: BatchKey, trigger: str = "window") -> None:
        """Move one group to the executor; runs in the event-loop thread."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        group = self._groups.pop(key, None)
        if not group:
            return
        signed = key[4]
        self.metrics.observe_batch(len(group), trigger=trigger)
        loop = asyncio.get_running_loop()
        job = loop.run_in_executor(
            self.executor, self._decode_batch, [p.table for p in group], signed
        )
        self._inflight.add(job)

        def _distribute(done: "asyncio.Future") -> None:
            self._inflight.discard(done)
            now = loop.time()
            exc = done.exception() if not done.cancelled() else None
            for index, pending in enumerate(group):
                if pending.future.done():  # the waiter was cancelled meanwhile
                    continue
                self.metrics.observe_latency(now - pending.enqueued_at)
                if done.cancelled():
                    pending.future.cancel()
                elif exc is not None:
                    pending.future.set_exception(exc)
                else:
                    pending.future.set_result(done.result()[index])

        job.add_done_callback(_distribute)

    def _decode_batch(self, tables: List[IBLT], signed: bool) -> List[object]:
        """Executor-side body: one fused lockstep decode of the whole group."""
        options = {} if self.kernel is None else {"kernel": self.kernel}
        return IBLT.decode_many(tables, decoder=self.decoder, signed=signed, **options)

    async def drain(self) -> None:
        """Flush everything still coalescing and wait for in-flight decodes."""
        for key in list(self._groups):
            self._flush(key, trigger="drain")
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
