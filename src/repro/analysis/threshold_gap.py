"""Rounds as a function of the distance to the threshold (Section 7 / Theorem 5).

When the edge density ``c`` sits a distance ``ν = c*_{k,r} − c`` below the
threshold, the peeling process spends ``Θ(sqrt(1/ν))`` rounds crawling across
a plateau where ``β_i`` hovers near the critical value ``x*`` before the
doubly-exponential collapse of Theorem 1 kicks in.  Figure 1 of the paper
plots exactly this plateau for ``k=2, r=4`` at ``c = 0.77`` and ``c = 0.772``
(the threshold is ``c*_{2,4} ≈ 0.77228``).

This module exposes the fixed point ``β`` above the threshold, the critical
point ``x*``, an empirical plateau-length measurement on the idealized
recurrence, and the ``Θ(sqrt(1/ν))`` prediction it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Optional

import numpy as np

from repro.analysis.recurrences import iterate_recurrence
from repro.analysis.thresholds import peeling_threshold, poisson_tail, threshold_minimizer
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = [
    "critical_point",
    "beta_fixed_point",
    "plateau_length",
    "gap_rounds_estimate",
    "GapAnalysis",
]


def critical_point(k: int, r: int) -> float:
    """The minimizing point ``x*`` of Equation (2.1).

    ``x*`` is the expected number of surviving descendant edges per vertex at
    the threshold density; Appendix C shows ``x* >= k − 1``.
    """
    return threshold_minimizer(k, r)[0]


def beta_fixed_point(
    c: float, k: int, r: int, *, tol: float = 1e-13, max_iter: int = 100_000
) -> float:
    """The largest fixed point of the β-recurrence (Equation 4.1).

    Above the threshold this is the positive limit ``β > 0`` the recurrence
    converges to (the k-core occupies a constant fraction of the graph);
    below the threshold the only fixed point reached from ``β_0 = rc`` is 0.
    Computed by direct iteration from ``ρ_0 = 1``, which converges
    monotonically.
    """
    c = check_positive_float(c, "c")
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    rho = 1.0
    beta = r * c
    for _ in range(max_iter):
        new_beta = (rho ** (r - 1)) * r * c
        new_rho = poisson_tail(new_beta, k - 1)
        if abs(new_beta - beta) < tol and abs(new_rho - rho) < tol:
            return float(new_beta)
        beta, rho = new_beta, new_rho
    return float(beta)


@dataclass(frozen=True)
class GapAnalysis:
    """Result of :func:`plateau_length`.

    Attributes
    ----------
    c, k, r:
        Process parameters.
    nu:
        Distance ``c* − c`` to the threshold (positive below the threshold).
    plateau_rounds:
        Number of rounds the idealized β-recurrence spends inside the window
        ``[x* − width, x* + width]`` around the critical point.
    total_rounds_to_tau:
        Rounds until ``β_i`` first drops below ``tau``.
    predicted_scale:
        ``sqrt(1/ν)`` — Theorem 5 says ``plateau_rounds = Θ(predicted_scale)``.
    """

    c: float
    k: int
    r: int
    nu: float
    plateau_rounds: int
    total_rounds_to_tau: int
    predicted_scale: float


def plateau_length(
    c: float,
    k: int,
    r: int,
    *,
    window: float = 0.25,
    tau: Optional[float] = None,
    max_rounds: int = 200_000,
) -> GapAnalysis:
    """Measure the near-threshold plateau of the idealized β-recurrence.

    Parameters
    ----------
    c:
        Edge density, must be strictly below the threshold ``c*_{k,r}``.
    window:
        Half-width (as a fraction of ``x*``) of the plateau window around the
        critical point ``x*``.
    tau:
        β value that marks the start of the doubly-exponential phase; defaults
        to ``x*/2``.
    max_rounds:
        Safety cap on the number of iterated rounds.

    Returns
    -------
    GapAnalysis
    """
    c = check_positive_float(c, "c")
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    x_star, c_star = threshold_minimizer(k, r)
    if c >= c_star:
        raise ValueError(
            f"plateau_length requires c < c*_{{{k},{r}}} = {c_star:.6f}, got c={c}"
        )
    nu = c_star - c
    if tau is None:
        tau = x_star / 2.0
    trace = iterate_recurrence(c, k, r, max_rounds)
    beta = trace.beta[1:]
    lower = x_star * (1.0 - window)
    upper = x_star * (1.0 + window)
    in_window = (beta >= lower) & (beta <= upper)
    plateau_rounds = int(in_window.sum())
    below_tau = np.flatnonzero(beta < tau)
    total_rounds = int(below_tau[0]) + 1 if below_tau.size else max_rounds
    return GapAnalysis(
        c=c,
        k=k,
        r=r,
        nu=nu,
        plateau_rounds=plateau_rounds,
        total_rounds_to_tau=total_rounds,
        predicted_scale=sqrt(1.0 / nu),
    )


def gap_rounds_estimate(n: int, c: float, k: int, r: int) -> float:
    """Theorem 5's round estimate ``Θ(sqrt(1/ν)) + log log n / log((k−1)(r−1))``.

    Returns the sum of the two leading terms with unit constants; the
    experiment harness compares its *scaling* in ``ν`` against the measured
    plateau, not its absolute value.
    """
    from repro.analysis.rounds import rounds_below_threshold  # local import avoids cycle

    n = check_positive_int(n, "n")
    c = check_positive_float(c, "c")
    c_star = peeling_threshold(k, r)
    if c >= c_star:
        raise ValueError(f"c={c} must be below the threshold {c_star:.6f}")
    nu = c_star - c
    return sqrt(1.0 / nu) + rounds_below_threshold(n, k, r)
