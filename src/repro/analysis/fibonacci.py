"""Generalized Fibonacci sequences and growth rates (Appendix B / Theorem 7).

Theorem 7 shows that subtable peeling contracts "Fibonacci exponentially":
the exponent of the survival probability grows like a generalized Fibonacci
sequence, so the number of subrounds is
``(1 / (log φ_{r-1} + log(k-1))) · log log n + O(1)``, where ``φ_p`` is the
growth rate of the ``p``-step Fibonacci sequence (each term the sum of the
previous ``p`` terms).  The constants the paper quotes are

* ``φ_2 ≈ 1.618`` (golden ratio, used for r = 3),
* ``φ_3 ≈ 1.839`` (r = 4),
* ``φ_4 ≈ 1.928`` (r = 5),

and ``φ_p → 2`` as ``p`` grows, so the subround-to-round ratio
``log(r−1)/log(φ_{r−1})`` approaches ``log₂(r−1)``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = [
    "fibonacci_sequence",
    "fibonacci_growth_rate",
    "subtable_round_ratio",
]


def fibonacci_sequence(order: int, length: int) -> List[int]:
    """First ``length`` terms of the ``order``-step Fibonacci sequence.

    The sequence is seeded with ``order`` ones; every later term is the sum
    of the preceding ``order`` terms.  ``order=2`` gives the ordinary
    Fibonacci numbers 1, 1, 2, 3, 5, 8, ...; ``order=3`` the "tribonacci"
    numbers 1, 1, 1, 3, 5, 9, 17, ...

    Parameters
    ----------
    order:
        Number of preceding terms summed (``>= 1``).
    length:
        Number of terms to return (``>= 1``).
    """
    order = check_positive_int(order, "order")
    length = check_positive_int(length, "length")
    terms: List[int] = [1] * min(order, length)
    while len(terms) < length:
        terms.append(sum(terms[-order:]))
    return terms[:length]


@lru_cache(maxsize=64)
def fibonacci_growth_rate(order: int) -> float:
    """Growth rate ``φ_order`` of the ``order``-step Fibonacci sequence.

    Computed as the dominant real root of the characteristic polynomial
    ``x^order − x^(order−1) − ... − x − 1``.  ``fibonacci_growth_rate(2)`` is
    the golden ratio; the rate increases towards 2 as ``order`` grows.
    """
    order = check_positive_int(order, "order")
    if order == 1:
        return 1.0
    coeffs = -np.ones(order + 1, dtype=float)
    coeffs[0] = 1.0
    roots = np.roots(coeffs)
    real_roots = roots[np.abs(roots.imag) < 1e-9].real
    return float(real_roots.max())


def subtable_round_ratio(k: int, r: int) -> float:
    """Subround overhead of subtable peeling relative to plain parallel peeling.

    Plain peeling needs ``(1/log((k−1)(r−1))) · log log n`` rounds
    (Theorem 1); subtable peeling needs
    ``(1/(log φ_{r−1} + log(k−1))) · log log n`` *subrounds* (Theorem 7).
    Their ratio,

    .. math:: \\frac{\\log((k-1)(r-1))}{\\log \\phi_{r-1} + \\log(k-1)},

    is the factor by which the total number of serial steps grows — about
    1.44–1.46 for ``k=2, r=3`` (versus the naive factor ``r = 3``) and close
    to ``log₂(r−1)`` for large ``r``.

    Raises
    ------
    ValueError
        If ``r < 3`` (Theorem 7 requires ``r >= 3``) or ``k < 2``.
    """
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    if r < 3:
        raise ValueError("subtable peeling analysis requires r >= 3 (Theorem 7)")
    if k < 2:
        raise ValueError("require k >= 2")
    phi = fibonacci_growth_rate(r - 1)
    numerator = np.log((k - 1) * (r - 1))
    denominator = np.log(phi) + np.log(k - 1)
    return float(numerator / denominator)
