"""Closed-form round-complexity predictions (Theorems 1, 2, 3, 5 and 7).

These functions translate the paper's asymptotic statements into concrete
numbers that the experiment harness compares against measured round counts:

* below the threshold the parallel process finishes in
  ``log log n / log((k−1)(r−1)) + O(1)`` rounds (Theorems 1–2);
* above the threshold it needs ``Ω(log n)`` rounds (Theorem 3);
* near the threshold there is an additive ``Θ(sqrt(1/ν))`` term (Theorem 5);
* with subtables the subround count is
  ``log log n / (log φ_{r−1} + log(k−1)) + O(1)`` (Theorem 7).

The ``O(1)``/constant-factor slack is inherently unknowable from the theorem
statements alone, so each prediction returns the *leading term*; the
experiment harness fits the additive constant empirically (which is also what
the paper's simulations do implicitly).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log, sqrt

import numpy as np

from repro.analysis.fibonacci import fibonacci_growth_rate
from repro.analysis.recurrences import iterate_recurrence
from repro.analysis.thresholds import peeling_threshold
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = [
    "leading_constant_below",
    "leading_constant_subtables",
    "gao_leading_constant",
    "rounds_below_threshold",
    "rounds_above_threshold",
    "rounds_near_threshold",
    "rounds_with_subtables",
    "predict_rounds",
    "RoundPrediction",
]


def leading_constant_below(k: int, r: int) -> float:
    """The constant ``1/log((k−1)(r−1))`` of Theorems 1 and 2.

    Requires ``k + r >= 5`` (so ``(k−1)(r−1) >= 2``), matching the paper.
    """
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    if k < 2 or r < 2 or k + r < 5:
        raise ValueError(
            f"Theorem 1 requires k, r >= 2 with k + r >= 5; got k={k}, r={r}"
        )
    return 1.0 / log((k - 1) * (r - 1))


def gao_leading_constant(k: int, r: int) -> float:
    """Gao's alternative (larger) leading constant ``1/log(k(r−1)/r)``.

    Mentioned in the introduction: Gao [8] proves the same ``O(log log n)``
    upper bound with leading constant ``1/log(k(r−1)/r)``, which is larger
    than the paper's ``1/log((k−1)(r−1))``.  Exposed for the documentation
    and the ablation benchmark that contrasts the two predictions.
    """
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    ratio = k * (r - 1) / r
    if ratio <= 1:
        raise ValueError(
            f"Gao's constant requires k(r-1)/r > 1; got k={k}, r={r}"
        )
    return 1.0 / log(ratio)


def leading_constant_subtables(k: int, r: int) -> float:
    """The constant ``1/(log φ_{r−1} + log(k−1))`` of Theorem 7 (subrounds)."""
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    if r < 3 or k < 2:
        raise ValueError(f"Theorem 7 requires r >= 3 and k >= 2; got k={k}, r={r}")
    phi = fibonacci_growth_rate(r - 1)
    denom = log(phi) + log(k - 1)
    if denom <= 0:
        raise ValueError(f"invalid combination k={k}, r={r}")
    return 1.0 / denom


def rounds_below_threshold(n: int, k: int, r: int, *, constant: float = 0.0) -> float:
    """Leading-order round prediction below the threshold (Theorem 1).

    ``log log n / log((k−1)(r−1)) + constant``; the caller supplies the
    additive constant (default 0) because Theorem 1 only pins the leading
    term.
    """
    n = check_positive_int(n, "n")
    if n < 3:
        raise ValueError("n must be >= 3 so that log log n is defined")
    return leading_constant_below(k, r) * log(log(n)) + constant


def rounds_near_threshold(n: int, c: float, k: int, r: int, *, constant: float = 0.0) -> float:
    """Theorem 5 leading term inside the critical window.

    Within distance ``ν = |c*_{k,r} − c|`` of the threshold the process
    spends ``Θ(sqrt(1/ν))`` extra rounds crawling across the critical
    plateau *in addition to* the ``log log n / log((k−1)(r−1))`` collapse
    term of Theorem 1, so the leading-order prediction is the sum of the
    two.  At ``c = c*`` exactly (``ν = 0``) the plateau term diverges and
    the prediction is ``inf`` — the ``Θ(log n)`` regime of Theorem 3 takes
    over.

    The caller supplies the additive ``O(1)`` constant (default 0), as for
    the other leading-term helpers.
    """
    n = check_positive_int(n, "n")
    if n < 3:
        raise ValueError("n must be >= 3 so that log log n is defined")
    c = check_positive_float(c, "c")
    nu = abs(peeling_threshold(k, r) - c)
    below = rounds_below_threshold(n, k, r)
    if nu == 0.0:
        return float("inf")
    return below + sqrt(1.0 / nu) + constant


def rounds_with_subtables(n: int, k: int, r: int, *, constant: float = 0.0) -> float:
    """Leading-order subround prediction for subtable peeling (Theorem 7)."""
    n = check_positive_int(n, "n")
    if n < 3:
        raise ValueError("n must be >= 3 so that log log n is defined")
    return leading_constant_subtables(k, r) * log(log(n)) + constant


def rounds_above_threshold(n: int, c: float, k: int, r: int, *, constant: float = 1.0) -> float:
    """Leading-order round scaling above the threshold (Theorem 3): ``Θ(log n)``.

    The multiplicative constant depends on how far ``c`` exceeds the
    threshold; the default of 1.0 is a placeholder the experiment harness
    replaces with an empirical fit.  The function still verifies that
    ``c`` really is above the threshold so misuse fails loudly.
    """
    n = check_positive_int(n, "n")
    c = check_positive_float(c, "c")
    c_star = peeling_threshold(k, r)
    if c <= c_star:
        raise ValueError(
            f"c={c} is not above the threshold c*_{{{k},{r}}}={c_star:.6f}"
        )
    return constant * log(n)


@dataclass(frozen=True)
class RoundPrediction:
    """A concrete round-count prediction for one parameter setting.

    Attributes
    ----------
    regime:
        ``"below"``, ``"above"`` or ``"critical"`` (within ``tol`` of the
        threshold).
    rounds:
        Predicted number of rounds.  Below the threshold this is obtained by
        iterating the idealized recurrence until the expected number of
        survivors drops below one vertex (the same criterion the paper's
        Table 2 exhibits); above the threshold it is the number of rounds for
        the recurrence to approach its positive fixed point within ``1/n``.
    threshold:
        ``c*_{k,r}``.
    leading_term:
        The leading-order expression of the regime's theorem, for
        reference: Theorem 1 (``log log n`` collapse) below the threshold,
        Theorem 3 (``log n``) above it, and Theorem 5 — the Theorem 1 term
        *plus* the additive ``Θ(sqrt(1/ν))`` plateau — inside the critical
        window (``inf`` exactly at the threshold, where ``ν = 0``).
    """

    regime: str
    rounds: float
    threshold: float
    leading_term: float


def predict_rounds(
    n: int,
    c: float,
    k: int,
    r: int,
    *,
    max_rounds: int = 10_000,
    tol: float = 1e-9,
) -> RoundPrediction:
    """Predict the number of parallel peeling rounds for ``G^r_{n,cn}``.

    The prediction iterates the idealized recurrence of Section 3.1, which
    Table 2 shows tracks the true process extremely closely:

    * **below the threshold** — the predicted round count is the first round
      at which the expected number of surviving vertices ``λ_t · n`` falls
      below 1 (plus one final confirming round, mirroring how the simulation
      detects termination);
    * **above the threshold** — the recurrence converges to a positive fixed
      point; the prediction is the first round where ``λ_t`` is within
      ``1/n`` of its limit, which grows as ``Θ(log n)``.
    """
    n = check_positive_int(n, "n")
    c = check_positive_float(c, "c")
    c_star = peeling_threshold(k, r)
    leading = None
    if abs(c - c_star) < tol:
        regime = "critical"
    elif c < c_star:
        regime = "below"
    else:
        regime = "above"

    trace = iterate_recurrence(c, k, r, max_rounds)
    lam = trace.lam
    if regime in ("below", "critical"):
        below_one = np.flatnonzero(lam * n < 1.0)
        if below_one.size:
            # +1: the implementation needs one more round to observe that
            # nothing changed and stop (matching how simulations count).
            rounds = float(below_one[0]) + 1.0
        else:
            rounds = float(max_rounds)
        if n < 3:
            leading = float("nan")
        elif regime == "critical":
            # Theorem 5: the critical window carries an additive
            # Θ(sqrt(1/ν)) plateau on top of the Theorem 1 term.
            leading = rounds_near_threshold(n, c, k, r)
        else:
            leading = rounds_below_threshold(n, k, r)
    else:
        lam_limit = lam[-1]
        close = np.flatnonzero(np.abs(lam - lam_limit) * n < 1.0)
        rounds = float(close[0]) + 1.0 if close.size else float(max_rounds)
        leading = log(n)
    return RoundPrediction(
        regime=regime, rounds=rounds, threshold=c_star, leading_term=float(leading)
    )
