"""The peeling threshold :math:`c^*_{k,r}` (Equation 2.1).

From Molloy's analysis, peeling an r-uniform hypergraph with edge density
``c`` to an empty k-core succeeds with high probability exactly when
``c < c*_{k,r}`` where

.. math::

    c^*_{k,r} \\;=\\; \\min_{x > 0}
        \\frac{x}{r\\,\\bigl(1 - e^{-x} \\sum_{j=0}^{k-2} x^j/j!\\bigr)^{r-1}} .

The special case ``k = r = 2`` is excluded (as in the paper).  The module
also exposes the Poisson-tail survival update

.. math:: \\rho \\mapsto \\Pr[\\mathrm{Poisson}(\\rho^{r-1} r c) \\ge k-1]

which drives every recurrence in :mod:`repro.analysis.recurrences`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np
from scipy import optimize, special

from repro.utils.validation import check_positive_float, check_positive_int

__all__ = [
    "poisson_tail",
    "survival_update",
    "threshold_objective",
    "threshold_minimizer",
    "peeling_threshold",
]


def poisson_tail(mean, threshold: int):
    """Return ``Pr[Poisson(mean) >= threshold]`` (vectorized in ``mean``).

    Uses the regularized upper incomplete gamma function
    ``gammaincc(threshold, mean)``, which equals the Poisson upper tail and is
    numerically stable for tiny and huge means alike.

    Parameters
    ----------
    mean:
        Poisson mean(s), ``>= 0``.
    threshold:
        Integer ``t``; the probability that the variable is ``>= t``.
        For ``t <= 0`` the result is identically 1.
    """
    mean_arr = np.asarray(mean, dtype=float)
    if np.any(mean_arr < 0):
        raise ValueError("Poisson mean must be non-negative")
    if threshold <= 0:
        result = np.ones_like(mean_arr)
    else:
        result = special.gammainc(threshold, mean_arr)
        # gammainc(t, mu) = Pr[Poisson(mu) >= t] for integer t >= 1.
    if np.isscalar(mean) or np.ndim(mean) == 0:
        return float(result)
    return result


def survival_update(rho, c: float, k: int, r: int):
    """One step of the idealized survival recurrence (Equation 3.2).

    ``rho`` is the probability that a child vertex survived the previous
    round; the returned value is the probability that the parent survives the
    current round:

    .. math:: \\rho' = \\Pr[\\mathrm{Poisson}(\\rho^{r-1} r c) \\ge k - 1].
    """
    c = check_positive_float(c, "c")
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    rho_arr = np.asarray(rho, dtype=float)
    beta = np.power(rho_arr, r - 1) * r * c
    return poisson_tail(beta, k - 1)


def threshold_objective(x, c_unused: None = None, *, k: int, r: int):
    """The function minimized in Equation (2.1), vectorized in ``x``.

    .. math:: F(x) = \\frac{x}{r (1 - e^{-x}\\sum_{j=0}^{k-2} x^j/j!)^{r-1}}
    """
    x_arr = np.asarray(x, dtype=float)
    tail = poisson_tail(x_arr, k - 1)  # 1 - e^{-x} sum_{j<=k-2} x^j/j!
    with np.errstate(divide="ignore", invalid="ignore"):
        value = x_arr / (r * np.power(tail, r - 1))
    value = np.where(tail <= 0, np.inf, value)
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(value)
    return value


def _validate_k_r(k: int, r: int) -> Tuple[int, int]:
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    if k < 2 or r < 2:
        raise ValueError(f"require k >= 2 and r >= 2, got k={k}, r={r}")
    if k == 2 and r == 2:
        raise ValueError(
            "the case k = r = 2 (2-core of a random graph) is excluded, "
            "matching the paper"
        )
    return k, r


@lru_cache(maxsize=256)
def threshold_minimizer(k: int, r: int) -> Tuple[float, float]:
    """Return ``(x_star, c_star)`` for Equation (2.1).

    ``x_star`` is the minimizing point — the expected number of surviving
    descendant edges per vertex exactly at the threshold density — and
    ``c_star`` is the threshold itself.

    The objective is smooth and unimodal on ``(0, ∞)`` with a unique interior
    minimum for the admissible ``(k, r)``; the paper's Appendix C shows the
    minimizer satisfies ``x* >= k - 1``.  We bracket on ``[k-1, k-1+B]`` with
    an expanding upper bound and refine with bounded scalar minimization.
    """
    k, r = _validate_k_r(k, r)
    lower = max(k - 1.0, 1e-6)
    upper = max(4.0 * k, 8.0)
    # Expand the bracket until the objective is increasing at the right edge.
    for _ in range(64):
        probe = threshold_objective(np.array([upper * 0.98, upper]), k=k, r=r)
        if probe[1] > probe[0]:
            break
        upper *= 2.0
    result = optimize.minimize_scalar(
        lambda x: threshold_objective(x, k=k, r=r),
        bounds=(lower * 0.5, upper),
        method="bounded",
        options={"xatol": 1e-12},
    )
    x_star = float(result.x)
    c_star = float(threshold_objective(x_star, k=k, r=r))
    return x_star, c_star


def peeling_threshold(k: int, r: int) -> float:
    """The threshold density :math:`c^*_{k,r}` of Equation (2.1).

    Examples (values quoted in Section 2 of the paper):

    >>> round(peeling_threshold(2, 3), 3)
    0.818
    >>> round(peeling_threshold(2, 4), 3)
    0.772
    >>> round(peeling_threshold(3, 3), 3)
    1.553
    """
    return threshold_minimizer(k, r)[1]
