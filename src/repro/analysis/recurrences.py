"""Idealized branching-process recurrences (Sections 3.1 and Appendix B).

Below the threshold, the peeling process is accurately described by the
recurrences (with :math:`\\rho_0 = 1`, :math:`\\beta_i = \\rho_{i-1}^{r-1} rc`):

.. math::

    \\rho_i &= \\Pr[\\mathrm{Poisson}(\\beta_i) \\ge k - 1], \\\\
    \\lambda_i &= \\Pr[\\mathrm{Poisson}(\\beta_i) \\ge k],

where :math:`\\lambda_i` is the probability that a given vertex survives
``i`` rounds of parallel peeling; Table 2 of the paper shows
:math:`\\lambda_i n` matches simulation to within a relative error of about
:math:`10^{-3}`.

Appendix B gives the subtable variant (Equation B.1): with the vertex set
split into ``r`` subtables processed serially within each round,

.. math::

    \\rho_{i,j} = \\Pr\\Bigl[\\mathrm{Poisson}\\bigl(rc \\prod_{h<j}\\rho_{i,h}
                 \\prod_{h>j}\\rho_{i-1,h}\\bigr) \\ge k-1\\Bigr],

and the fraction of vertices left after subround ``(i, j)`` is
:math:`\\lambda'_{i,j} = \\frac1r(\\sum_{h\\le j}\\lambda_{i,h} +
\\sum_{h>j}\\lambda_{i-1,h})` (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.thresholds import poisson_tail
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = [
    "RecurrenceTrace",
    "iterate_recurrence",
    "lambda_trace",
    "predicted_survivors",
    "SubtableRecurrenceTrace",
    "iterate_subtable_recurrence",
    "predicted_subtable_survivors",
]


@dataclass(frozen=True)
class RecurrenceTrace:
    """Evolution of the idealized recurrence for ``rounds`` rounds.

    Attributes
    ----------
    c, k, r:
        Parameters of the process.
    rho:
        ``rho[i]`` is the probability a non-root vertex survives ``i`` rounds
        (``rho[0] == 1``).
    beta:
        ``beta[i]`` is the expected number of surviving descendant edges going
        into round ``i`` (``beta[i] = rho[i-1]^(r-1) * r * c``); ``beta[0]``
        is defined as ``r*c`` for convenience.
    lam:
        ``lam[i]`` is the probability the *root* survives ``i`` rounds
        (``lam[0] == 1``).
    """

    c: float
    k: int
    r: int
    rho: np.ndarray
    beta: np.ndarray
    lam: np.ndarray

    @property
    def rounds(self) -> int:
        """Number of iterated rounds (arrays have ``rounds + 1`` entries)."""
        return len(self.rho) - 1

    def rounds_to_extinction(self, tol: float = 0.0) -> Optional[int]:
        """First round ``t`` with ``lam[t] <= tol``, or None if never reached."""
        below = np.flatnonzero(self.lam <= tol)
        if below.size == 0:
            return None
        return int(below[0])


def iterate_recurrence(c: float, k: int, r: int, rounds: int) -> RecurrenceTrace:
    """Iterate the idealized recurrence (Equations 3.2–3.4) for ``rounds`` rounds.

    Parameters
    ----------
    c:
        Edge density.
    k:
        Peel-to-k-core threshold (a vertex survives a round iff it has at
        least ``k-1`` surviving child edges; the root needs ``k``).
    r:
        Edge size.
    rounds:
        Number of rounds to iterate.

    Returns
    -------
    RecurrenceTrace
    """
    c = check_positive_float(c, "c")
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    rounds = check_positive_int(rounds, "rounds") if rounds != 0 else 0
    rho = np.empty(rounds + 1, dtype=float)
    beta = np.empty(rounds + 1, dtype=float)
    lam = np.empty(rounds + 1, dtype=float)
    rho[0] = 1.0
    beta[0] = r * c
    lam[0] = 1.0
    for i in range(1, rounds + 1):
        beta[i] = rho[i - 1] ** (r - 1) * r * c
        rho[i] = poisson_tail(beta[i], k - 1)
        lam[i] = poisson_tail(beta[i], k)
    return RecurrenceTrace(c=c, k=k, r=r, rho=rho, beta=beta, lam=lam)


def lambda_trace(c: float, k: int, r: int, rounds: int) -> np.ndarray:
    """Return ``lam[1..rounds]`` — the per-round survival probabilities.

    ``lambda_trace(c, k, r, T)[t-1]`` is the idealized probability a vertex
    survives ``t`` rounds; multiplying by ``n`` gives the predicted number of
    unpeeled vertices after round ``t`` (the "Prediction" column of Table 2).
    """
    return iterate_recurrence(c, k, r, rounds).lam[1:]


def predicted_survivors(n: int, c: float, k: int, r: int, rounds: int) -> np.ndarray:
    """Predicted number of surviving vertices after rounds ``1..rounds``.

    This is the Prediction column of Table 2: ``lambda_t * n``.
    """
    n = check_positive_int(n, "n")
    return lambda_trace(c, k, r, rounds) * n


# --------------------------------------------------------------------------- #
# Subtable recurrences (Appendix B)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SubtableRecurrenceTrace:
    """Evolution of the subtable recurrence of Appendix B.

    ``rho[i, j]``, ``lam[i, j]`` and ``beta[i, j]`` are indexed by round ``i``
    (0-based; row 0 is the all-ones initial condition) and subtable ``j``
    (0-based).  ``lam_prime[i, j]`` is the fraction of *all* vertices still
    unpeeled after subround ``(i, j)`` — the Prediction column of Table 6
    divided by ``n``.
    """

    c: float
    k: int
    r: int
    rho: np.ndarray
    beta: np.ndarray
    lam: np.ndarray
    lam_prime: np.ndarray

    @property
    def rounds(self) -> int:
        """Number of iterated full rounds."""
        return self.rho.shape[0] - 1

    def subround_lambda(self, round_index: int, subtable_index: int) -> float:
        """``lambda'_{i,j}`` with 1-based round index ``i`` as in Table 6."""
        if round_index < 1 or round_index > self.rounds:
            raise IndexError(f"round_index must be in [1, {self.rounds}]")
        if subtable_index < 1 or subtable_index > self.r:
            raise IndexError(f"subtable_index must be in [1, {self.r}]")
        return float(self.lam_prime[round_index, subtable_index - 1])


def iterate_subtable_recurrence(
    c: float, k: int, r: int, rounds: int
) -> SubtableRecurrenceTrace:
    """Iterate the subtable recurrences (Equation B.1) for ``rounds`` rounds.

    Within round ``i`` the ``r`` subtables are processed in order
    ``j = 1..r``; peeling subtable ``j`` already sees the updated survival of
    subtables ``h < j`` from the *same* round, which is what makes the
    process contract "Fibonacci exponentially" (Theorem 7).
    """
    c = check_positive_float(c, "c")
    k = check_positive_int(k, "k")
    r = check_positive_int(r, "r")
    if r < 2:
        raise ValueError(f"r must be >= 2 for the subtable model, got {r}")
    rounds = check_positive_int(rounds, "rounds") if rounds != 0 else 0

    rho = np.ones((rounds + 1, r), dtype=float)
    beta = np.zeros((rounds + 1, r), dtype=float)
    lam = np.ones((rounds + 1, r), dtype=float)
    lam_prime = np.ones((rounds + 1, r), dtype=float)
    beta[0, :] = r * c

    for i in range(1, rounds + 1):
        for j in range(r):
            # product over subtables already peeled this round (h < j) uses
            # row i; the rest (h > j) uses the previous round's row i-1.
            prod_current = np.prod(rho[i, :j]) if j > 0 else 1.0
            prod_previous = np.prod(rho[i - 1, j + 1:]) if j < r - 1 else 1.0
            mean = r * c * prod_current * prod_previous
            beta[i, j] = mean
            rho[i, j] = poisson_tail(mean, k - 1)
            lam[i, j] = poisson_tail(mean, k)
            # Fraction of all vertices unpeeled after subround (i, j):
            # subtables h <= j have been updated this round, the rest carry
            # last round's survival.
            done = lam[i, : j + 1].sum()
            pending = lam[i - 1, j + 1:].sum()
            lam_prime[i, j] = (done + pending) / r
    return SubtableRecurrenceTrace(
        c=c, k=k, r=r, rho=rho, beta=beta, lam=lam, lam_prime=lam_prime
    )


def predicted_subtable_survivors(
    n: int, c: float, k: int, r: int, rounds: int
) -> np.ndarray:
    """Predicted survivors after each subround — the Prediction column of Table 6.

    Returns an array of shape ``(rounds, r)``; entry ``[i-1, j-1]`` is
    ``lambda'_{i,j} * n``.
    """
    n = check_positive_int(n, "n")
    trace = iterate_subtable_recurrence(c, k, r, rounds)
    return trace.lam_prime[1:, :] * n
