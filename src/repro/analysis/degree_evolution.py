"""Per-round residual-degree evolution of the peeling process.

Beyond the survivor counts of Table 2, the branching-process analysis makes a
clean prediction about the *edges*: in the tree approximation an edge is
still alive after ``t`` rounds exactly when each of its ``r`` endpoints has
survived ``t`` rounds, which happens independently with probability
:math:`\\rho_t` each — so the fraction of edges alive after round ``t`` is
:math:`\\rho_t^{\\,r}` and the mean residual degree over all vertices is
:math:`rc\\,\\rho_t^{\\,r}`.

This module exposes that prediction together with the matching measurements
(surviving-edge fractions, mean residual degree and the full residual-degree
histogram) on a real peeling run.  It is both a finer-grained check of the
theory than Table 2 and a practical diagnostic when peeling behaves
unexpectedly on structured, non-random inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.recurrences import iterate_recurrence
from repro.core.results import UNPEELED, PeelingResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "DegreeHistogram",
    "predicted_edge_survival",
    "predicted_mean_residual_degree",
    "measured_degree_distribution",
    "distribution_distance",
]


@dataclass(frozen=True)
class DegreeHistogram:
    """Distribution of the residual degree (alive incident edges) after a round.

    The histogram is taken over **all** vertices of the original graph —
    peeled vertices simply sit in the degree-0 bin — so that successive
    rounds are directly comparable.

    Attributes
    ----------
    round_index:
        Round after which the distribution applies (0 = before peeling).
    pmf:
        ``pmf[d]`` is the empirical fraction of vertices with residual degree
        ``d``; degrees above ``max_degree`` are folded into the last bin.
    mean:
        Mean residual degree over all vertices.
    edges_alive_fraction:
        Fraction of the original edges still alive after this round.
    """

    round_index: int
    pmf: np.ndarray
    mean: float
    edges_alive_fraction: float

    @property
    def max_degree(self) -> int:
        """Largest degree bin represented in the histogram."""
        return int(self.pmf.shape[0]) - 1


def predicted_edge_survival(c: float, k: int, r: int, rounds: int) -> np.ndarray:
    """Predicted fraction of edges alive after rounds ``0..rounds``.

    Entry ``t`` is :math:`\\rho_t^{\\,r}` from the idealized recurrence
    (``1.0`` at round 0).
    """
    check_positive_int(k, "k")
    check_positive_int(r, "r")
    check_nonnegative_int(rounds, "rounds")
    trace = iterate_recurrence(c, k, r, max(rounds, 1))
    return trace.rho[: rounds + 1] ** r


def predicted_mean_residual_degree(c: float, k: int, r: int, rounds: int) -> np.ndarray:
    """Predicted mean residual degree (over all vertices) after rounds ``0..rounds``.

    Entry ``t`` equals :math:`rc\\,\\rho_t^{\\,r}` — the number of surviving
    edges times ``r`` endpoints, averaged over ``n`` vertices.
    """
    return r * c * predicted_edge_survival(c, k, r, rounds)


def measured_degree_distribution(
    graph: Hypergraph,
    result: PeelingResult,
    rounds: int,
    *,
    max_degree: int = 40,
) -> List[DegreeHistogram]:
    """Measured residual-degree histograms after rounds ``0..rounds``.

    The residual degree of vertex ``v`` after round ``t`` counts the incident
    edges whose peel round is later than ``t`` (or that were never peeled).
    """
    check_nonnegative_int(rounds, "rounds")
    check_positive_int(max_degree, "max_degree")
    edges = graph.edges
    n = graph.num_vertices
    m = graph.num_edges
    edge_rounds = result.edge_peel_round
    histograms: List[DegreeHistogram] = []
    for t in range(0, rounds + 1):
        edge_alive = (edge_rounds == UNPEELED) | (edge_rounds > t)
        if m:
            degrees = np.bincount(edges[edge_alive].reshape(-1), minlength=n)
        else:
            degrees = np.zeros(n, dtype=np.int64)
        counts = np.bincount(
            np.minimum(degrees, max_degree), minlength=max_degree + 1
        ).astype(float)
        pmf = counts / n if n else counts
        histograms.append(
            DegreeHistogram(
                round_index=t,
                pmf=pmf,
                mean=float(degrees.mean()) if n else 0.0,
                edges_alive_fraction=float(edge_alive.sum() / m) if m else 0.0,
            )
        )
    return histograms


def distribution_distance(a: DegreeHistogram, b: DegreeHistogram) -> float:
    """Total variation distance between two degree histograms.

    Histograms of different lengths are compared over the common support,
    with the shorter one implicitly zero-padded.
    """
    size = max(a.pmf.shape[0], b.pmf.shape[0])
    pa = np.zeros(size)
    pb = np.zeros(size)
    pa[: a.pmf.shape[0]] = a.pmf
    pb[: b.pmf.shape[0]] = b.pmf
    return float(0.5 * np.abs(pa - pb).sum())
