"""Theoretical analysis of the peeling process.

Implements the analytical machinery of the paper:

* :mod:`~repro.analysis.thresholds` — the load threshold
  :math:`c^*_{k,r}` of Equation (2.1) together with the minimizing point
  :math:`x^*`.
* :mod:`~repro.analysis.recurrences` — the idealized branching-process
  recurrences :math:`\\rho_i, \\lambda_i, \\beta_i` (Equations 3.2–3.4) and
  the subtable recurrences of Appendix B (Equation B.1).
* :mod:`~repro.analysis.fibonacci` — order-r Fibonacci sequences and their
  growth rates :math:`\\phi_r` used by Theorem 7.
* :mod:`~repro.analysis.rounds` — closed-form round-complexity predictions of
  Theorems 1, 2, 3, 5 and 7.
* :mod:`~repro.analysis.threshold_gap` — the three-phase
  :math:`\\Theta(\\sqrt{1/\\nu})` analysis of Section 7.
"""

from repro.analysis.thresholds import (
    peeling_threshold,
    threshold_minimizer,
    poisson_tail,
    survival_update,
)
from repro.analysis.recurrences import (
    RecurrenceTrace,
    iterate_recurrence,
    lambda_trace,
    predicted_survivors,
    SubtableRecurrenceTrace,
    iterate_subtable_recurrence,
    predicted_subtable_survivors,
)
from repro.analysis.fibonacci import (
    fibonacci_sequence,
    fibonacci_growth_rate,
    subtable_round_ratio,
)
from repro.analysis.rounds import (
    rounds_below_threshold,
    rounds_above_threshold,
    rounds_near_threshold,
    rounds_with_subtables,
    leading_constant_below,
    leading_constant_subtables,
    gao_leading_constant,
    predict_rounds,
)
from repro.analysis.threshold_gap import (
    gap_rounds_estimate,
    beta_fixed_point,
    critical_point,
    plateau_length,
)
from repro.analysis.degree_evolution import (
    DegreeHistogram,
    predicted_edge_survival,
    predicted_mean_residual_degree,
    measured_degree_distribution,
    distribution_distance,
)

__all__ = [
    "peeling_threshold",
    "threshold_minimizer",
    "poisson_tail",
    "survival_update",
    "RecurrenceTrace",
    "iterate_recurrence",
    "lambda_trace",
    "predicted_survivors",
    "SubtableRecurrenceTrace",
    "iterate_subtable_recurrence",
    "predicted_subtable_survivors",
    "fibonacci_sequence",
    "fibonacci_growth_rate",
    "subtable_round_ratio",
    "rounds_below_threshold",
    "rounds_above_threshold",
    "rounds_near_threshold",
    "rounds_with_subtables",
    "leading_constant_below",
    "leading_constant_subtables",
    "gao_leading_constant",
    "predict_rounds",
    "gap_rounds_estimate",
    "beta_fixed_point",
    "critical_point",
    "plateau_length",
    "DegreeHistogram",
    "predicted_edge_survival",
    "predicted_mean_residual_degree",
    "measured_degree_distribution",
    "distribution_distance",
]
