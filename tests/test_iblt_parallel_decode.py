"""Tests for the parallel (round-synchronous) IBLT decoders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sparse_recovery import random_distinct_keys
from repro.iblt import IBLT, FlatParallelDecoder, SubtableParallelDecoder


def _loaded_table(num_cells: int, load: float, r: int = 3, seed: int = 0, layout: str = "subtables"):
    table = IBLT(num_cells, r, layout=layout, seed=seed)
    keys = random_distinct_keys(int(load * num_cells), seed=seed + 1)
    table.insert(keys)
    return table, keys


class TestSubtableDecoder:
    def test_recovers_everything_below_threshold(self):
        table, keys = _loaded_table(3000, 0.70, r=3, seed=1)
        result = SubtableParallelDecoder().decode(table)
        assert result.success
        assert sorted(map(int, result.recovered)) == sorted(map(int, keys))

    def test_agrees_with_serial_decode(self):
        table, keys = _loaded_table(3000, 0.75, r=3, seed=2)
        serial = table.decode()
        parallel = SubtableParallelDecoder().decode(table)
        assert serial.success == parallel.success
        assert sorted(map(int, serial.recovered)) == sorted(map(int, parallel.recovered))

    def test_overloaded_table_partial_recovery(self):
        table, keys = _loaded_table(3000, 0.95, r=3, seed=3)
        result = SubtableParallelDecoder().decode(table)
        assert not result.success
        assert 0 < result.recovered.size < keys.size
        # Everything recovered must be a genuine key.
        assert np.isin(result.recovered, keys).all()

    def test_requires_subtable_layout(self):
        table = IBLT(300, 3, layout="flat")
        with pytest.raises(ValueError):
            SubtableParallelDecoder().decode(table)

    def test_does_not_mutate_by_default(self):
        table, _ = _loaded_table(300, 0.5, seed=4)
        SubtableParallelDecoder().decode(table)
        assert not table.is_empty()

    def test_in_place_consumes_table(self):
        table, _ = _loaded_table(300, 0.5, seed=4)
        result = SubtableParallelDecoder().decode(table, in_place=True)
        assert result.success
        assert table.is_empty()

    def test_rounds_and_subrounds_relationship(self):
        table, _ = _loaded_table(3000, 0.70, r=3, seed=5)
        result = SubtableParallelDecoder().decode(table)
        assert result.rounds >= 1
        assert result.rounds <= result.subrounds <= 3 * result.rounds

    def test_round_stats_cover_all_subrounds(self):
        table, _ = _loaded_table(900, 0.6, r=3, seed=6)
        result = SubtableParallelDecoder().decode(table)
        assert len(result.round_stats) >= result.subrounds
        assert all(s.work == 300 for s in result.round_stats)

    def test_signed_difference_decoding(self):
        a = IBLT(600, 3, seed=7)
        b = IBLT(600, 3, seed=7)
        shared = random_distinct_keys(300, seed=8)
        a.insert(shared)
        b.insert(shared)
        a.insert([11111])
        b.insert([22222, 33333])
        diff = a.subtract(b)
        result = SubtableParallelDecoder().decode(diff)
        assert result.success
        assert list(map(int, result.recovered)) == [11111]
        assert sorted(map(int, result.removed)) == [22222, 33333]

    def test_unsigned_mode_skips_negative_cells(self):
        table = IBLT(300, 3, seed=9)
        table.delete([5])
        result = SubtableParallelDecoder(signed=False).decode(table)
        assert not result.success
        assert result.removed.size == 0

    def test_empty_table(self):
        result = SubtableParallelDecoder().decode(IBLT(300, 3))
        assert result.success
        assert result.rounds == 0

    def test_conflict_tracking_optional(self):
        table, _ = _loaded_table(300, 0.5, seed=10)
        with_tracking = SubtableParallelDecoder(track_conflicts=True).decode(table)
        without = SubtableParallelDecoder(track_conflicts=False).decode(table)
        assert with_tracking.conflict_depths != [] or with_tracking.rounds == 0
        assert without.conflict_depths == []

    def test_no_duplicate_recoveries(self):
        table, keys = _loaded_table(3000, 0.7, r=4, seed=11)
        result = SubtableParallelDecoder().decode(table)
        recovered = list(map(int, result.recovered))
        assert len(recovered) == len(set(recovered))

    def test_r4_table(self):
        table, keys = _loaded_table(4000, 0.70, r=4, seed=12)
        result = SubtableParallelDecoder().decode(table)
        assert result.success
        assert result.recovered.size == keys.size


class TestFlatDecoder:
    def test_recovers_everything_below_threshold(self):
        table, keys = _loaded_table(3000, 0.70, r=3, seed=20, layout="flat")
        result = FlatParallelDecoder().decode(table)
        assert result.success
        assert sorted(map(int, result.recovered)) == sorted(map(int, keys))

    def test_deduplicates_simultaneously_pure_items(self):
        # A single key is pure in all of its r cells at once; without
        # deduplication it would be removed r times and corrupt the table.
        table = IBLT(300, 3, layout="flat", seed=21)
        table.insert([123456])
        result = FlatParallelDecoder().decode(table)
        assert result.success
        assert result.recovered.tolist() == [123456]

    def test_works_on_subtable_layout_too(self):
        table, keys = _loaded_table(3000, 0.70, r=3, seed=22)
        result = FlatParallelDecoder().decode(table)
        assert result.success

    def test_agrees_with_subtable_decoder_on_success(self):
        table, keys = _loaded_table(3000, 0.75, r=3, seed=23)
        flat = FlatParallelDecoder().decode(table)
        sub = SubtableParallelDecoder().decode(table)
        assert flat.success == sub.success
        assert sorted(map(int, flat.recovered)) == sorted(map(int, sub.recovered))

    def test_rounds_not_fewer_than_needed(self):
        table, _ = _loaded_table(3000, 0.7, r=3, seed=24)
        flat = FlatParallelDecoder().decode(table)
        sub = SubtableParallelDecoder().decode(table)
        # Subtable decoding peels at least as much per full round, so it never
        # needs more rounds than the flat decoder.
        assert sub.rounds <= flat.rounds

    def test_work_counts_full_scans(self):
        table, _ = _loaded_table(900, 0.6, r=3, seed=25, layout="flat")
        result = FlatParallelDecoder().decode(table)
        assert all(s.work == 900 for s in result.round_stats)

    def test_empty_table(self):
        result = FlatParallelDecoder().decode(IBLT(300, 3, layout="flat"))
        assert result.success
        assert result.rounds == 0
