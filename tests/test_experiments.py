"""Tests for the experiment harness (Tables 1–6 and Figure 1)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    Figure1Series,
    format_figure1,
    format_table1,
    format_table2,
    format_table34,
    format_table5,
    format_table6,
    run_figure1,
    run_iblt_experiment,
    run_table1,
    run_table1_cell,
    run_table2,
    run_table34,
    run_table5,
    run_table5_cell,
    run_table6,
    summarize,
)
from repro.experiments.runner import run_trials


class TestRunner:
    def test_run_trials_reproducible(self):
        def trial(rng):
            return int(rng.integers(0, 10**6))

        assert run_trials(trial, 5, seed=1) == run_trials(trial, 5, seed=1)
        assert run_trials(trial, 5, seed=1) != run_trials(trial, 5, seed=2)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0 and summary.maximum == 3.0
        assert summary.count == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTable1:
    def test_cell_below_threshold(self):
        row = run_table1_cell(5000, 0.7, trials=5, seed=1)
        assert row.failed == 0
        assert 8 <= row.avg_rounds <= 16

    def test_cell_above_threshold(self):
        row = run_table1_cell(5000, 0.85, trials=5, seed=2)
        assert row.failed == 5
        assert row.avg_rounds >= 8

    def test_sweep_and_format(self):
        rows = run_table1(sizes=(2000, 4000), densities=(0.7, 0.85), trials=3, seed=3)
        assert len(rows) == 4
        text = format_table1(rows)
        assert "c=0.7" in text and "c=0.85" in text and "2000" in text

    def test_rounds_grow_above_threshold(self):
        rows = run_table1(sizes=(2000, 32_000), densities=(0.85,), trials=4, seed=4)
        small, large = rows[0], rows[1]
        assert large.avg_rounds > small.avg_rounds + 1.5

    def test_rounds_nearly_flat_below_threshold(self):
        rows = run_table1(sizes=(2000, 32_000), densities=(0.7,), trials=4, seed=5)
        small, large = rows[0], rows[1]
        assert abs(large.avg_rounds - small.avg_rounds) <= 2.0


class TestTable2:
    def test_prediction_matches_experiment_below_threshold(self):
        rows = run_table2(n=30_000, c=0.7, rounds=14, trials=4, seed=1)
        # Early rounds (large counts) must track the recurrence to ~2%.
        for row in rows[:8]:
            assert row.relative_error < 0.02
        text = format_table2(rows, c=0.7)
        assert "Prediction" in text

    def test_prediction_matches_experiment_above_threshold(self):
        rows = run_table2(n=30_000, c=0.85, rounds=12, trials=4, seed=2)
        for row in rows:
            assert row.relative_error < 0.02

    def test_survivor_counts_monotone(self):
        rows = run_table2(n=10_000, c=0.7, rounds=10, trials=2, seed=3)
        experiments = [row.experiment for row in rows]
        assert all(a >= b for a, b in zip(experiments, experiments[1:]))


class TestTables34:
    def test_below_threshold_full_recovery_and_speedup(self):
        row = run_iblt_experiment(3, 0.75, num_cells=9000, seed=1)
        assert row.fraction_recovered == pytest.approx(1.0)
        assert row.recovery_speedup > 2.0
        assert row.insert_speedup > 2.0

    def test_above_threshold_partial_recovery_and_smaller_speedup(self):
        below = run_iblt_experiment(3, 0.75, num_cells=9000, seed=2)
        above = run_iblt_experiment(3, 0.83, num_cells=9000, seed=2)
        assert above.fraction_recovered < 0.9
        assert above.rounds >= below.rounds
        assert above.recovery_speedup < below.recovery_speedup

    def test_r4_table4_shape(self):
        below = run_iblt_experiment(4, 0.75, num_cells=8000, seed=3)
        above = run_iblt_experiment(4, 0.83, num_cells=8000, seed=3)
        assert below.fraction_recovered == pytest.approx(1.0)
        # r=4 threshold is ≈0.772, so 0.83 recovers only a small fraction
        # (paper: 24.6%).
        assert above.fraction_recovered < 0.5

    def test_run_table34_and_format(self):
        rows = run_table34(3, loads=(0.5, 0.75), num_cells=6000, seed=4)
        assert len(rows) == 2
        text = format_table34(rows)
        assert "Load" in text and "Recovery speedup" in text

    def test_format_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table34([])

    def test_num_cells_rounded_to_multiple_of_r(self):
        row = run_iblt_experiment(3, 0.5, num_cells=1000, seed=5)
        assert row.num_cells % 3 == 0


class TestTables56:
    def test_table5_cell_below_threshold(self):
        row = run_table5_cell(4000, 0.7, trials=4, seed=1)
        assert row.failed == 0
        assert row.avg_subrounds <= 4 * row.avg_rounds
        assert row.avg_subrounds >= row.avg_rounds

    def test_table5_sweep_and_format(self):
        rows = run_table5(sizes=(2000, 4000), densities=(0.7,), trials=3, seed=2)
        assert len(rows) == 2
        assert "Subrounds" in format_table5(rows)

    def test_table5_subrounds_about_twice_table1_rounds(self):
        t5 = run_table5_cell(20_000, 0.7, trials=4, seed=3)
        t1 = run_table1_cell(20_000, 0.7, trials=4, seed=3)
        ratio = t5.avg_subrounds / t1.avg_rounds
        # Paper: ratio ≈ 2 (26.1/12.6); certainly between 1 and 4.
        assert 1.2 < ratio < 3.5

    def test_table6_prediction_accuracy(self):
        rows = run_table6(n=30_000, c=0.7, rounds=5, trials=4, seed=4)
        assert len(rows) == 20
        for row in rows[:12]:
            assert row.relative_error < 0.03
        assert "Prediction" in format_table6(rows, c=0.7)

    def test_table6_survivors_monotone(self):
        rows = run_table6(n=10_000, c=0.7, rounds=4, trials=2, seed=5)
        values = [row.experiment for row in rows]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


class TestFigure1:
    def test_series_structure(self):
        series = run_figure1((0.75, 0.77), k=2, r=4, max_rounds=500)
        assert set(series) == {0.75, 0.77}
        for s in series.values():
            assert isinstance(s, Figure1Series)
            assert s.beta[0] == pytest.approx(4 * s.c)
            assert s.nu > 0

    def test_plateau_grows_closer_to_threshold(self):
        series = run_figure1((0.75, 0.772), k=2, r=4, max_rounds=2000)
        assert series[0.772].gap.plateau_rounds > series[0.75].gap.plateau_rounds
        assert series[0.772].rounds_to_extinction > series[0.75].rounds_to_extinction

    def test_above_threshold_rejected(self):
        with pytest.raises(ValueError):
            run_figure1((0.8,), k=2, r=4)

    def test_format(self):
        series = run_figure1((0.75,), k=2, r=4, max_rounds=500)
        text = format_figure1(series, k=2, r=4)
        assert "plateau" in text and "0.75" in text
