"""Tests for the random hypergraph generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    binomial_hypergraph,
    edge_density,
    hypergraph_from_edges,
    partitioned_hypergraph,
    random_hypergraph,
)


class TestRandomHypergraph:
    def test_edge_count_matches_density(self):
        graph = random_hypergraph(1000, 0.7, 3, seed=1)
        assert graph.num_edges == 700
        assert graph.num_vertices == 1000

    def test_explicit_num_edges_overrides_density(self):
        graph = random_hypergraph(100, 0.5, 3, num_edges=37, seed=1)
        assert graph.num_edges == 37

    def test_edges_have_distinct_vertices(self):
        graph = random_hypergraph(50, 2.0, 4, seed=7)
        edges = np.sort(graph.edges, axis=1)
        assert not (edges[:, 1:] == edges[:, :-1]).any()

    def test_reproducible_with_seed(self):
        a = random_hypergraph(200, 0.8, 3, seed=5)
        b = random_hypergraph(200, 0.8, 3, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_hypergraph(200, 0.8, 3, seed=5)
        b = random_hypergraph(200, 0.8, 3, seed=6)
        assert a != b

    def test_rejects_r_below_two(self):
        with pytest.raises(ValueError):
            random_hypergraph(100, 0.5, 1, seed=1)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(ValueError):
            random_hypergraph(100, 0.0, 3, seed=1)

    def test_zero_edges_allowed_explicitly(self):
        graph = random_hypergraph(100, 0.5, 3, num_edges=0, seed=1)
        assert graph.num_edges == 0

    def test_r_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            random_hypergraph(3, 1.0, 5, seed=1)

    def test_vertices_roughly_uniform(self):
        # With 20k edges of size 3 over 200 vertices, every vertex should be
        # hit many times; a completely skipped vertex would signal a broken
        # sampler.
        graph = random_hypergraph(200, 100.0, 3, seed=3)
        assert (graph.degrees() > 0).all()

    @given(
        n=st.integers(min_value=10, max_value=300),
        c=st.floats(min_value=0.1, max_value=2.0),
        r=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_valid_edges(self, n, c, r):
        graph = random_hypergraph(n, c, r, seed=0)
        assert graph.num_edges == int(round(c * n))
        if graph.num_edges:
            assert graph.edges.min() >= 0
            assert graph.edges.max() < n
            sorted_edges = np.sort(graph.edges, axis=1)
            assert not (sorted_edges[:, 1:] == sorted_edges[:, :-1]).any()


class TestBinomialHypergraph:
    def test_mean_edge_count_near_cn(self):
        n, c = 2000, 0.7
        counts = [
            binomial_hypergraph(n, c, 3, seed=seed).num_edges for seed in range(5)
        ]
        mean = np.mean(counts)
        # Poisson(1400): 5-sample mean within ~5 standard errors.
        assert abs(mean - c * n) < 5 * np.sqrt(c * n / 5)

    def test_distinct_vertices_within_edges(self):
        graph = binomial_hypergraph(300, 1.0, 4, seed=2)
        edges = np.sort(graph.edges, axis=1)
        assert not (edges[:, 1:] == edges[:, :-1]).any()

    def test_reproducible(self):
        a = binomial_hypergraph(500, 0.5, 3, seed=9)
        b = binomial_hypergraph(500, 0.5, 3, seed=9)
        assert a == b

    def test_rejects_r_below_two(self):
        with pytest.raises(ValueError):
            binomial_hypergraph(100, 0.5, 1, seed=1)


class TestPartitionedHypergraph:
    def test_partition_structure(self):
        graph = partitioned_hypergraph(400, 0.7, 4, seed=1)
        assert graph.is_partitioned
        assert graph.num_partitions == 4
        block = 100
        edges = graph.edges
        for j in range(4):
            assert (edges[:, j] >= j * block).all()
            assert (edges[:, j] < (j + 1) * block).all()

    def test_edge_count(self):
        graph = partitioned_hypergraph(400, 0.7, 4, seed=1)
        assert graph.num_edges == 280

    def test_requires_divisible_n(self):
        with pytest.raises(ValueError, match="divisible"):
            partitioned_hypergraph(401, 0.7, 4, seed=1)

    def test_explicit_num_edges(self):
        graph = partitioned_hypergraph(40, 0.5, 4, num_edges=11, seed=1)
        assert graph.num_edges == 11

    def test_reproducible(self):
        a = partitioned_hypergraph(200, 0.8, 4, seed=5)
        b = partitioned_hypergraph(200, 0.8, 4, seed=5)
        assert a == b

    def test_vertex_partition_matches_blocks(self):
        graph = partitioned_hypergraph(40, 0.5, 4, seed=1)
        partition = graph.vertex_partition
        assert partition.tolist() == sum(([j] * 10 for j in range(4)), [])


class TestFromEdgesAndDensity:
    def test_from_edges_validates(self):
        with pytest.raises(ValueError):
            hypergraph_from_edges(3, [[0, 1, 7]])

    def test_from_edges_roundtrip(self):
        graph = hypergraph_from_edges(5, [[0, 1, 2], [2, 3, 4]])
        assert graph.num_edges == 2

    def test_edge_density_helper(self):
        assert edge_density(100, 70) == pytest.approx(0.7)

    def test_edge_density_rejects_zero_vertices(self):
        with pytest.raises(ValueError):
            edge_density(0, 10)
