"""Tests for the shared-memory IBLT decoder (``"shm-flat"``).

The contract: identical results *and accounting* to the in-process flat
round-synchronous decoder at every worker count, plus the flat-layout
self-collision coverage — a key whose hashes land in the same cell must
decode the same way under every decoder that supports its layout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.iblt import IBLT, available_decoders
from repro.iblt.parallel_decode import FlatParallelDecoder
from repro.parallel.shm import ShmFlatDecoder

TIMEOUT = 30.0


def _loaded_table(num_cells: int, r: int, load: float, seed: int, layout: str = "subtables") -> IBLT:
    table = IBLT(num_cells, r, seed=seed, layout=layout)
    num_keys = int(load * num_cells)
    keys = (np.arange(1, num_keys + 1, dtype=np.uint64) * np.uint64(2654435761)) | np.uint64(1)
    table.insert(keys)
    return table


def _assert_same_decode(got, ref):
    assert got.rounds == ref.rounds
    assert got.subrounds == ref.subrounds
    assert got.success == ref.success
    assert np.array_equal(got.recovered, ref.recovered)
    assert np.array_equal(got.removed, ref.removed)
    assert got.decode.cells_scanned == ref.decode.cells_scanned
    assert got.round_stats == ref.round_stats
    assert got.conflict_depths == ref.conflict_depths


class TestParity:
    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_matches_flat_decoder(self, num_workers):
        table = _loaded_table(3000, 3, 0.75, 31)
        ref = FlatParallelDecoder().decode(table)
        got = ShmFlatDecoder(num_workers=num_workers, barrier_timeout=TIMEOUT).decode(table)
        _assert_same_decode(got, ref)

    def test_flat_layout_table(self):
        table = _loaded_table(999, 3, 0.6, 7, layout="flat")
        ref = FlatParallelDecoder().decode(table)
        got = ShmFlatDecoder(num_workers=2, barrier_timeout=TIMEOUT).decode(table)
        _assert_same_decode(got, ref)

    def test_signed_difference_digest(self):
        a = _loaded_table(600, 3, 0.5, 3)
        b = IBLT(600, 3, seed=3)
        b.insert([11, 22, 33])
        diff = a.subtract(b)
        ref = FlatParallelDecoder().decode(diff)
        got = ShmFlatDecoder(num_workers=2, barrier_timeout=TIMEOUT).decode(diff)
        _assert_same_decode(got, ref)
        assert got.removed.size  # net-deleted keys decode with negative sign

    def test_overloaded_table_fails_identically(self):
        table = _loaded_table(300, 3, 1.5, 13)  # far above the threshold
        ref = FlatParallelDecoder().decode(table)
        got = ShmFlatDecoder(num_workers=2, barrier_timeout=TIMEOUT).decode(table)
        assert not got.success
        _assert_same_decode(got, ref)

    def test_empty_table(self):
        table = IBLT(90, 3, seed=1)
        got = ShmFlatDecoder(num_workers=2, barrier_timeout=TIMEOUT).decode(table)
        assert got.success and got.rounds == 0 and got.num_recovered == 0

    def test_in_place_consumes_table(self):
        table = IBLT(600, 3, seed=5)
        table.insert([3, 9, 27])
        got = ShmFlatDecoder(num_workers=2, barrier_timeout=TIMEOUT).decode(table, in_place=True)
        assert got.success
        assert table.is_empty()

    def test_track_conflicts_off(self):
        table = _loaded_table(300, 3, 0.5, 2)
        got = ShmFlatDecoder(
            num_workers=2, track_conflicts=False, barrier_timeout=TIMEOUT
        ).decode(table)
        assert got.conflict_depths == []
        assert got.success


class TestWiring:
    def test_registered(self):
        assert "shm-flat" in available_decoders()

    def test_decode_front_door(self):
        table = _loaded_table(600, 3, 0.5, 4)
        got = table.decode(decoder="shm-flat", num_workers=2, barrier_timeout=TIMEOUT)
        ref = table.decode(decoder="flat")
        _assert_same_decode(got, ref)

    def test_serial_agreement(self):
        table = _loaded_table(600, 3, 0.6, 8)
        serial = table.decode(decoder="serial")
        got = table.decode(decoder="shm-flat", num_workers=2, barrier_timeout=TIMEOUT)
        assert got.success == serial.success
        assert np.array_equal(np.sort(got.recovered), np.sort(serial.recovered))


def _find_self_colliding_key(hasher, num_cells: int) -> int:
    """A key with a duplicate endpoint (two of its r hashes share one cell)."""
    for key in range(1, 200_000):
        cells = hasher.cell_indices(np.asarray([key], dtype=np.uint64))[0]
        if np.unique(cells).size == cells.size - 1:
            return key
    raise AssertionError("no self-colliding key found (hash family changed?)")


class TestFlatSelfCollision:
    """Satellite coverage: a duplicate-endpoint key must decode everywhere.

    In the flat layout a key's ``r`` hashes may land in the same cell —
    the hypergraph edge has a duplicate endpoint (the remark after the
    paper's Theorem 1).  Such a key contributes count 2 to the shared cell,
    so only its third cell is ever pure; peeling it must still zero the
    duplicate cell (two XORs of the same key cancel).  The same key stored
    in the subtable layout cannot self-collide, and the subtable decoder
    must recover it identically.
    """

    NUM_CELLS = 60
    R = 3
    SEED = 2024

    def _flat_table(self):
        table = IBLT(self.NUM_CELLS, self.R, layout="flat", seed=self.SEED)
        key = _find_self_colliding_key(table.hasher, self.NUM_CELLS)
        table.insert([key])
        return table, key

    def test_key_actually_self_collides(self):
        table, key = self._flat_table()
        cells = table.hasher.cell_indices(np.asarray([key], dtype=np.uint64))[0]
        assert np.unique(cells).size == 2  # exactly one duplicated endpoint
        shared = int(np.argmax(np.bincount(cells.astype(np.int64))))  # the duplicated cell id
        assert table.count[shared] == 2
        assert table.key_sum[shared] == 0  # the key XORed itself out

    @pytest.mark.parametrize("decoder_kwargs", [
        {"decoder": "serial"},
        {"decoder": "flat"},
        {"decoder": "shm-flat", "num_workers": 2, "barrier_timeout": TIMEOUT},
    ])
    def test_flat_layout_decoders_recover_the_key(self, decoder_kwargs):
        table, key = self._flat_table()
        result = table.decode(**decoder_kwargs)
        assert result.success
        assert sorted(int(k) for k in result.recovered) == [key]

    def test_subtable_layout_decodes_same_key(self):
        flat_table, key = self._flat_table()
        num_cells = self.NUM_CELLS - self.NUM_CELLS % self.R
        sub_table = IBLT(num_cells, self.R, layout="subtables", seed=self.SEED)
        sub_table.insert([key])
        result = sub_table.decode(decoder="subtable")
        flat_result = flat_table.decode(decoder="flat")
        assert result.success and flat_result.success
        assert np.array_equal(np.sort(result.recovered), np.sort(flat_result.recovered))

    def test_self_collision_among_many_keys(self):
        table, key = self._flat_table()
        extra = [int(k) for k in range(1000, 1020) if k != key]
        table.insert(extra)
        expected = sorted([key, *extra])
        for kwargs in (
            {"decoder": "flat"},
            {"decoder": "shm-flat", "num_workers": 2, "barrier_timeout": TIMEOUT},
        ):
            result = table.decode(**kwargs)
            if result.success:  # tiny tables can legitimately fail to decode
                assert sorted(int(k) for k in result.recovered) == expected
        serial = table.decode(decoder="serial")
        flat = table.decode(decoder="flat")
        assert flat.success == serial.success
        assert np.array_equal(np.sort(flat.recovered), np.sort(serial.recovered))
