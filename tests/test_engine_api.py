"""Tests for the engine registry, PeelingConfig and the peel/peel_many API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParallelPeeler, SequentialPeeler, SubtablePeeler, peel_to_kcore
from repro.engine import (
    PeelingConfig,
    PeelingEngine,
    available_engines,
    get_engine,
    peel,
    peel_many,
    register_engine,
    unregister_engine,
)
from repro.hypergraph import partitioned_hypergraph, random_hypergraph
from repro.parallel.backend import SerialBackend, available_backends


def assert_same_result(a, b):
    assert a.mode == b.mode
    assert a.k == b.k
    assert a.num_rounds == b.num_rounds
    assert a.num_subrounds == b.num_subrounds
    assert a.success == b.success
    np.testing.assert_array_equal(a.vertex_peel_round, b.vertex_peel_round)
    np.testing.assert_array_equal(a.edge_peel_round, b.edge_peel_round)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_engines_registered(self):
        assert set(available_engines()) >= {"sequential", "parallel", "subtable"}

    def test_get_engine_returns_classes(self):
        assert get_engine("sequential") is SequentialPeeler
        assert get_engine("parallel") is ParallelPeeler
        assert get_engine("subtable") is SubtablePeeler

    def test_unknown_engine_lists_available(self):
        with pytest.raises(ValueError, match="unknown engine 'nope'.*'parallel'"):
            get_engine("nope")

    def test_register_and_unregister_custom_engine(self):
        class EagerPeeler(ParallelPeeler):
            pass

        register_engine("eager", EagerPeeler)
        try:
            assert "eager" in available_engines()
            assert get_engine("eager") is EagerPeeler
            with pytest.raises(ValueError, match="already registered"):
                register_engine("eager", ParallelPeeler)
            register_engine("eager", ParallelPeeler, overwrite=True)
            assert get_engine("eager") is ParallelPeeler
        finally:
            unregister_engine("eager")
        assert "eager" not in available_engines()

    def test_register_rejects_bad_arguments(self):
        with pytest.raises(TypeError):
            register_engine("", ParallelPeeler)
        with pytest.raises(TypeError):
            register_engine("thing", "not-callable")

    def test_engines_satisfy_protocol(self):
        assert isinstance(ParallelPeeler(2), PeelingEngine)
        assert isinstance(SequentialPeeler(2), PeelingEngine)


# --------------------------------------------------------------------- #
# PeelingConfig
# --------------------------------------------------------------------- #
class TestPeelingConfig:
    def test_dict_round_trip(self):
        config = PeelingConfig(engine="parallel", k=3, update="frontier", max_rounds=99)
        rebuilt = PeelingConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_dict_round_trip_with_options(self):
        config = PeelingConfig(engine="parallel", options={"update": "frontier"})
        assert PeelingConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown PeelingConfig keys"):
            PeelingConfig.from_dict({"engine": "parallel", "bogus": 1})

    def test_from_options_splits_fields(self):
        config = PeelingConfig.from_options("parallel", k=3, update="frontier", foo=1)
        assert config.k == 3
        assert config.update == "frontier"
        assert config.options == {"foo": 1}

    def test_build_constructs_configured_engine(self):
        engine = PeelingConfig(engine="parallel", k=3, update="frontier", track_stats=False).build()
        assert isinstance(engine, ParallelPeeler)
        assert engine.k == 3
        assert engine.update == "frontier"
        assert engine.track_stats is False

    def test_build_drops_inapplicable_shared_fields(self):
        # SequentialPeeler takes neither update nor max_rounds; both are
        # silently ignored, mirroring peel_to_kcore's historical behaviour.
        engine = PeelingConfig(engine="sequential", k=2, update="frontier", max_rounds=7).build()
        assert isinstance(engine, SequentialPeeler)

    def test_build_rejects_unknown_options(self):
        with pytest.raises(TypeError, match="does not accept option"):
            PeelingConfig(engine="sequential", options={"warp_speed": True}).build()

    def test_validation(self):
        with pytest.raises(ValueError):
            PeelingConfig(k=0)
        with pytest.raises(TypeError):
            PeelingConfig(engine="")

    def test_replace(self):
        config = PeelingConfig(engine="parallel", k=2)
        assert config.replace(k=5).k == 5
        assert config.k == 2


# --------------------------------------------------------------------- #
# peel()
# --------------------------------------------------------------------- #
class TestPeel:
    def test_parallel_matches_engine_class(self, small_below_threshold):
        assert_same_result(
            peel(small_below_threshold, "parallel", k=2),
            ParallelPeeler(2).peel(small_below_threshold),
        )

    def test_sequential_matches_engine_class(self, small_below_threshold):
        assert_same_result(
            peel(small_below_threshold, "sequential", k=2),
            SequentialPeeler(2).peel(small_below_threshold),
        )

    def test_subtable_matches_engine_class(self, small_partitioned):
        assert_same_result(
            peel(small_partitioned, "subtable", k=2),
            SubtablePeeler(2).peel(small_partitioned),
        )

    def test_default_engine_is_parallel(self, path_like_graph):
        assert peel(path_like_graph, k=2).mode == "parallel"

    def test_engine_specific_options_forwarded(self, small_below_threshold):
        full = peel(small_below_threshold, "parallel", k=2, update="full")
        frontier = peel(small_below_threshold, "parallel", k=2, update="frontier")
        assert_same_result(full, frontier)
        # Frontier scans strictly less work after round 1 on a sparse graph.
        assert sum(s.work for s in frontier.round_stats) < sum(s.work for s in full.round_stats)

    def test_peel_with_config(self, path_like_graph):
        config = PeelingConfig(engine="sequential", k=2)
        assert peel(path_like_graph, config=config).mode == "sequential"

    def test_config_and_options_are_exclusive(self, path_like_graph):
        config = PeelingConfig(engine="sequential", k=2)
        with pytest.raises(TypeError, match="not both"):
            peel(path_like_graph, "parallel", config=config)
        with pytest.raises(TypeError, match="not both"):
            peel(path_like_graph, config=config, k=3)

    def test_unknown_engine_raises(self, path_like_graph):
        with pytest.raises(ValueError, match="unknown engine"):
            peel(path_like_graph, "quantum")


# --------------------------------------------------------------------- #
# peel_many()
# --------------------------------------------------------------------- #
class TestPeelMany:
    @pytest.fixture(scope="class")
    def graphs(self):
        return [random_hypergraph(600, 0.7, 4, seed=s) for s in range(4)]

    @pytest.fixture(scope="class")
    def partitioned_graphs(self):
        return [partitioned_hypergraph(600, 0.7, 4, seed=s) for s in range(3)]

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    @pytest.mark.parametrize("engine", ["sequential", "parallel"])
    def test_matches_per_graph_peel_on_every_backend(self, graphs, engine, backend):
        batched = peel_many(graphs, engine, k=2, backend=backend, max_workers=2)
        assert len(batched) == len(graphs)
        for got, graph in zip(batched, graphs):
            assert_same_result(got, peel(graph, engine, k=2))

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_subtable_matches_on_every_backend(self, partitioned_graphs, backend):
        batched = peel_many(partitioned_graphs, "subtable", k=2, backend=backend, max_workers=2)
        for got, graph in zip(batched, partitioned_graphs):
            assert_same_result(got, peel(graph, "subtable", k=2))

    def test_accepts_backend_instance(self, graphs):
        backend = SerialBackend()
        batched = peel_many(graphs, "parallel", k=2, backend=backend)
        assert [r.num_rounds for r in batched] == [
            peel(g, "parallel", k=2).num_rounds for g in graphs
        ]

    def test_unknown_backend_lists_available(self, graphs):
        with pytest.raises(ValueError, match="unknown backend 'gpu'.*'serial'"):
            peel_many(graphs, "parallel", k=2, backend="gpu")

    def test_empty_batch(self):
        assert peel_many([], "parallel", k=2) == []

    def test_processes_backend_preserves_input_order(self):
        # Pin the documented "results come back in input order" guarantee
        # where it can actually break: a pool whose completion order differs
        # from submission order.  The first graph is much larger than the
        # rest, so later graphs finish first on the workers.
        graphs = [random_hypergraph(20_000, 0.7, 4, seed=90)] + [
            random_hypergraph(150 + 10 * i, 0.7, 4, seed=91 + i) for i in range(6)
        ]
        results = peel_many(graphs, "parallel", k=2, backend="processes", max_workers=2)
        assert [r.num_vertices for r in results] == [g.num_vertices for g in graphs]
        for graph, got in zip(graphs, results):
            assert_same_result(got, peel(graph, "parallel", k=2))


# --------------------------------------------------------------------- #
# deprecation shims
# --------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_peel_to_kcore_warns_and_delegates(self, small_below_threshold):
        with pytest.warns(DeprecationWarning, match="peel_to_kcore is deprecated"):
            legacy = peel_to_kcore(small_below_threshold, 2, mode="parallel")
        assert_same_result(legacy, peel(small_below_threshold, "parallel", k=2))

    def test_peel_to_kcore_still_supports_all_modes(self, small_partitioned):
        with pytest.warns(DeprecationWarning):
            result = peel_to_kcore(small_partitioned, 2, mode="subtable")
        assert result.mode == "subtable"

    def test_old_constructors_importable_from_top_level(self):
        import repro

        assert repro.ParallelPeeler is ParallelPeeler
        assert repro.SequentialPeeler is SequentialPeeler
        assert repro.SubtablePeeler is SubtablePeeler
