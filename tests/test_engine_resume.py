"""Checkpoint/resume of the peeling state and the resumable engines.

The contract under test: ``peel_resumable`` returns the same result a
plain ``peel`` would, plus a live state; after mutating that state with
``drop_edges`` and re-peeling via ``resume``, the surviving core is
identical to a from-scratch peel of the mutated graph — the incremental
path may never change *what* is peeled, only how much work finding it
takes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import DROPPED, UNPEELED
from repro.engine import peel, peel_resumable, resume
from repro.hypergraph import hypergraph_from_edges, random_hypergraph
from repro.kernels import (
    BatchedPeelState,
    PeelCheckpoint,
    PeelState,
    drop_edges,
    get_kernel,
    reseed_frontier,
)

RESUMABLE_ENGINES = ("parallel", "sequential")


def _mutated_graph(graph, dropped):
    keep = np.setdiff1d(np.arange(graph.num_edges, dtype=np.int64), dropped)
    return hypergraph_from_edges(graph.num_vertices, graph.edges[keep]), keep


def _drop_and_resume(engine, graph, *, k, churn, seed):
    result, state = peel_resumable(graph, engine, k=k)
    m = graph.num_edges
    rng = np.random.default_rng(seed)
    dropped = np.sort(rng.choice(m, size=max(1, int(churn * m)), replace=False))
    dirty = drop_edges(get_kernel(None), state, dropped)
    resumed = resume(state, dirty, engine, k=k)
    return result, dropped, resumed


class TestPeelStateCheckpoint:
    def test_checkpoint_roundtrip_restores_all_columns(self):
        graph = random_hypergraph(2_000, 0.9, 4, seed=3)
        result, state = peel_resumable(graph, "parallel", k=2)
        saved = state.checkpoint()
        assert isinstance(saved, PeelCheckpoint)
        before = {
            "degrees": state.degrees.copy(),
            "vertex_alive": state.vertex_alive.copy(),
            "edge_alive": state.edge_alive.copy(),
            "vertex_peel_round": state.vertex_peel_round.copy(),
            "edge_peel_round": state.edge_peel_round.copy(),
            "vertices_remaining": state.vertices_remaining,
            "edges_remaining": state.edges_remaining,
            "rounds_completed": state.rounds_completed,
        }
        # Mutate the live state, then restore.
        drop_edges(get_kernel(None), state, np.arange(50, dtype=np.int64))
        state.rounds_completed += 3
        assert state.resume(saved) is state
        np.testing.assert_array_equal(state.degrees, before["degrees"])
        np.testing.assert_array_equal(state.vertex_alive, before["vertex_alive"])
        np.testing.assert_array_equal(state.edge_alive, before["edge_alive"])
        np.testing.assert_array_equal(state.vertex_peel_round, before["vertex_peel_round"])
        np.testing.assert_array_equal(state.edge_peel_round, before["edge_peel_round"])
        assert state.vertices_remaining == before["vertices_remaining"]
        assert state.edges_remaining == before["edges_remaining"]
        assert state.rounds_completed == before["rounds_completed"]

    def test_checkpoint_is_a_snapshot_not_a_view(self):
        graph = random_hypergraph(500, 0.9, 3, seed=4)
        _, state = peel_resumable(graph, "parallel", k=2)
        saved = state.checkpoint()
        degrees_at_save = saved.degrees.copy()
        drop_edges(get_kernel(None), state, np.arange(20, dtype=np.int64))
        np.testing.assert_array_equal(saved.degrees, degrees_at_save)

    def test_resume_rejects_foreign_shapes(self):
        _, state_a = peel_resumable(random_hypergraph(500, 0.9, 3, seed=5), "parallel", k=2)
        _, state_b = peel_resumable(random_hypergraph(600, 0.9, 3, seed=5), "parallel", k=2)
        with pytest.raises(ValueError, match="shape"):
            state_a.resume(state_b.checkpoint())

    def test_batched_checkpoint_roundtrip(self):
        graphs = [random_hypergraph(300, 0.9, 3, seed=10 + i) for i in range(3)]
        state = BatchedPeelState.from_graphs(graphs)
        saved = state.checkpoint()
        before_remaining = state.vertices_remaining.copy()
        before_degrees = state.state.degrees.copy()
        state.state.degrees[:] = -1
        state.vertices_remaining[:] = 0
        state.resume(saved)
        np.testing.assert_array_equal(state.state.degrees, before_degrees)
        np.testing.assert_array_equal(state.vertices_remaining, before_remaining)


class TestReseedFrontier:
    def test_reseed_keeps_only_live_vertices(self):
        graph = random_hypergraph(1_000, 0.7, 3, seed=6)
        _, state = peel_resumable(graph, "parallel", k=2)
        # Subcritical: everything peeled, so no vertex is alive.
        frontier = reseed_frontier(get_kernel(None), state, np.arange(100, dtype=np.int64))
        assert frontier.size == 0
        np.testing.assert_array_equal(state.frontier, frontier)

    def test_reseed_deduplicates(self):
        graph = random_hypergraph(1_000, 1.1, 3, seed=6)
        _, state = peel_resumable(graph, "parallel", k=2)
        live = np.flatnonzero(state.vertex_alive)[:5]
        frontier = reseed_frontier(get_kernel(None), state, np.repeat(live, 3))
        np.testing.assert_array_equal(frontier, live)


class TestDropEdges:
    def test_drop_marks_edges_and_fixes_degrees(self):
        graph = random_hypergraph(1_000, 1.1, 3, seed=7)
        _, state = peel_resumable(graph, "parallel", k=2)
        live_edges = np.flatnonzero(state.edge_alive)[:10]
        before_remaining = state.edges_remaining
        dirty = drop_edges(get_kernel(None), state, live_edges)
        assert state.edges_remaining == before_remaining - live_edges.size
        assert not state.edge_alive[live_edges].any()
        assert (state.edge_peel_round[live_edges] == DROPPED).all()
        # Every reported dirty vertex is an endpoint of a dropped edge.
        endpoints = np.unique(graph.edges[live_edges].reshape(-1))
        assert np.isin(dirty, endpoints).all()

    def test_drop_is_idempotent_on_dead_edges(self):
        graph = random_hypergraph(1_000, 1.1, 3, seed=7)
        _, state = peel_resumable(graph, "parallel", k=2)
        live_edges = np.flatnonzero(state.edge_alive)[:10]
        drop_edges(get_kernel(None), state, live_edges)
        before = state.degrees.copy()
        dirty = drop_edges(get_kernel(None), state, live_edges)
        assert dirty.size == 0
        np.testing.assert_array_equal(state.degrees, before)


class TestEngineResume:
    @pytest.mark.parametrize("engine", RESUMABLE_ENGINES)
    def test_peel_resumable_matches_peel(self, engine):
        graph = random_hypergraph(5_000, 0.9, 3, seed=8)
        plain = peel(graph, engine, k=2)
        resumable, state = peel_resumable(graph, engine, k=2)
        assert resumable.success == plain.success
        assert resumable.num_rounds == plain.num_rounds
        np.testing.assert_array_equal(resumable.vertex_peel_round, plain.vertex_peel_round)
        np.testing.assert_array_equal(resumable.edge_peel_round, plain.edge_peel_round)
        assert state.rounds_completed >= 0

    @pytest.mark.parametrize("engine", RESUMABLE_ENGINES)
    @pytest.mark.parametrize("c", [0.7, 0.95, 1.1])
    def test_resume_after_churn_matches_scratch(self, engine, c):
        graph = random_hypergraph(5_000, c, 3, seed=9)
        _, dropped, resumed = _drop_and_resume(engine, graph, k=2, churn=0.01, seed=20)
        mutated, keep = _mutated_graph(graph, dropped)
        scratch = peel(mutated, engine, k=2)
        assert resumed.core_size == scratch.core_size
        np.testing.assert_array_equal(resumed.core_vertex_mask, scratch.core_vertex_mask)
        np.testing.assert_array_equal(resumed.core_edge_mask[keep], scratch.core_edge_mask)
        # Dropped edges are never reported as core.
        assert not resumed.core_edge_mask[dropped].any()

    def test_parallel_resume_accounting(self):
        graph = random_hypergraph(20_000, 0.9, 3, seed=10)
        full, dropped, resumed = _drop_and_resume("parallel", graph, k=2, churn=0.01, seed=21)
        assert resumed.resumed_from_round == full.num_rounds
        assert resumed.num_rounds >= resumed.resumed_from_round
        assert resumed.rounds_incremental == resumed.num_rounds - resumed.resumed_from_round
        assert "resumed_from_round" in resumed.summary()
        # Incremental work must stay far below a from-scratch re-peel.
        assert resumed.rounds_incremental <= full.num_rounds

    @pytest.mark.parametrize("engine", RESUMABLE_ENGINES)
    def test_resume_with_empty_dirty_set_changes_nothing(self, engine):
        graph = random_hypergraph(2_000, 1.1, 3, seed=11)
        full, state = peel_resumable(graph, engine, k=2)
        resumed = resume(state, np.empty(0, dtype=np.int64), engine, k=2)
        assert resumed.core_size == full.core_size
        np.testing.assert_array_equal(resumed.core_vertex_mask, full.core_vertex_mask)

    def test_repeated_resumes_accumulate(self):
        # Two churn batches applied one after the other end where a single
        # from-scratch peel of the twice-mutated graph ends.
        graph = random_hypergraph(5_000, 0.95, 3, seed=12)
        _, state = peel_resumable(graph, "parallel", k=2)
        rng = np.random.default_rng(30)
        all_dropped = []
        for _ in range(2):
            candidates = np.flatnonzero(state.edge_alive)
            batch = np.sort(rng.choice(candidates, size=40, replace=False))
            all_dropped.append(batch)
            dirty = drop_edges(get_kernel(None), state, batch)
            resumed = resume(state, dirty, "parallel", k=2)
        mutated, keep = _mutated_graph(graph, np.concatenate(all_dropped))
        scratch = peel(mutated, "parallel", k=2)
        assert resumed.core_size == scratch.core_size
        np.testing.assert_array_equal(resumed.core_edge_mask[keep], scratch.core_edge_mask)

    def test_non_resumable_engine_raises(self):
        graph = random_hypergraph(300, 0.7, 4, seed=13)
        with pytest.raises(ValueError, match="parallel"):
            peel_resumable(graph, "subtable", k=2)

    def test_result_is_isolated_from_later_resumes(self):
        graph = random_hypergraph(3_000, 0.95, 3, seed=14)
        first, state = peel_resumable(graph, "parallel", k=2)
        saved_rounds = first.edge_peel_round.copy()
        dirty = drop_edges(
            get_kernel(None), state, np.flatnonzero(state.edge_alive)[:30]
        )
        resume(state, dirty, "parallel", k=2)
        np.testing.assert_array_equal(first.edge_peel_round, saved_rounds)


class TestSentinels:
    def test_dropped_sentinel_distinct_from_unpeeled(self):
        assert DROPPED != UNPEELED
        assert DROPPED < 0 and UNPEELED < 0

    def test_state_from_graph_starts_at_round_zero(self):
        graph = random_hypergraph(100, 0.7, 3, seed=15)
        state = PeelState.from_graph(graph)
        assert state.rounds_completed == 0
