"""Tests for the k-XORSAT application."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import peeling_threshold
from repro.apps.xorsat import XorSatInstance, XorSatSolver, random_xorsat
from repro.apps.xorsat import _gf2_solve


class TestInstanceGeneration:
    def test_shapes_and_density(self):
        instance = random_xorsat(1000, 0.6, 3, seed=1)
        assert instance.num_variables == 1000
        assert instance.num_clauses == 600
        assert instance.clause_size == 3
        assert instance.density == pytest.approx(0.6)

    def test_planted_instance_is_satisfied_by_plant(self):
        instance = random_xorsat(500, 0.7, 3, seed=2)
        assert instance.planted is not None
        assert instance.check(instance.planted)

    def test_unplanted_instance_has_no_plant(self):
        instance = random_xorsat(500, 0.7, 3, planted=False, seed=3)
        assert instance.planted is None

    def test_check_rejects_bad_shape(self):
        instance = random_xorsat(10, 0.5, 3, seed=4)
        with pytest.raises(ValueError):
            instance.check(np.zeros(9, dtype=np.uint8))

    def test_to_hypergraph(self):
        instance = random_xorsat(100, 0.5, 3, seed=5)
        graph = instance.to_hypergraph()
        assert graph.num_vertices == 100
        assert graph.num_edges == 50

    def test_reproducible(self):
        a = random_xorsat(200, 0.6, 3, seed=6)
        b = random_xorsat(200, 0.6, 3, seed=6)
        assert np.array_equal(a.clauses, b.clauses)
        assert np.array_equal(a.parities, b.parities)

    def test_empty_instance(self):
        instance = random_xorsat(50, 0.5, 3, seed=7)
        empty = XorSatInstance(50, np.empty((0, 3), dtype=np.int64), np.empty(0, dtype=np.uint8))
        assert empty.check(np.zeros(50, dtype=np.uint8))
        assert empty.density == 0.0
        assert instance.num_clauses > 0


class TestGF2Solver:
    def test_simple_system(self):
        # x0 ^ x1 = 1, x1 = 1 -> x0 = 0, x1 = 1.
        rows = np.array([[1, 1, 1], [0, 1, 1]], dtype=np.uint8)
        ok, rank, solution = _gf2_solve(rows)
        assert ok and rank == 2
        assert solution.tolist() == [0, 1]

    def test_inconsistent_system(self):
        # x0 = 0 and x0 = 1.
        rows = np.array([[1, 0], [1, 1]], dtype=np.uint8)
        ok, rank, _ = _gf2_solve(rows)
        assert not ok

    def test_underdetermined_system(self):
        # x0 ^ x1 = 1 with a free variable: free vars set to 0.
        rows = np.array([[1, 1, 1]], dtype=np.uint8)
        ok, rank, solution = _gf2_solve(rows)
        assert ok and rank == 1
        assert (solution[0] ^ solution[1]) == 1

    def test_redundant_rows(self):
        rows = np.array([[1, 1, 0], [1, 1, 0]], dtype=np.uint8)
        ok, rank, solution = _gf2_solve(rows)
        assert ok and rank == 1


class TestSolver:
    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    def test_below_threshold_solved_by_peeling_alone(self, mode):
        instance = random_xorsat(5000, 0.7, 3, seed=8)  # c*_{2,3} ≈ 0.818
        solution = XorSatSolver(mode=mode).solve(instance)
        assert solution.satisfiable
        assert instance.check(solution.assignment)
        assert solution.core_clauses == 0
        assert solution.peeled_clauses == instance.num_clauses

    def test_above_threshold_needs_elimination(self):
        instance = random_xorsat(3000, 0.88, 3, seed=9)
        solution = XorSatSolver().solve(instance)
        assert solution.core_clauses > 0
        assert solution.elimination_rank > 0
        # Planted instances are satisfiable even above the peeling threshold.
        assert solution.satisfiable
        assert instance.check(solution.assignment)

    def test_unplanted_above_sat_threshold_unsatisfiable(self):
        # For 3-XORSAT the satisfiability threshold is ≈ 0.918; at density
        # 1.2 a random-parity instance is unsatisfiable w.h.p.
        instance = random_xorsat(2000, 1.2, 3, planted=False, seed=10)
        solution = XorSatSolver().solve(instance)
        assert not solution.satisfiable

    def test_parallel_round_count_small_below_threshold(self):
        instance = random_xorsat(50_000, 0.7, 3, seed=11)
        solution = XorSatSolver(mode="parallel").solve(instance)
        assert solution.satisfiable
        assert solution.peeling_rounds <= 25  # O(log log n)

    def test_k4_clauses(self):
        instance = random_xorsat(4000, 0.7, 4, seed=12)  # c*_{2,4} ≈ 0.772
        solution = XorSatSolver().solve(instance)
        assert solution.satisfiable
        assert solution.core_clauses == 0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            XorSatSolver(mode="quantum")  # type: ignore[arg-type]

    def test_empty_instance(self):
        instance = XorSatInstance(20, np.empty((0, 3), dtype=np.int64), np.empty(0, dtype=np.uint8))
        solution = XorSatSolver().solve(instance)
        assert solution.satisfiable
        assert solution.peeled_clauses == 0 and solution.core_clauses == 0

    def test_solver_threshold_matches_peeling_threshold(self):
        """Below c*_{2,3} peeling empties the system; above it a core remains."""
        c_star = peeling_threshold(2, 3)
        below = random_xorsat(8000, c_star - 0.05, 3, seed=13)
        above = random_xorsat(8000, c_star + 0.05, 3, seed=14)
        assert XorSatSolver().solve(below).core_clauses == 0
        assert XorSatSolver().solve(above).core_clauses > 0

    @given(
        n=st.integers(min_value=10, max_value=150),
        density=st.floats(min_value=0.1, max_value=1.0),
        k=st.integers(min_value=3, max_value=4),
        seed=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_planted_instances_always_solved(self, n, density, k, seed):
        """Planted instances are satisfiable; the solver must always find a
        satisfying assignment (peeling + elimination is complete)."""
        instance = random_xorsat(n, density, k, seed=seed)
        solution = XorSatSolver().solve(instance)
        assert solution.satisfiable
        assert instance.check(solution.assignment)

    @given(
        n=st.integers(min_value=10, max_value=120),
        density=st.floats(min_value=0.1, max_value=1.3),
        seed=st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_solver_never_claims_false_satisfaction(self, n, density, seed):
        instance = random_xorsat(n, density, 3, planted=False, seed=seed)
        solution = XorSatSolver().solve(instance)
        if solution.satisfiable:
            assert instance.check(solution.assignment)
