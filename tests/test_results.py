"""Tests for the PeelingResult / RoundStats containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParallelPeeler, SubtablePeeler
from repro.core.results import UNPEELED, PeelingResult, RoundStats
from repro.hypergraph import partitioned_hypergraph, random_hypergraph


def _manual_result() -> PeelingResult:
    stats = [
        RoundStats(1, vertices_peeled=3, edges_peeled=2, vertices_remaining=7,
                   edges_remaining=4, work=10),
        RoundStats(2, vertices_peeled=2, edges_peeled=2, vertices_remaining=5,
                   edges_remaining=2, work=7),
    ]
    return PeelingResult(
        k=2,
        mode="parallel",
        num_rounds=2,
        num_subrounds=2,
        success=False,
        vertex_peel_round=np.array([1, 1, 1, 2, 2, -1, -1, -1, -1, -1]),
        edge_peel_round=np.array([1, 1, 2, 2, -1, -1]),
        round_stats=stats,
    )


class TestDerivedViews:
    def test_counts(self):
        result = _manual_result()
        assert result.num_vertices == 10
        assert result.num_edges == 6
        assert result.core_size == 2

    def test_core_masks(self):
        result = _manual_result()
        assert result.core_vertex_mask.sum() == 5
        assert result.core_edge_mask.sum() == 2

    def test_per_round_arrays(self):
        result = _manual_result()
        assert result.vertices_remaining_per_round.tolist() == [7, 5]
        assert result.edges_remaining_per_round.tolist() == [4, 2]

    def test_total_work(self):
        assert _manual_result().total_work == 17

    def test_survivors_after_round(self):
        result = _manual_result()
        assert result.survivors_after_round(0) == 10
        assert result.survivors_after_round(1) == 7
        assert result.survivors_after_round(2) == 5
        assert result.survivors_after_round(99) == 5

    def test_survivors_negative_round_rejected(self):
        with pytest.raises(ValueError):
            _manual_result().survivors_after_round(-1)

    def test_summary_string(self):
        text = _manual_result().summary()
        assert "parallel" in text and "2 rounds" in text

    def test_unpeeled_sentinel(self):
        assert UNPEELED == -1


class TestSubtableGrouping:
    def test_per_round_survivors_group_by_subtable(self):
        graph = partitioned_hypergraph(4000, 0.6, 4, seed=1)
        result = SubtablePeeler(2).peel(graph)
        # Survivors after full round i must equal the survivors recorded by
        # the last subround of round i.
        per_round = [result.survivors_after_round(t) for t in range(1, result.num_rounds + 1)]
        stats = result.round_stats
        r = 4
        for i, value in enumerate(per_round[:-1], start=1):
            last_subround_of_round = stats[min(i * r, len(stats)) - 1]
            assert value == last_subround_of_round.vertices_remaining

    def test_parallel_and_subtable_round_zero(self):
        graph = random_hypergraph(500, 0.6, 4, seed=2)
        result = ParallelPeeler(2).peel(graph)
        assert result.survivors_after_round(0) == 500
