"""Tests for the simulated parallel machine, atomics and execution backends."""

from __future__ import annotations

import pytest

from repro.core import ParallelPeeler
from repro.core.results import RoundStats
from repro.hypergraph import random_hypergraph
from repro.parallel import (
    AtomicConflictTracker,
    CostModel,
    ParallelMachine,
    SerialBackend,
    ThreadPoolBackend,
    atomic_xor_depth,
    get_backend,
)


class TestAtomicXorDepth:
    def test_no_targets(self):
        assert atomic_xor_depth([], 10) == 0

    def test_all_distinct(self):
        assert atomic_xor_depth([0, 1, 2, 3], 10) == 1

    def test_conflicts_counted(self):
        assert atomic_xor_depth([5, 5, 5, 2], 10) == 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            atomic_xor_depth([10], 10)

    def test_bad_num_cells(self):
        with pytest.raises(ValueError):
            atomic_xor_depth([0], 0)

    def test_huge_table_with_few_targets_stays_cheap(self):
        # Regression: the depth used to be computed with
        # np.bincount(minlength=num_cells), allocating one counter per
        # *table cell* — for this num_cells that is an ~8 TB array (instant
        # MemoryError); counting only the hit cells makes table size
        # irrelevant.
        assert atomic_xor_depth([3, 3, 7], 10**12) == 2
        assert atomic_xor_depth([10**12 - 1], 10**12) == 1


class TestConflictTracker:
    def test_record_and_aggregate(self):
        tracker = AtomicConflictTracker(num_cells=10)
        assert tracker.record_round([1, 2, 3]) == 1
        assert tracker.record_round([4, 4]) == 2
        assert tracker.total_ops == 5
        assert tracker.max_depth == 2
        assert tracker.total_depth == 3

    def test_reset(self):
        tracker = AtomicConflictTracker(num_cells=10)
        tracker.record_round([1, 1])
        tracker.reset()
        assert tracker.total_ops == 0
        assert tracker.max_depth == 0


class TestCostModel:
    def test_defaults_valid(self):
        CostModel()

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(cell_op_cost=-1.0)

    def test_nan_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(round_overhead=float("nan"))


class TestInsertionTiming:
    def test_speedup_with_many_threads(self):
        machine = ParallelMachine(num_threads=1024)
        timing = machine.time_insertions(100_000, 3)
        assert timing.speedup > 5.0

    def test_single_thread_no_speedup(self):
        machine = ParallelMachine(num_threads=1, cost_model=CostModel(round_overhead=0.0,
                                                                      transfer_cost_per_item=0.0))
        timing = machine.time_insertions(10_000, 3)
        assert timing.speedup <= 1.0 + 1e-9

    def test_zero_items(self):
        timing = ParallelMachine().time_insertions(0, 3)
        assert timing.parallel_time == 0.0
        assert timing.serial_time == 0.0
        assert timing.rounds == 0

    @pytest.mark.parametrize("bad", [None, False, 0.0, 1.5, "10"])
    def test_non_integer_items_rejected(self, bad):
        # Regression: falsy non-integers (None, False, 0.0) used to slip
        # through a `check_positive_int(x) if x else 0` guard and be
        # silently priced as an empty insertion phase.
        with pytest.raises(TypeError):
            ParallelMachine().time_insertions(bad, 3)

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            ParallelMachine().time_insertions(-1, 3)

    def test_conflicts_add_time(self):
        machine = ParallelMachine(num_threads=1024)
        base = machine.time_insertions(10_000, 3, max_conflict_depth=1)
        contended = machine.time_insertions(10_000, 3, max_conflict_depth=50)
        assert contended.parallel_time > base.parallel_time
        assert contended.serial_time == base.serial_time

    def test_transfer_cost_toggle(self):
        machine = ParallelMachine(num_threads=1024)
        with_transfer = machine.time_insertions(10_000, 3, include_transfer=True)
        without = machine.time_insertions(10_000, 3, include_transfer=False)
        assert with_transfer.parallel_time > without.parallel_time


class TestRecoveryTiming:
    def _stats(self, rounds: int, cells: int, peeled_per_round: int):
        remaining = cells
        stats = []
        for i in range(1, rounds + 1):
            remaining -= peeled_per_round
            stats.append(
                RoundStats(
                    round_index=i,
                    vertices_peeled=peeled_per_round,
                    edges_peeled=peeled_per_round,
                    vertices_remaining=max(remaining, 0),
                    edges_remaining=max(remaining, 0),
                    work=cells,
                )
            )
        return stats

    def test_full_scan_requires_num_cells(self):
        machine = ParallelMachine()
        with pytest.raises(ValueError):
            machine.time_recovery(self._stats(3, 1000, 10), full_scan=True)

    @pytest.mark.parametrize("bad", [False, 0.0, 1.5, "1000"])
    def test_non_integer_num_cells_rejected_even_without_full_scan(self, bad):
        # Regression companion to the time_insertions audit: a supplied
        # num_cells is validated in every mode, so falsy non-integers fail
        # loudly instead of being ignored on the full_scan=False path.
        machine = ParallelMachine()
        with pytest.raises(TypeError):
            machine.time_recovery(
                self._stats(3, 1000, 10), num_cells=bad, full_scan=False
            )

    def test_zero_num_cells_rejected(self):
        machine = ParallelMachine()
        with pytest.raises(ValueError):
            machine.time_recovery(self._stats(3, 1000, 10), num_cells=0)

    def test_more_rounds_cost_more(self):
        machine = ParallelMachine(num_threads=4096)
        few = machine.time_recovery(self._stats(5, 10_000, 100), num_cells=10_000, edge_size=3)
        many = machine.time_recovery(self._stats(40, 10_000, 100), num_cells=10_000, edge_size=3)
        assert many.parallel_time > few.parallel_time
        assert many.rounds == 40

    def test_speedup_declines_with_round_count(self):
        """The paper's key observation: above threshold (more rounds, less
        recovered) the parallel advantage shrinks."""
        machine = ParallelMachine(num_threads=4096)
        below = machine.time_recovery(
            self._stats(10, 100_000, 9000), num_cells=100_000, edge_size=3
        )
        above = machine.time_recovery(
            self._stats(40, 100_000, 500), num_cells=100_000, edge_size=3
        )
        assert below.speedup > above.speedup

    def test_accepts_peeling_result(self):
        graph = random_hypergraph(2000, 0.6, 3, seed=1)
        result = ParallelPeeler(2).peel(graph)
        machine = ParallelMachine()
        timing = machine.time_recovery(result, num_cells=2000, edge_size=3)
        assert timing.rounds == len(result.round_stats)
        assert timing.parallel_time > 0

    def test_frontier_mode_uses_recorded_work(self):
        machine = ParallelMachine()
        stats = self._stats(3, 1000, 10)
        frontier = machine.time_recovery(stats, full_scan=False, edge_size=3)
        full = machine.time_recovery(stats, num_cells=1000, full_scan=True, edge_size=3)
        assert frontier.parallel_work <= full.parallel_work

    def test_conflict_depths_add_time(self):
        machine = ParallelMachine()
        stats = self._stats(3, 1000, 10)
        base = machine.time_recovery(stats, num_cells=1000, edge_size=3)
        contended = machine.time_recovery(
            stats, num_cells=1000, edge_size=3, conflict_depths=[100, 100, 100]
        )
        assert contended.parallel_time > base.parallel_time

    def test_zero_parallel_time_speedup(self):
        from repro.parallel.machine import SimulatedTiming

        timing = SimulatedTiming(parallel_time=0.0, serial_time=1.0, rounds=1,
                                 parallel_work=0, serial_work=1)
        assert timing.speedup == float("inf")


class TestBackends:
    def test_serial_backend_order(self):
        backend = SerialBackend()
        assert backend.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_thread_backend_order(self):
        with ThreadPoolBackend(max_workers=2) as backend:
            assert backend.map(lambda x: x * 2, list(range(20))) == [2 * i for i in range(20)]

    def test_thread_backend_reusable(self):
        backend = ThreadPoolBackend(max_workers=2)
        assert backend.map(lambda x: x + 1, [1]) == [2]
        assert backend.map(lambda x: x + 1, [2]) == [3]
        backend.close()

    def test_get_backend(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("threads"), ThreadPoolBackend)
        with pytest.raises(ValueError):
            get_backend("gpu")

    def test_backends_give_identical_results_for_trials(self):
        from repro.experiments.runner import run_trials

        def trial(rng):
            return int(rng.integers(0, 1000))

        serial = run_trials(trial, 8, seed=7, backend=SerialBackend())
        threaded = run_trials(trial, 8, seed=7, backend=ThreadPoolBackend(max_workers=4))
        assert serial == threaded
