"""Tests for repro.utils.timing and repro.utils.tables."""

from __future__ import annotations

import pytest

from repro.utils.tables import Table, format_float, format_int
from repro.utils.timing import Timer, WallClock


class FakeClock:
    """Deterministic clock advancing by a fixed step per call."""

    def __init__(self, step: float = 1.0) -> None:
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        current = self.t
        self.t += self.step
        return current


class TestWallClock:
    def test_default_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()

    def test_injectable(self):
        clock = WallClock(FakeClock(2.0))
        assert clock.now() == 0.0
        assert clock.now() == 2.0


class TestTimer:
    def test_section_accumulates(self):
        timer = Timer(clock=WallClock(FakeClock(1.0)))
        with timer.section("a"):
            pass
        assert timer.total("a") == pytest.approx(1.0)
        assert timer.counts["a"] == 1

    def test_multiple_sections(self):
        timer = Timer(clock=WallClock(FakeClock(1.0)))
        with timer.section("a"):
            pass
        with timer.section("b"):
            pass
        assert set(timer.totals) == {"a", "b"}

    def test_mean(self):
        timer = Timer()
        timer.add("x", 2.0)
        timer.add("x", 4.0)
        assert timer.mean("x") == pytest.approx(3.0)

    def test_mean_of_unknown_section_is_zero(self):
        assert Timer().mean("nope") == 0.0

    def test_total_of_unknown_section_is_zero(self):
        assert Timer().total("nope") == 0.0

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            Timer().add("x", -1.0)

    def test_reset(self):
        timer = Timer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.totals == {} and timer.counts == {}


class TestFormatting:
    def test_format_float(self):
        assert format_float(1.23456, 3) == "1.235"

    def test_format_float_negative_zero(self):
        assert format_float(-0.0, 2) == "0.00"

    def test_format_int(self):
        assert format_int(12345) == "12345"


class TestTable:
    def test_render_contains_headers_and_rows(self):
        table = Table(["a", "b"], title="T")
        table.add_row(1, 2)
        out = table.render()
        assert "T" in out and "a" in out and "b" in out and "1" in out

    def test_alignment_widths(self):
        table = Table(["col"])
        table.add_row("looooong")
        lines = table.render().splitlines()
        assert len(lines[0]) == len(lines[1]) == len(lines[2])

    def test_wrong_cell_count_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_extend(self):
        table = Table(["a"])
        table.extend([[1], [2], [3]])
        assert len(table.rows) == 3

    def test_str_matches_render(self):
        table = Table(["a"])
        table.add_row("x")
        assert str(table) == table.render()
