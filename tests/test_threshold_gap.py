"""Tests for the Section 7 / Theorem 5 near-threshold analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.threshold_gap import (
    beta_fixed_point,
    critical_point,
    gap_rounds_estimate,
    plateau_length,
)
from repro.analysis.thresholds import peeling_threshold, threshold_minimizer


class TestCriticalPoint:
    def test_matches_minimizer(self):
        assert critical_point(2, 4) == pytest.approx(threshold_minimizer(2, 4)[0])

    def test_at_least_k_minus_one(self):
        for k, r in [(2, 3), (2, 4), (3, 3), (4, 3)]:
            assert critical_point(k, r) >= k - 1 - 1e-9


class TestBetaFixedPoint:
    def test_below_threshold_fixed_point_is_zero(self):
        assert beta_fixed_point(0.7, 2, 4) == pytest.approx(0.0, abs=1e-8)

    def test_above_threshold_fixed_point_positive(self):
        beta = beta_fixed_point(0.85, 2, 4)
        assert beta > 1.0

    def test_fixed_point_satisfies_equation(self):
        from repro.analysis.thresholds import poisson_tail

        c, k, r = 0.85, 2, 4
        beta = beta_fixed_point(c, k, r)
        rho = poisson_tail(beta, k - 1)
        assert beta == pytest.approx(rho ** (r - 1) * r * c, rel=1e-6)

    def test_fixed_point_increases_with_c(self):
        assert beta_fixed_point(0.9, 2, 4) > beta_fixed_point(0.85, 2, 4)


class TestPlateau:
    def test_requires_below_threshold(self):
        with pytest.raises(ValueError):
            plateau_length(0.85, 2, 4)

    def test_gap_fields(self):
        analysis = plateau_length(0.76, 2, 4)
        assert analysis.nu == pytest.approx(peeling_threshold(2, 4) - 0.76)
        assert analysis.predicted_scale == pytest.approx(math.sqrt(1 / analysis.nu))
        assert analysis.plateau_rounds >= 0
        assert analysis.total_rounds_to_tau >= analysis.plateau_rounds

    def test_plateau_grows_as_c_approaches_threshold(self):
        far = plateau_length(0.74, 2, 4)
        near = plateau_length(0.77, 2, 4)
        nearer = plateau_length(0.772, 2, 4)
        assert far.plateau_rounds < near.plateau_rounds < nearer.plateau_rounds

    def test_sqrt_scaling(self):
        """Theorem 5: plateau rounds scale like sqrt(1/nu).

        Quadrupling 1/nu should roughly double the plateau length; we allow a
        generous factor because the constant in Θ(·) is unknown.
        """
        c_star = peeling_threshold(2, 4)
        a = plateau_length(c_star - 0.02, 2, 4)
        b = plateau_length(c_star - 0.005, 2, 4)
        ratio = b.plateau_rounds / max(a.plateau_rounds, 1)
        assert 1.4 < ratio < 3.0  # ideal ratio 2.0

    def test_total_rounds_exceed_plateau(self):
        analysis = plateau_length(0.77, 2, 4)
        assert analysis.total_rounds_to_tau > analysis.plateau_rounds


class TestGapRoundsEstimate:
    def test_rejects_above_threshold(self):
        with pytest.raises(ValueError):
            gap_rounds_estimate(10**6, 0.85, 2, 4)

    def test_estimate_increases_near_threshold(self):
        assert gap_rounds_estimate(10**6, 0.772, 2, 4) > gap_rounds_estimate(10**6, 0.7, 2, 4)

    def test_estimate_positive(self):
        assert gap_rounds_estimate(10**6, 0.7, 2, 4) > 0
