"""Tests for the round-synchronous ParallelPeeler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParallelPeeler, peel_to_kcore
from repro.core.results import UNPEELED
from repro.hypergraph import Hypergraph, kcore, random_hypergraph


class TestBasicBehaviour:
    def test_tiny_graph_rounds_and_core(self, tiny_graph):
        result = ParallelPeeler(2).peel(tiny_graph)
        # Round 1 removes vertices 0 and 5 (degrees 1 and 0); afterwards the
        # 2-core remains, so exactly one removing round occurs.
        assert result.num_rounds == 1
        assert not result.success
        assert result.core_size == 3
        assert result.vertex_peel_round[0] == 1
        assert result.vertex_peel_round[5] == 1
        assert result.vertex_peel_round[2] == UNPEELED

    def test_path_graph_peels_empty(self, path_like_graph):
        result = ParallelPeeler(2).peel(path_like_graph)
        assert result.success
        assert result.core_size == 0
        # Round 1 removes the degree-1 endpoints of the outer edges plus all
        # other degree-<2 vertices; the middle edge needs a second round.
        assert result.num_rounds == 2

    def test_empty_graph(self):
        graph = Hypergraph(10, np.empty((0, 3), dtype=np.int64))
        result = ParallelPeeler(2).peel(graph)
        assert result.success
        assert result.num_rounds == 1  # one round removes the isolated vertices
        assert (result.vertex_peel_round == 1).all()

    def test_zero_vertex_graph(self):
        graph = Hypergraph(0, np.empty((0, 2), dtype=np.int64))
        result = ParallelPeeler(2).peel(graph)
        assert result.success
        assert result.num_rounds == 0

    def test_matches_kcore(self, small_below_threshold, small_above_threshold):
        for graph in (small_below_threshold, small_above_threshold):
            result = ParallelPeeler(2).peel(graph)
            reference = kcore(graph, 2)
            assert np.array_equal(result.core_edge_mask, reference.edge_mask)
            assert result.success == reference.is_empty

    def test_k3_core(self):
        graph = random_hypergraph(3000, 1.4, 3, seed=8)
        result = ParallelPeeler(3).peel(graph)
        reference = kcore(graph, 3)
        assert np.array_equal(result.core_edge_mask, reference.edge_mask)

    def test_invalid_k(self):
        with pytest.raises((ValueError, TypeError)):
            ParallelPeeler(0)

    def test_invalid_update_mode(self):
        with pytest.raises(ValueError):
            ParallelPeeler(2, update="bogus")  # type: ignore[arg-type]

    def test_max_rounds_validated(self):
        with pytest.raises((ValueError, TypeError)):
            ParallelPeeler(2, max_rounds=0)


class TestRoundSemantics:
    def test_round_monotonicity(self, small_below_threshold):
        result = ParallelPeeler(2).peel(small_below_threshold)
        survivors = result.vertices_remaining_per_round
        assert (np.diff(survivors) <= 0).all()
        assert survivors[-1] == 0  # below threshold: peels to empty

    def test_edges_removed_no_later_than_all_their_vertices(self, small_below_threshold):
        result = ParallelPeeler(2).peel(small_below_threshold)
        graph = small_below_threshold
        edge_rounds = result.edge_peel_round
        vertex_rounds = result.vertex_peel_round
        for e in range(0, graph.num_edges, 97):  # sample for speed
            endpoints = graph.edge_vertices(e)
            endpoint_rounds = vertex_rounds[endpoints]
            # The edge dies in the round its first endpoint is peeled.
            peeled_endpoints = endpoint_rounds[endpoint_rounds != UNPEELED]
            if edge_rounds[e] != UNPEELED:
                assert edge_rounds[e] == peeled_endpoints.min()
            else:
                assert peeled_endpoints.size == 0

    def test_vertex_peel_round_consistent_with_survivor_counts(self, small_below_threshold):
        result = ParallelPeeler(2).peel(small_below_threshold)
        rounds = result.vertex_peel_round
        for t, stats in enumerate(result.round_stats, start=1):
            expected = int(np.sum((rounds == UNPEELED) | (rounds > t)))
            assert stats.vertices_remaining == expected

    def test_stats_work_full_mode(self, tiny_graph):
        result = ParallelPeeler(2, update="full").peel(tiny_graph)
        # Full mode inspects every live vertex each round.
        assert result.round_stats[0].work == tiny_graph.num_vertices

    def test_track_stats_disabled(self, tiny_graph):
        result = ParallelPeeler(2, track_stats=False).peel(tiny_graph)
        assert result.round_stats == []
        assert result.num_rounds == 1

    def test_survivors_after_round_bounds(self, small_below_threshold):
        result = ParallelPeeler(2).peel(small_below_threshold)
        assert result.survivors_after_round(0) == result.num_vertices
        assert result.survivors_after_round(result.num_rounds + 5) == 0
        with pytest.raises(ValueError):
            result.survivors_after_round(-1)


class TestFrontierEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("c", [0.5, 0.75, 0.9])
    def test_full_and_frontier_agree(self, seed, c):
        graph = random_hypergraph(2000, c, 4, seed=seed)
        full = ParallelPeeler(2, update="full").peel(graph)
        frontier = ParallelPeeler(2, update="frontier").peel(graph)
        assert full.num_rounds == frontier.num_rounds
        assert np.array_equal(full.vertex_peel_round, frontier.vertex_peel_round)
        assert np.array_equal(full.edge_peel_round, frontier.edge_peel_round)

    def test_frontier_does_less_work_below_threshold(self):
        graph = random_hypergraph(5000, 0.6, 4, seed=3)
        full = ParallelPeeler(2, update="full").peel(graph)
        frontier = ParallelPeeler(2, update="frontier").peel(graph)
        assert frontier.total_work < full.total_work


class TestDuplicateVertexEdges:
    """Full-vs-frontier parity when edges repeat a vertex (multiset degrees).

    Hashing applications can map one key to the same cell several times (the
    paper's remark after Theorem 1); a vertex appearing twice in one edge has
    its degree counted twice, loses *two* degrees when that edge dies, and
    must appear only once in the next frontier.  This is the easiest place
    for a frontier implementation to drift from the full re-scan.
    """

    @staticmethod
    def _graph_with_duplicates(n, m, r, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, n, size=(m, r), dtype=np.int64)
        # Force a healthy fraction of duplicate-endpoint edges.
        dup_rows = rng.random(m) < 0.3
        edges[dup_rows, 1] = edges[dup_rows, 0]
        graph = Hypergraph(n, edges, allow_duplicate_vertices=True)
        assert (np.sort(edges, axis=1)[:, 1:] == np.sort(edges, axis=1)[:, :-1]).any()
        return graph

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [2, 3])
    def test_full_and_frontier_agree_with_duplicates(self, seed, k):
        graph = self._graph_with_duplicates(1500, 1100, 4, seed)
        full = ParallelPeeler(k, update="full").peel(graph)
        frontier = ParallelPeeler(k, update="frontier").peel(graph)
        assert full.num_rounds == frontier.num_rounds
        assert full.success == frontier.success
        assert np.array_equal(full.vertex_peel_round, frontier.vertex_peel_round)
        assert np.array_equal(full.edge_peel_round, frontier.edge_peel_round)
        # Same removals per round, only the examined work may differ.
        for f_stats, fr_stats in zip(full.round_stats, frontier.round_stats):
            assert f_stats.vertices_peeled == fr_stats.vertices_peeled
            assert f_stats.edges_peeled == fr_stats.edges_peeled

    def test_multiset_degree_counted_per_occurrence(self):
        # Vertex 1 appears twice in the single edge: degree 2, so it survives
        # k=2 peeling while the degree-1 endpoints trigger the edge's death.
        graph = Hypergraph(3, [[1, 1, 2]], allow_duplicate_vertices=True)
        assert graph.degree(1) == 2
        result = ParallelPeeler(2).peel(graph)
        assert result.success
        # Once the edge dies, vertex 1 loses both degrees at once.
        assert result.num_rounds == 2

    def test_duplicate_parity_across_kernels(self):
        from repro.kernels import available_kernels

        graph = self._graph_with_duplicates(1500, 1100, 4, seed=7)
        reference = ParallelPeeler(2, update="full", kernel="numpy").peel(graph)
        for kernel in available_kernels():
            for update in ("full", "frontier"):
                result = ParallelPeeler(2, update=update, kernel=kernel).peel(graph)
                assert np.array_equal(
                    result.vertex_peel_round, reference.vertex_peel_round
                ), f"kernel={kernel} update={update}"
                assert np.array_equal(result.edge_peel_round, reference.edge_peel_round)


class TestConvenienceAPI:
    def test_peel_to_kcore_parallel(self, tiny_graph):
        result = peel_to_kcore(tiny_graph, 2, mode="parallel")
        assert result.mode == "parallel"

    def test_peel_to_kcore_invalid_mode(self, tiny_graph):
        with pytest.raises(ValueError):
            peel_to_kcore(tiny_graph, 2, mode="quantum")  # type: ignore[arg-type]

    def test_summary_mentions_rounds(self, tiny_graph):
        result = peel_to_kcore(tiny_graph, 2)
        assert "rounds" in result.summary()
