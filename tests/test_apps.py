"""Tests for the application layer: sparse recovery, reconciliation, erasure code."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    PeelingErasureCode,
    SetReconciler,
    SparseRecovery,
    random_distinct_keys,
    random_set_pair,
)


class TestRandomKeys:
    def test_count_and_distinctness(self):
        keys = random_distinct_keys(5000, seed=1)
        assert keys.size == 5000
        assert np.unique(keys).size == 5000
        assert (keys != 0).all()

    def test_zero_count(self):
        assert random_distinct_keys(0).size == 0

    def test_reproducible(self):
        assert np.array_equal(random_distinct_keys(100, seed=3), random_distinct_keys(100, seed=3))

    def test_keys_are_63_bit(self):
        # Draws cover [1, 2^63 - 1), not the full uint64 range.
        keys = random_distinct_keys(5000, seed=2)
        assert (keys >= 1).all()
        assert (keys < np.uint64(2**63 - 1)).all()

    def test_collision_resolution_preserves_draw_order(self, monkeypatch):
        # Script the generator so the first batch contains a duplicate in
        # *descending* order: sorting-based dedup (the old np.unique bug)
        # would reorder the survivors and change positional splits.
        draws = [
            np.array([9, 5, 9, 7], dtype=np.int64),
            np.array([3], dtype=np.int64),
        ]

        class ScriptedRNG:
            def integers(self, low, high, size, dtype):
                return draws.pop(0)[:size]

        import repro.apps.sparse_recovery as mod

        monkeypatch.setattr(mod, "resolve_rng", lambda seed: seed)
        keys = mod.random_distinct_keys(4, ScriptedRNG())
        assert keys.tolist() == [9, 5, 7, 3]


class TestSparseRecovery:
    def test_run_below_threshold_succeeds(self):
        pipeline = SparseRecovery(num_cells=3000, r=3, seed=1)
        result = pipeline.run(stream_length=50_000, survivors=2000, seed=2)
        assert result.success
        assert result.fraction_recovered == 1.0
        assert sorted(map(int, result.recovered)) == sorted(map(int, result.expected))

    def test_run_with_serial_decoder(self):
        pipeline = SparseRecovery(num_cells=1500, r=3, seed=1)
        result = pipeline.run(stream_length=10_000, survivors=1000, seed=3, decoder="serial")
        assert result.success

    def test_run_with_flat_parallel_decoder(self):
        pipeline = SparseRecovery(num_cells=1500, r=3, seed=1)
        result = pipeline.run(
            stream_length=10_000, survivors=1000, seed=3, decoder="flat-parallel"
        )
        assert result.success

    def test_overloaded_table_fails_partially(self):
        pipeline = SparseRecovery(num_cells=900, r=3, seed=4)
        result = pipeline.run(stream_length=5_000, survivors=870, seed=5)
        assert not result.success
        assert result.fraction_recovered < 1.0

    def test_survivors_cannot_exceed_stream(self):
        pipeline = SparseRecovery(num_cells=300, r=3)
        with pytest.raises(ValueError):
            pipeline.run(stream_length=10, survivors=11)

    def test_zero_survivors(self):
        pipeline = SparseRecovery(num_cells=300, r=3, seed=6)
        result = pipeline.run(stream_length=500, survivors=0, seed=7)
        assert result.success
        assert result.fraction_recovered == 1.0
        assert result.recovered.size == 0

    def test_unknown_decoder_rejected(self):
        pipeline = SparseRecovery(num_cells=300, r=3)
        table = pipeline.build_table(np.array([1], dtype=np.uint64), np.empty(0, dtype=np.uint64))
        with pytest.raises(ValueError):
            pipeline.recover(table, np.array([1], dtype=np.uint64), decoder="magic")

    def test_space_is_proportional_to_survivors_not_stream(self):
        # The whole point of sparse recovery: a table of 3000 cells handles a
        # stream of 100k insertions as long as only ~2000 survive.
        pipeline = SparseRecovery(num_cells=3000, r=4, seed=8)
        result = pipeline.run(stream_length=100_000, survivors=2000, seed=9)
        assert result.success


class TestSetReconciliation:
    def test_random_set_pair_shapes(self):
        a, b = random_set_pair(100, 5, 7, seed=1)
        assert a.size == 105 and b.size == 107
        assert len(set(map(int, a)) & set(map(int, b))) == 100

    def test_reconcile_small_difference(self):
        a, b = random_set_pair(5000, 20, 30, seed=2)
        reconciler = SetReconciler(num_cells=300, r=3, seed=3)
        result = reconciler.reconcile(a, b)
        assert result.success
        assert result.a_minus_b.size == 20
        assert result.b_minus_a.size == 30

    def test_reconcile_identical_sets(self):
        a, b = random_set_pair(1000, 0, 0, seed=4)
        result = SetReconciler(num_cells=120, r=3, seed=5).reconcile(a, b)
        assert result.success
        assert result.a_minus_b.size == 0 and result.b_minus_a.size == 0

    def test_reconcile_serial_decoder(self):
        a, b = random_set_pair(2000, 10, 10, seed=6)
        result = SetReconciler(num_cells=300, r=3, seed=7).reconcile(a, b, decoder="serial")
        assert result.success

    def test_digest_too_small_fails_gracefully(self):
        a, b = random_set_pair(1000, 200, 200, seed=8)
        result = SetReconciler(num_cells=90, r=3, seed=9).reconcile(a, b)
        assert not result.success

    def test_bytes_exchanged(self):
        reconciler = SetReconciler(num_cells=120, r=3)
        a, b = random_set_pair(10, 1, 1, seed=10)
        assert reconciler.reconcile(a, b).bytes_exchanged == 3 * 8 * 120

    def test_unknown_decoder_rejected(self):
        a, b = random_set_pair(10, 1, 1, seed=11)
        with pytest.raises(ValueError):
            SetReconciler(120, 3).reconcile(a, b, decoder="psychic")

    def test_communication_independent_of_set_size(self):
        small = SetReconciler(num_cells=300, r=3, seed=12)
        a1, b1 = random_set_pair(100, 10, 10, seed=13)
        a2, b2 = random_set_pair(50_000, 10, 10, seed=14)
        r1 = small.reconcile(a1, b1)
        r2 = small.reconcile(a2, b2)
        assert r1.success and r2.success
        assert r1.bytes_exchanged == r2.bytes_exchanged


class TestErasureCode:
    def _message(self, size: int, seed: int = 0) -> np.ndarray:
        return random_distinct_keys(size, seed=seed)

    def test_encode_shapes(self):
        code = PeelingErasureCode(num_encoded=300, r=3, seed=1)
        block = code.encode(self._message(150))
        assert block.symbols.shape == (300,)
        assert block.assignments.shape == (150, 3)
        assert block.num_encoded == 300 and block.num_message == 150

    def test_decode_no_erasures(self):
        code = PeelingErasureCode(num_encoded=300, r=3, seed=2)
        message = self._message(150, seed=2)
        block = code.encode(message)
        outcome = code.decode(block, np.ones(300, dtype=bool))
        assert outcome.success
        assert np.array_equal(outcome.message, message)

    def test_decode_with_light_erasures(self):
        code = PeelingErasureCode(num_encoded=400, r=3, seed=3)
        message = self._message(200, seed=3)
        block = code.encode(message)
        rng = np.random.default_rng(4)
        received = np.ones(400, dtype=bool)
        received[rng.choice(400, size=20, replace=False)] = False
        outcome = code.decode(block, received)
        assert outcome.success

    def test_decode_serial_matches_parallel(self):
        code = PeelingErasureCode(num_encoded=400, r=3, seed=5)
        message = self._message(220, seed=5)
        block = code.encode(message)
        rng = np.random.default_rng(6)
        received = np.ones(400, dtype=bool)
        received[rng.choice(400, size=30, replace=False)] = False
        serial = code.decode(block, received, mode="serial")
        parallel = code.decode(block, received, mode="parallel")
        assert serial.success == parallel.success
        assert np.array_equal(serial.recovered_mask, parallel.recovered_mask)
        assert np.array_equal(serial.message, parallel.message)

    def test_heavy_erasures_fail(self):
        code = PeelingErasureCode(num_encoded=300, r=3, seed=7)
        message = self._message(200, seed=7)
        block = code.encode(message)
        received = np.zeros(300, dtype=bool)
        received[:60] = True  # 80% erased
        outcome = code.decode(block, received)
        assert not outcome.success
        assert outcome.fraction_recovered < 1.0

    def test_recovered_symbols_always_correct(self):
        code = PeelingErasureCode(num_encoded=300, r=3, seed=8)
        message = self._message(200, seed=8)
        block = code.encode(message)
        rng = np.random.default_rng(9)
        received = rng.random(300) > 0.3
        outcome = code.decode(block, received)
        recovered_idx = np.flatnonzero(outcome.recovered_mask)
        assert np.array_equal(outcome.message[recovered_idx], message[recovered_idx])

    def test_zero_message_symbol_rejected(self):
        code = PeelingErasureCode(num_encoded=30, r=3)
        with pytest.raises(ValueError):
            code.encode(np.array([0, 1], dtype=np.uint64))

    def test_bad_received_mask_shape(self):
        code = PeelingErasureCode(num_encoded=30, r=3)
        block = code.encode(np.array([5], dtype=np.uint64))
        with pytest.raises(ValueError):
            code.decode(block, np.ones(29, dtype=bool))

    def test_invalid_mode(self):
        code = PeelingErasureCode(num_encoded=30, r=3)
        block = code.encode(np.array([5], dtype=np.uint64))
        with pytest.raises(ValueError):
            code.decode(block, np.ones(30, dtype=bool), mode="sideways")

    def test_r_exceeding_encoded_rejected(self):
        with pytest.raises(ValueError):
            PeelingErasureCode(num_encoded=2, r=3)

    @given(
        num_message=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=500),
        erased=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_recovered_prefix_correct(self, num_message, seed, erased):
        code = PeelingErasureCode(num_encoded=240, r=3, seed=seed)
        message = random_distinct_keys(num_message, seed=seed + 1)
        block = code.encode(message)
        rng = np.random.default_rng(seed + 2)
        received = np.ones(240, dtype=bool)
        if erased:
            received[rng.choice(240, size=erased, replace=False)] = False
        outcome = code.decode(block, received)
        recovered_idx = np.flatnonzero(outcome.recovered_mask)
        assert np.array_equal(outcome.message[recovered_idx], message[recovered_idx])
        unrecovered = np.flatnonzero(~outcome.recovered_mask)
        assert (outcome.message[unrecovered] == 0).all()
