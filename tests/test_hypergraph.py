"""Tests for the Hypergraph data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph


class TestConstruction:
    def test_basic_properties(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 4
        assert tiny_graph.edge_size == 3

    def test_edge_density(self, tiny_graph):
        assert tiny_graph.edge_density == pytest.approx(4 / 6)

    def test_empty_edges(self):
        graph = Hypergraph(5, np.empty((0, 3), dtype=np.int64))
        assert graph.num_edges == 0
        assert graph.edge_density == 0.0

    def test_empty_edges_preserve_declared_arity(self):
        # A (0, r) edge array keeps the uniformity of an empty r-uniform
        # graph instead of collapsing to r=0.
        graph = Hypergraph(5, np.empty((0, 3), dtype=np.int64))
        assert graph.edge_size == 3
        assert graph.edges.shape == (0, 3)

    def test_empty_sequence_has_unknown_arity(self):
        graph = Hypergraph(5, [])
        assert graph.edge_size == 0
        assert graph.edges.shape == (0, 0)

    def test_zero_width_rows_normalized_to_empty(self):
        graph = Hypergraph(5, np.empty((2, 0), dtype=np.int64))
        assert graph.num_edges == 0
        assert graph.edge_size == 0

    def test_empty_arity_survives_edge_subgraph(self):
        graph = Hypergraph(5, [[0, 1, 2]])
        empty = graph.subgraph_of_edges(np.array([False]))
        assert empty.num_edges == 0
        assert empty.edge_size == 3

    def test_empty_partitioned_graph_keeps_uniformity_for_subtable_peeling(self):
        from repro.engine import peel

        partition = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        graph = Hypergraph(
            6,
            np.empty((0, 3), dtype=np.int64),
            vertex_partition=partition,
            num_partitions=3,
        )
        assert graph.edge_size == 3
        result = peel(graph, "subtable", k=1)
        assert result.success

    def test_zero_vertices(self):
        graph = Hypergraph(0, np.empty((0, 2), dtype=np.int64))
        assert graph.num_vertices == 0
        assert graph.edge_density == 0.0

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(3, [[0, 1, 5]])

    def test_negative_vertex_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(3, [[-1, 1, 2]])

    def test_duplicate_vertices_rejected_by_default(self):
        with pytest.raises(ValueError, match="duplicate"):
            Hypergraph(4, [[1, 1, 2]])

    def test_duplicate_vertices_allowed_when_opted_in(self):
        graph = Hypergraph(4, [[1, 1, 2]], allow_duplicate_vertices=True)
        assert graph.num_edges == 1
        assert graph.degree(1) == 2

    def test_non_2d_edges_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(4, np.array([1, 2, 3]))

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(-1, [])

    def test_repr_mentions_sizes(self, tiny_graph):
        assert "n=6" in repr(tiny_graph) and "m=4" in repr(tiny_graph)


class TestDegreesAndIncidence:
    def test_degrees(self, tiny_graph):
        degrees = tiny_graph.degrees()
        assert degrees.tolist() == [1, 3, 4, 2, 2, 0]

    def test_degree_single(self, tiny_graph):
        assert tiny_graph.degree(2) == 4
        assert tiny_graph.degree(5) == 0

    def test_degree_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.degree(6)

    def test_degrees_returns_copy(self, tiny_graph):
        degrees = tiny_graph.degrees()
        degrees[0] = 99
        assert tiny_graph.degree(0) == 1

    def test_degrees_view_readonly(self, tiny_graph):
        view = tiny_graph.degrees_view
        with pytest.raises(ValueError):
            view[0] = 5

    def test_incident_edges(self, tiny_graph):
        assert sorted(tiny_graph.incident_edges(0).tolist()) == [0]
        assert sorted(tiny_graph.incident_edges(2).tolist()) == [0, 1, 2, 3]
        assert tiny_graph.incident_edges(5).size == 0

    def test_incident_edges_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.incident_edges(-1)

    def test_incidence_consistency(self, tiny_graph):
        # Every (vertex, edge) incidence appears exactly once in the CSR index.
        ptr = tiny_graph.incidence_ptr
        inc = tiny_graph.incidence_edges
        assert ptr[-1] == tiny_graph.num_edges * tiny_graph.edge_size
        for v in range(tiny_graph.num_vertices):
            for e in inc[ptr[v]: ptr[v + 1]]:
                assert v in tiny_graph.edge_vertices(int(e))

    def test_edge_vertices(self, tiny_graph):
        assert tiny_graph.edge_vertices(0).tolist() == [0, 1, 2]

    def test_edge_vertices_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.edge_vertices(4)

    def test_edges_view_readonly(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.edges[0, 0] = 3

    def test_degree_sum_equals_mr(self, small_below_threshold):
        graph = small_below_threshold
        assert graph.degrees().sum() == graph.num_edges * graph.edge_size


class TestPartition:
    def test_unpartitioned_flags(self, tiny_graph):
        assert not tiny_graph.is_partitioned
        assert tiny_graph.num_partitions == 0
        with pytest.raises(ValueError):
            _ = tiny_graph.vertex_partition

    def test_partition_shape_validated(self):
        with pytest.raises(ValueError):
            Hypergraph(4, [[0, 1]], vertex_partition=np.array([0, 1]), num_partitions=2)

    def test_partition_values_validated(self):
        with pytest.raises(ValueError):
            Hypergraph(
                2, [[0, 1]], vertex_partition=np.array([0, 5]), num_partitions=2
            )

    def test_partition_roundtrip(self, small_partitioned):
        graph = small_partitioned
        assert graph.is_partitioned
        assert graph.num_partitions == 4
        partition = graph.vertex_partition
        assert partition[0] == 0 and partition[-1] == 3
        # Edge column j always lies inside subtable j.
        edges = graph.edges
        for j in range(4):
            assert (partition[edges[:, j]] == j).all()


class TestSubgraphAndConversion:
    def test_subgraph_of_edges(self, tiny_graph):
        sub = tiny_graph.subgraph_of_edges(np.array([True, False, True, False]))
        assert sub.num_edges == 2
        assert sub.num_vertices == tiny_graph.num_vertices

    def test_subgraph_bad_mask_shape(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.subgraph_of_edges(np.array([True, False]))

    def test_to_networkx_bipartite(self, tiny_graph):
        nx_graph = tiny_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 6 + 4
        assert nx_graph.number_of_edges() == 4 * 3

    def test_equality(self):
        a = Hypergraph(4, [[0, 1, 2]])
        b = Hypergraph(4, [[0, 1, 2]])
        c = Hypergraph(4, [[0, 1, 3]])
        assert a == b
        assert a != c
        assert a != "not a graph"
