"""Tests for IBLT serialization and the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sparse_recovery import random_distinct_keys
from repro.cli import build_parser, main
from repro.iblt import IBLT, SubtableParallelDecoder


class TestIBLTSerialization:
    def test_roundtrip_preserves_state(self):
        table = IBLT(300, 3, seed=5)
        table.insert(random_distinct_keys(150, seed=6))
        clone = IBLT.from_bytes(table.to_bytes())
        assert clone.num_cells == table.num_cells
        assert clone.r == table.r
        assert clone.layout == table.layout
        assert clone.net_items == table.net_items
        assert np.array_equal(clone.count, table.count)
        assert np.array_equal(clone.key_sum, table.key_sum)
        assert np.array_equal(clone.check_sum, table.check_sum)

    def test_roundtrip_decodes_identically(self):
        table = IBLT(600, 3, seed=7)
        keys = random_distinct_keys(400, seed=8)
        table.insert(keys)
        clone = IBLT.from_bytes(table.to_bytes())
        original = sorted(map(int, table.decode().recovered))
        restored = sorted(map(int, clone.decode().recovered))
        assert original == restored == sorted(map(int, keys))

    def test_payload_size(self):
        table = IBLT(300, 3)
        payload = table.to_bytes()
        # magic + version byte + 5 i64 header fields + 3 arrays of 8 bytes/cell
        assert len(payload) == len(IBLT._MAGIC) + 1 + 5 * 8 + 3 * 8 * 300
        assert len(payload) == IBLT._HEADER_BYTES + 3 * 8 * 300

    def test_format_version_byte(self):
        payload = IBLT(300, 3).to_bytes()
        assert payload[len(IBLT._MAGIC)] == IBLT._FORMAT_VERSION == 1

    def test_flat_layout_roundtrip(self):
        table = IBLT(101, 3, layout="flat", seed=9)
        table.insert([1, 2, 3])
        clone = IBLT.from_bytes(table.to_bytes())
        assert clone.layout == "flat"
        assert clone.decode().success

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            IBLT.from_bytes(b"NOTANIBLT" + b"\x00" * 100)

    def test_truncated_payload_rejected(self):
        payload = IBLT(300, 3).to_bytes()
        with pytest.raises(ValueError, match="truncated"):
            IBLT.from_bytes(payload[:-8])


class TestFromBytesHardening:
    """`from_bytes` parses untrusted socket bytes; every hostile shape must
    raise a clear ValueError, never a raw numpy buffer error."""

    @staticmethod
    def _forge(num_cells=6, r=3, layout_flag=1, seed=0, net_items=0, *, cells=None,
               version=None):
        """Hand-build a payload with arbitrary (possibly hostile) header fields."""
        m = num_cells if cells is None else cells
        header = np.array([num_cells, r, layout_flag, seed, net_items], dtype="<i8")
        version_byte = bytes([IBLT._FORMAT_VERSION if version is None else version])
        return IBLT._MAGIC + version_byte + header.tobytes() + b"\x00" * (3 * 8 * max(m, 0))

    def test_empty_payload(self):
        with pytest.raises(ValueError, match="magic"):
            IBLT.from_bytes(b"")

    def test_payload_shorter_than_magic(self):
        with pytest.raises(ValueError, match="magic"):
            IBLT.from_bytes(IBLT._MAGIC[:3])

    def test_payload_shorter_than_header(self):
        # Magic intact but the header is cut off: previously this reached
        # np.frombuffer and raised its raw "buffer is smaller than requested
        # size" error.
        with pytest.raises(ValueError, match="truncated IBLT payload"):
            IBLT.from_bytes(IBLT._MAGIC + b"\x01" + b"\x00" * 10)

    def test_oversized_payload_rejected(self):
        payload = IBLT(300, 3).to_bytes()
        with pytest.raises(ValueError, match="oversized"):
            IBLT.from_bytes(payload + b"\x00" * 24)

    def test_negative_num_cells_rejected(self):
        with pytest.raises(ValueError, match="num_cells must be >= 1"):
            IBLT.from_bytes(self._forge(num_cells=-4, cells=0))

    def test_zero_num_cells_rejected(self):
        with pytest.raises(ValueError, match="num_cells must be >= 1"):
            IBLT.from_bytes(self._forge(num_cells=0, cells=0))

    def test_negative_r_rejected(self):
        with pytest.raises(ValueError, match="r must be >= 2"):
            IBLT.from_bytes(self._forge(r=-1))

    def test_huge_num_cells_does_not_allocate(self):
        # A hostile header claiming ~3e12 cells must fail the length check,
        # not attempt a ~79 TB allocation.
        with pytest.raises(ValueError, match="truncated IBLT payload"):
            IBLT.from_bytes(self._forge(num_cells=3 << 40, cells=6))

    def test_bad_layout_flag_rejected(self):
        with pytest.raises(ValueError, match="layout flag"):
            IBLT.from_bytes(self._forge(layout_flag=7))

    def test_subtable_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            IBLT.from_bytes(self._forge(num_cells=7, r=3, layout_flag=1, cells=7))

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version 2"):
            IBLT.from_bytes(self._forge(version=2))

    def test_rejection_names_supported_versions(self):
        # The error must tell the operator which versions this build parses.
        supported = ", ".join(str(v) for v in IBLT._SUPPORTED_VERSIONS)
        with pytest.raises(ValueError, match=f"supports\\s+version\\(s\\) {supported}"):
            IBLT.from_bytes(self._forge(version=255))

    def test_version_zero_rejected(self):
        with pytest.raises(ValueError, match="unsupported IBLT format version"):
            IBLT.from_bytes(self._forge(version=0))

    def test_valid_forged_payload_accepted(self):
        # The forge helper itself builds a valid (empty) table, proving the
        # hardening rejects only actually-hostile shapes.
        table = IBLT.from_bytes(self._forge(num_cells=6, r=3))
        assert table.num_cells == 6 and table.r == 3 and table.is_empty()

    def test_reconciliation_over_serialized_digest(self):
        """End-to-end: party B serializes its digest, party A deserializes,
        subtracts and decodes — the actual wire protocol."""
        seed = 11
        a_keys = random_distinct_keys(500, seed=12)
        b_keys = np.concatenate([a_keys[:480], random_distinct_keys(15, seed=13)])
        digest_a = IBLT(300, 3, seed=seed)
        digest_a.insert(a_keys)
        digest_b = IBLT(300, 3, seed=seed)
        digest_b.insert(b_keys)
        wire = digest_b.to_bytes()
        received = IBLT.from_bytes(wire)
        diff = digest_a.subtract(received)
        result = SubtableParallelDecoder().decode(diff)
        assert result.success
        assert sorted(map(int, result.recovered)) == sorted(map(int, a_keys[480:]))
        assert sorted(map(int, result.removed)) == sorted(
            set(map(int, b_keys)) - set(map(int, a_keys))
        )


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_thresholds_command(self, capsys):
        assert main(["thresholds", "--k", "2", "--r", "4", "--n", "10000"]) == 0
        out = capsys.readouterr().out
        assert "c*_{2,4} = 0.772" in out
        assert "below" in out and "above" in out

    def test_peel_command(self, capsys):
        assert main(["peel", "--n", "5000", "--c", "0.7", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "parallel peeling" in out
        assert "empty core" in out

    def test_peel_subtable_mode(self, capsys):
        assert main(["peel", "--n", "5000", "--c", "0.7", "--mode", "subtable"]) == 0
        assert "subtable peeling" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        code = main([
            "table1", "--sizes", "2000", "--densities", "0.7", "--trials", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "c=0.7" in out

    def test_table2_command(self, capsys):
        assert main(["table2", "--n", "5000", "--trials", "2", "--rounds", "8"]) == 0
        assert "Prediction" in capsys.readouterr().out

    def test_table3_command(self, capsys):
        assert main(["table3", "--num-cells", "3000", "--loads", "0.6"]) == 0
        assert "r=3" in capsys.readouterr().out

    def test_table4_command(self, capsys):
        assert main(["table4", "--num-cells", "3000", "--loads", "0.6"]) == 0
        assert "r=4" in capsys.readouterr().out

    def test_table5_command(self, capsys):
        assert main([
            "table5", "--sizes", "2000", "--densities", "0.7", "--trials", "2",
        ]) == 0
        assert "Subrounds" in capsys.readouterr().out

    def test_table6_command(self, capsys):
        assert main(["table6", "--n", "4000", "--trials", "2", "--rounds", "4"]) == 0
        assert "subtable recurrence" in capsys.readouterr().out

    def test_figure1_command(self, capsys):
        assert main(["figure1", "--densities", "0.76"]) == 0
        assert "beta evolution" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["tableX"])
