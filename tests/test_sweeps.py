"""Tests for the declarative sweep layer (spec, artifact, scheduler, CLI)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.experiments import run_table1, table1_spec
from repro.experiments.table1 import Table1Row, _table1_aggregate, _table1_trial
from repro.parallel.backend import get_backend
from repro.sweeps import (
    CellSpec,
    SweepArtifact,
    SweepSpec,
    SweepSpecMismatch,
    run_sweep,
)
from repro.sweeps.codec import decode, encode


def _sum_trial(params, rng):
    return int(rng.integers(0, 10**6)) + params["offset"]


def _sum_aggregate(params, results):
    return {"offset": params["offset"], "values": list(results)}


def _sum_batch_trial(params, rngs):
    # Cell-level fusion of _sum_trial: same draws, one call per cell.
    return [_sum_trial(params, rng) for rng in rngs]


def _short_batch_trial(params, rngs):
    return [_sum_trial(params, rng) for rng in rngs][:-1]


def _demo_spec(offsets=(0, 100, 200), trials=3, seed=7, name="demo"):
    cells = tuple(
        CellSpec(
            key=f"offset={o}",
            params={"offset": o},
            seed=seed + o,
            trials=trials,
        )
        for o in offsets
    )
    return SweepSpec(name=name, cells=cells)


class TestSpec:
    def test_fingerprint_stable_and_sensitive(self):
        spec = _demo_spec()
        assert spec.fingerprint() == _demo_spec().fingerprint()
        assert spec.fingerprint() != _demo_spec(seed=8).fingerprint()
        assert spec.fingerprint() != _demo_spec(trials=4).fingerprint()
        assert spec.fingerprint() != _demo_spec(offsets=(0, 100)).fingerprint()

    def test_duplicate_cell_keys_rejected(self):
        cell = CellSpec(key="same", params={}, seed=1)
        with pytest.raises(ValueError, match="duplicate cell keys"):
            SweepSpec(name="bad", cells=(cell, cell))

    def test_non_positive_trials_rejected(self):
        with pytest.raises(ValueError):
            CellSpec(key="x", params={}, seed=1, trials=0)

    def test_deterministic_requires_int_seeds(self):
        assert _demo_spec().is_deterministic
        cells = (CellSpec(key="x", params={}, seed=np.random.default_rng(1)),)
        assert not SweepSpec(name="volatile", cells=cells).is_deterministic
        assert not SweepSpec(
            name="entropy", cells=(CellSpec(key="x", params={}, seed=None),)
        ).is_deterministic


class TestCodec:
    def test_round_trips_dataclass_rows_with_arrays(self):
        row = Table1Row(n=10, c=0.7, r=4, k=2, trials=3, failed=1,
                        avg_rounds=10.5, std_rounds=0.25)
        payload = {"row": row, "arr": np.arange(4, dtype=np.uint64), "note": "x"}
        restored = decode(json.loads(json.dumps(encode(payload))))
        assert restored["row"] == row
        assert restored["arr"].dtype == np.uint64
        np.testing.assert_array_equal(restored["arr"], np.arange(4, dtype=np.uint64))
        assert restored["note"] == "x"

    def test_rejects_unencodable_objects(self):
        with pytest.raises(TypeError):
            encode(object())

    def test_rejects_non_string_dict_keys(self):
        with pytest.raises(TypeError):
            encode({1: "x"})

    def test_decode_refuses_non_repro_dataclasses(self):
        # Artifacts are data: a tampered file must not trigger arbitrary imports.
        payload = {"__dataclass__": "os.path:join", "fields": {}}
        with pytest.raises(ValueError, match="repro"):
            decode(payload)


class TestSizeRoundingKeys:
    def test_table5_sizes_collapsing_after_rounding_stay_distinct_cells(self):
        from repro.experiments import table5_spec

        spec = table5_spec(sizes=(9999, 10000), densities=(0.7,), trials=2, seed=1)
        assert len(spec.cells) == 2
        assert spec.cells[0].params["n"] == spec.cells[1].params["n"] == 10000
        assert spec.cells[0].seed != spec.cells[1].seed  # derived from requested n

    def test_bench_sizes_collapsing_after_rounding_stay_distinct_cells(self):
        from repro.bench import bench_spec

        spec = bench_spec(sizes=(9999, 10000), kernels=("numpy",))
        iblt_keys = [c.key for c in spec.cells if c.key.startswith("iblt/")]
        assert len(iblt_keys) == len(set(iblt_keys)) == 6


class TestScheduler:
    def test_rows_in_cell_order_and_backend_independent(self):
        spec = _demo_spec()
        serial = run_sweep(spec, _sum_trial, _sum_aggregate)
        assert [row["offset"] for row in serial] == [0, 100, 200]
        threads = run_sweep(
            spec, _sum_trial, _sum_aggregate, backend="threads", max_workers=3
        )
        processes = run_sweep(
            spec, _sum_trial, _sum_aggregate, backend="processes", max_workers=2
        )
        assert serial == threads == processes

    def test_matches_run_trials_seed_for_seed(self):
        from repro.experiments.runner import run_trials

        spec = SweepSpec(
            name="eq", cells=(CellSpec(key="only", params={"offset": 0}, seed=42, trials=5),)
        )
        got = run_sweep(spec, _sum_trial, lambda p, res: res)[0]
        assert got == run_trials(lambda rng: int(rng.integers(0, 10**6)), 5, seed=42)

    def test_trials_from_different_cells_overlap_on_pool_backend(self):
        # Two single-trial cells and a two-party barrier: the sweep only
        # finishes (within the timeout) if trials from *different* cells are
        # in flight simultaneously — i.e. the task stream crosses cell
        # boundaries instead of dispatching cell by cell.
        barrier = threading.Barrier(2)

        def trial(params, rng):
            barrier.wait(timeout=30)
            return params["offset"]

        spec = _demo_spec(offsets=(1, 2), trials=1)
        rows = run_sweep(
            spec, trial, lambda p, res: res[0], backend="threads", max_workers=2
        )
        assert rows == [1, 2]

    def test_batched_backend_fuses_cells_with_identical_rows(self):
        spec = _demo_spec()
        serial = run_sweep(spec, _sum_trial, _sum_aggregate)
        fused = run_sweep(
            spec, _sum_trial, _sum_aggregate,
            batch_trial=_sum_batch_trial, backend="batched",
        )
        assert serial == fused

    def test_batch_trial_ignored_on_non_batched_backends(self):
        spec = _demo_spec()
        rows = run_sweep(
            spec, _sum_trial, _sum_aggregate,
            batch_trial=_short_batch_trial,  # would corrupt rows if used
            backend="serial",
        )
        assert rows == run_sweep(spec, _sum_trial, _sum_aggregate)

    def test_batched_backend_without_batch_trial_runs_per_trial(self):
        spec = _demo_spec()
        rows = run_sweep(spec, _sum_trial, _sum_aggregate, backend="batched")
        assert rows == run_sweep(spec, _sum_trial, _sum_aggregate)

    def test_batch_trial_result_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="returned 2 results for 3 trials"):
            run_sweep(
                _demo_spec(), _sum_trial, _sum_aggregate,
                batch_trial=_short_batch_trial, backend="batched",
            )

    def test_table1_batched_backend_rows_identical(self):
        serial = run_table1(sizes=[600], densities=[0.7], trials=4, seed=3)
        fused = run_table1(
            sizes=[600], densities=[0.7], trials=4, seed=3, backend="batched"
        )
        assert serial == fused

    def test_progress_reports_every_cell(self):
        events = []
        run_sweep(_demo_spec(), _sum_trial, _sum_aggregate, progress=events.append)
        assert [e.key for e in events] == ["offset=0", "offset=100", "offset=200"]
        assert [e.completed for e in events] == [1, 2, 3]
        assert all(e.total == 3 and not e.cached for e in events)

    def test_backend_instance_left_open(self):
        backend = get_backend("threads", max_workers=2)
        try:
            run_sweep(_demo_spec(), _sum_trial, _sum_aggregate, backend=backend)
            # Still usable afterwards (run_sweep must not close instances).
            assert backend.map(lambda x: x + 1, [1, 2]) == [2, 3]
        finally:
            backend.close()


class TestArtifactResume:
    def test_artifact_round_trip(self, tmp_path):
        out = tmp_path / "demo.json"
        spec = _demo_spec()
        rows = run_sweep(spec, _sum_trial, _sum_aggregate, out=out)
        artifact = SweepArtifact.load(out)
        assert artifact.matches(spec)
        assert set(artifact.rows) == {cell.key for cell in spec.cells}
        assert [artifact.rows[cell.key] for cell in spec.cells] == rows
        assert artifact.env["python"]

    def test_resume_skips_completed_cells(self, tmp_path):
        out = tmp_path / "demo.json"
        spec = _demo_spec()
        rows = run_sweep(spec, _sum_trial, _sum_aggregate, out=out)

        def poison(params, rng):
            raise AssertionError("completed cells must not be re-run")

        resumed = run_sweep(spec, poison, _sum_aggregate, out=out, resume=True)
        assert resumed == rows

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        out = tmp_path / "demo.json"
        run_sweep(_demo_spec(), _sum_trial, _sum_aggregate, out=out)
        with pytest.raises(SweepSpecMismatch):
            run_sweep(_demo_spec(seed=8), _sum_trial, _sum_aggregate, out=out, resume=True)

    def test_resume_requires_out(self):
        with pytest.raises(ValueError, match="resume"):
            run_sweep(_demo_spec(), _sum_trial, _sum_aggregate, resume=True)

    def test_resume_requires_deterministic_seeds(self, tmp_path):
        cells = (CellSpec(key="x", params={"offset": 0}, seed=None),)
        spec = SweepSpec(name="entropy", cells=cells)
        with pytest.raises(ValueError, match="cannot be resumed"):
            run_sweep(
                spec, _sum_trial, _sum_aggregate, out=tmp_path / "a.json", resume=True
            )

    def test_killed_mid_sweep_resume_matches_uninterrupted(self, tmp_path):
        spec = _demo_spec()
        uninterrupted = run_sweep(spec, _sum_trial, _sum_aggregate)

        def dies_on_second_cell(params, rng):
            if params["offset"] == 100:
                raise RuntimeError("simulated crash")
            return _sum_trial(params, rng)

        out = tmp_path / "killed.json"
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_sweep(spec, dies_on_second_cell, _sum_aggregate, out=out)
        partial = SweepArtifact.load(out)
        assert "offset=0" in partial.rows  # checkpointed before the crash
        assert "offset=100" not in partial.rows

        def only_missing_cells(params, rng):
            if params["offset"] == 0:
                raise AssertionError("cell offset=0 was already done")
            return _sum_trial(params, rng)

        resumed = run_sweep(spec, only_missing_cells, _sum_aggregate, out=out, resume=True)
        assert resumed == uninterrupted
        assert SweepArtifact.load(out).rows.keys() == {c.key for c in spec.cells}

    def test_existing_artifact_survives_rerun_aborted_before_first_cell(self, tmp_path):
        # Forgetting --resume must not truncate a prior checkpoint at startup:
        # the file is only overwritten once the first new cell completes.
        out = tmp_path / "demo.json"
        spec = _demo_spec()
        run_sweep(spec, _sum_trial, _sum_aggregate, out=out)

        def dies_immediately(params, rng):
            raise RuntimeError("aborted run")

        with pytest.raises(RuntimeError, match="aborted run"):
            run_sweep(spec, dies_immediately, _sum_aggregate, out=out, resume=False)
        assert set(SweepArtifact.load(out).rows) == {c.key for c in spec.cells}

    def test_non_artifact_file_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"results": []}))
        with pytest.raises(ValueError, match="not a sweep artifact"):
            SweepArtifact.load(bogus)


class TestExperimentSweepIntegration:
    def test_table1_resume_round_trip(self, tmp_path):
        out = tmp_path / "table1.json"
        spec = table1_spec(sizes=(1000, 2000), densities=(0.7,), trials=2, seed=5)
        fresh = run_table1(sizes=(1000, 2000), densities=(0.7,), trials=2, seed=5)
        rows = run_sweep(spec, _table1_trial, _table1_aggregate, out=out)
        assert rows == fresh
        # Reload through the artifact: dataclass rows survive the JSON trip.
        restored = [SweepArtifact.load(out).rows[c.key] for c in spec.cells]
        assert restored == fresh
        assert all(isinstance(row, Table1Row) for row in restored)


class TestSweepCLI:
    def test_out_resume_progress_flow(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t1.json"
        argv = [
            "table1", "--sizes", "1000", "2000", "--densities", "0.7",
            "--trials", "2", "--seed", "3", "--out", str(out), "--progress",
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "done: c=0.7/n=1000" in first.err
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr()
        assert "cached: c=0.7/n=1000" in second.err
        assert first.out == second.out

    def test_resume_without_out_errors(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--resume requires --out"):
            main(["table1", "--sizes", "1000", "--trials", "1", "--resume"])
