"""Property-based tests (hypothesis) for the peeling engines.

The central invariants:

1. every engine produces exactly the k-core (order independence);
2. the parallel engine's per-round histories are internally consistent;
3. peeling is monotone in k (a (k+1)-core is contained in the k-core);
4. subtable peeling agrees with plain peeling on the final core.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParallelPeeler, SequentialPeeler, SubtablePeeler
from repro.core.results import UNPEELED
from repro.hypergraph import (
    Hypergraph,
    kcore,
    partitioned_hypergraph,
    random_hypergraph,
    reference_kcore_mask,
)

graph_params = st.tuples(
    st.integers(min_value=6, max_value=80),      # n
    st.integers(min_value=0, max_value=120),     # m
    st.integers(min_value=2, max_value=4),       # r
    st.integers(min_value=0, max_value=2**31),   # seed
)


def _build(params) -> Hypergraph:
    n, m, r, seed = params
    r = min(r, n)
    if r < 2:
        r = 2
    return random_hypergraph(n, 1.0, r, num_edges=m, seed=seed)


class TestEnginesAgree:
    @given(params=graph_params, k=st.integers(min_value=2, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_parallel_equals_sequential_equals_reference(self, params, k):
        graph = _build(params)
        par = ParallelPeeler(k).peel(graph)
        seq = SequentialPeeler(k).peel(graph)
        ref_vertices = reference_kcore_mask(graph, k)
        assert np.array_equal(par.core_edge_mask, seq.core_edge_mask)
        # Vertices with positive residual degree must agree with the slow
        # reference k-core exactly.
        assert np.array_equal(par.core_vertex_mask, ref_vertices) or np.array_equal(
            par.core_vertex_mask & (graph.degrees() > 0), ref_vertices
        )
        assert par.success == seq.success == (par.core_edge_mask.sum() == 0)

    @given(params=graph_params, k=st.integers(min_value=2, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_full_and_frontier_identical(self, params, k):
        graph = _build(params)
        full = ParallelPeeler(k, update="full").peel(graph)
        frontier = ParallelPeeler(k, update="frontier").peel(graph)
        assert np.array_equal(full.vertex_peel_round, frontier.vertex_peel_round)
        assert np.array_equal(full.edge_peel_round, frontier.edge_peel_round)
        assert full.num_rounds == frontier.num_rounds

    @given(
        n_blocks=st.integers(min_value=3, max_value=30),
        m=st.integers(min_value=0, max_value=90),
        r=st.integers(min_value=3, max_value=4),
        k=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_subtable_core_matches_kcore(self, n_blocks, m, r, k, seed):
        n = n_blocks * r
        graph = partitioned_hypergraph(n, 1.0, r, num_edges=m, seed=seed)
        sub = SubtablePeeler(k).peel(graph)
        ref = kcore(graph, k)
        assert np.array_equal(sub.core_edge_mask, ref.edge_mask)
        assert sub.success == ref.is_empty


class TestStructuralInvariants:
    @given(params=graph_params, k=st.integers(min_value=2, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_core_vertices_have_degree_at_least_k(self, params, k):
        graph = _build(params)
        result = ParallelPeeler(k).peel(graph)
        if graph.num_edges == 0:
            return
        surviving_edges = graph.edges[result.core_edge_mask]
        if surviving_edges.size == 0:
            return
        degrees = np.bincount(surviving_edges.reshape(-1), minlength=graph.num_vertices)
        core_vertices = np.flatnonzero(result.core_vertex_mask)
        assert (degrees[core_vertices] >= k).all()

    @given(params=graph_params)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_k(self, params):
        graph = _build(params)
        core2 = ParallelPeeler(2).peel(graph).core_edge_mask
        core3 = ParallelPeeler(3).peel(graph).core_edge_mask
        # The 3-core is a subgraph of the 2-core.
        assert not (core3 & ~core2).any()

    @given(params=graph_params, k=st.integers(min_value=2, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_round_histories_consistent(self, params, k):
        graph = _build(params)
        result = ParallelPeeler(k).peel(graph)
        total_peeled = sum(s.vertices_peeled for s in result.round_stats)
        assert total_peeled == int((result.vertex_peel_round != UNPEELED).sum())
        total_edges_peeled = sum(s.edges_peeled for s in result.round_stats)
        assert total_edges_peeled == int((result.edge_peel_round != UNPEELED).sum())
        # Peel rounds are in 1..num_rounds (or UNPEELED).
        peeled_rounds = result.vertex_peel_round[result.vertex_peel_round != UNPEELED]
        if peeled_rounds.size:
            assert peeled_rounds.min() >= 1
            assert peeled_rounds.max() <= result.num_rounds

    @given(params=graph_params, k=st.integers(min_value=2, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_edge_peel_round_never_before_vertex(self, params, k):
        graph = _build(params)
        result = ParallelPeeler(k).peel(graph)
        for e in range(graph.num_edges):
            edge_round = result.edge_peel_round[e]
            endpoint_rounds = result.vertex_peel_round[graph.edge_vertices(e)]
            peeled = endpoint_rounds[endpoint_rounds != UNPEELED]
            if edge_round == UNPEELED:
                assert peeled.size == 0
            else:
                assert edge_round == peeled.min()
