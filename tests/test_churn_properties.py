"""Property-based tests (hypothesis) for incremental decoding under churn.

Random interleavings of inserts and deletes, checkpointed at random
points, must round-trip identically across every decoder name — including
signed difference digests (net deletes) and tables whose layout maps a
key to duplicate cell endpoints.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iblt import IBLT

DECODERS = ("serial", "flat", "batched")

key_pools = st.lists(
    st.integers(min_value=1, max_value=2**62), min_size=10, max_size=80, unique=True
)
# A churn script: at each step insert some fraction of the unused pool and
# delete some of the live keys, then checkpoint.
churn_scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),  # inserts this step
        st.integers(min_value=0, max_value=4),  # deletes this step
    ),
    min_size=1,
    max_size=5,
)


def canonical(result):
    return (
        sorted(map(int, np.asarray(result.recovered, dtype=np.uint64))),
        sorted(map(int, np.asarray(result.removed, dtype=np.uint64))),
    )


def scratch(table, *, signed=True):
    return IBLT.from_bytes(table.to_bytes()).decode(decoder="flat", signed=signed)


def run_churn_script(table, pool, script, *, decoder, seed):
    """Apply ``script`` step by step, checkpointing after each step.

    Returns the list of (checkpoint, from-scratch) canonical pairs.
    """
    rng = np.random.default_rng(seed)
    live = list(pool[: len(pool) // 2])
    unused = list(pool[len(pool) // 2:])
    table.insert(np.asarray(live, dtype=np.uint64))
    table.decode(decoder=decoder, signed=True, incremental=True)
    pairs = []
    for num_ins, num_del in script:
        inserts = [unused.pop() for _ in range(min(num_ins, len(unused)))]
        deletes = [
            live.pop(int(rng.integers(len(live))))
            for _ in range(min(num_del, len(live)))
        ]
        if inserts:
            table.insert(np.asarray(inserts, dtype=np.uint64))
            live.extend(inserts)
        if deletes:
            table.delete(np.asarray(deletes, dtype=np.uint64))
        checkpoint = table.decode(decoder=decoder, signed=True, incremental=True)
        pairs.append((canonical(checkpoint), canonical(scratch(table)), sorted(live)))
    return pairs


class TestChurnProperties:
    @given(pool=key_pools, script=churn_scripts, seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_churn_round_trips_across_decoders(self, pool, script, seed):
        for decoder in DECODERS:
            table = IBLT(300, 3, seed=seed % 17)
            for got, want, live in run_churn_script(
                table, pool, script, decoder=decoder, seed=seed
            ):
                assert got == want
                assert got[0] == live

    @given(pool=key_pools, seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_signed_digest_with_net_deletes(self, pool, seed):
        # Delete keys never inserted: the signed session must keep reporting
        # them as removed at every later checkpoint, like from-scratch.
        half = len(pool) // 2
        inserted = np.asarray(pool[:half], dtype=np.uint64)
        ghosts = np.asarray(pool[half:], dtype=np.uint64)
        table = IBLT(300, 3, seed=seed % 17)
        table.insert(inserted)
        table.decode(decoder="serial", signed=True, incremental=True)
        table.delete(ghosts)
        first = table.decode(decoder="serial", signed=True, incremental=True)
        assert canonical(first) == canonical(scratch(table))
        assert first.success
        assert canonical(first)[1] == sorted(map(int, ghosts))
        # Re-inserting the ghosts cancels the negatives entirely.
        table.insert(ghosts)
        second = table.decode(decoder="serial", signed=True, incremental=True)
        assert canonical(second) == canonical(scratch(table))
        assert canonical(second)[1] == []

    @given(
        keys=st.lists(
            st.integers(min_value=1, max_value=2**62),
            min_size=4, max_size=30, unique=True,
        ),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=30, deadline=None)
    def test_duplicate_endpoint_keys_in_flat_layout(self, keys, seed):
        # The flat layout draws r cells independently, so a key can hash two
        # of its endpoints into the same cell; churn over such keys must
        # still round-trip (the small cell count makes collisions common).
        table = IBLT(24, 3, layout="flat", seed=seed)
        arr = np.asarray(keys, dtype=np.uint64)
        half = arr.size // 2
        table.insert(arr[:half])
        table.decode(decoder="flat", signed=True, incremental=True)
        table.insert(arr[half:])
        table.delete(arr[:2])
        got = table.decode(decoder="flat", signed=True, incremental=True)
        want = scratch(table)
        assert got.success == want.success
        assert canonical(got) == canonical(want)
