"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_in_range,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    require,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int(1, "x") == 1

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int32(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="num_cells"):
            check_positive_int(0, "num_cells")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_nonnegative_int(2.0, "x")


class TestCheckPositiveFloat:
    def test_accepts_float(self):
        assert check_positive_float(0.5, "x") == 0.5

    def test_accepts_int(self):
        assert check_positive_float(3, "x") == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_float(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_float(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive_float(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive_float(float("inf"), "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_float("1.0", "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_rejects_below_zero(self):
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability(True, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0
        assert check_in_range(2.0, "x", 1.0, 2.0) == 2.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)

    def test_below_low_rejected(self):
        with pytest.raises(ValueError):
            check_in_range(0.5, "x", 1.0, None)

    def test_above_high_rejected(self):
        with pytest.raises(ValueError):
            check_in_range(3.0, "x", None, 2.0)

    def test_no_bounds(self):
        assert check_in_range(42.0, "x") == 42.0


class TestCheckArray1d:
    def test_list_coerced(self):
        arr = check_array_1d([1, 2, 3], "x")
        assert arr.shape == (3,)

    def test_dtype_applied(self):
        arr = check_array_1d([1, 2], "x", dtype=np.float64)
        assert arr.dtype == np.float64

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            check_array_1d([[1, 2], [3, 4]], "x")

    def test_empty_ok(self):
        assert check_array_1d([], "x").size == 0
