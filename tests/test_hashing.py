"""Tests for the IBLT hash family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.iblt.hashing import KeyHasher, checksum_keys, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        keys = np.arange(1, 100, dtype=np.uint64)
        assert np.array_equal(splitmix64(keys, seed=3), splitmix64(keys, seed=3))

    def test_seed_changes_output(self):
        keys = np.arange(1, 100, dtype=np.uint64)
        assert not np.array_equal(splitmix64(keys, seed=3), splitmix64(keys, seed=4))

    def test_scalar_input(self):
        out = splitmix64(12345, seed=0)
        assert isinstance(out, np.uint64)

    def test_no_trivial_fixed_point_at_zero(self):
        assert splitmix64(0, seed=0) != 0

    def test_distinct_inputs_rarely_collide(self):
        keys = np.arange(1, 100_001, dtype=np.uint64)
        hashed = splitmix64(keys, seed=1)
        assert np.unique(hashed).size == keys.size

    def test_output_dtype(self):
        out = splitmix64(np.array([1, 2, 3], dtype=np.uint64))
        assert out.dtype == np.uint64


class TestSeedOverflow:
    """Regression: seeds outside [0, 2**64) must wrap, not raise.

    ``np.uint64(seed)`` raises ``OverflowError`` on negative or ``>= 2**64``
    inputs — values seed-derivation arithmetic (XOR offsets, subtraction)
    can easily produce.
    """

    def test_negative_seed_accepted_and_wraps(self):
        keys = np.arange(1, 50, dtype=np.uint64)
        assert np.array_equal(splitmix64(keys, seed=-1), splitmix64(keys, seed=2**64 - 1))

    def test_huge_seed_accepted_and_wraps(self):
        keys = np.arange(1, 50, dtype=np.uint64)
        assert np.array_equal(splitmix64(keys, seed=2**64 + 5), splitmix64(keys, seed=5))

    def test_scalar_path_negative_seed(self):
        out = splitmix64(12345, seed=-3)
        assert isinstance(out, np.uint64)
        assert out == splitmix64(12345, seed=2**64 - 3)

    def test_checksum_negative_seed(self):
        # checksum_keys XORs the seed before hashing; XOR of a negative int
        # is congruent mod 2**64 with XOR of its wrapped counterpart.
        assert checksum_keys(42, seed=-1) == checksum_keys(42, seed=2**64 - 1)

    def test_keyhasher_negative_seed(self):
        keys = np.arange(1, 101, dtype=np.uint64)
        hasher = KeyHasher(300, 3, seed=-7)
        cells = hasher.cell_indices(keys)
        assert cells.min() >= 0 and cells.max() < 300
        assert np.array_equal(cells, KeyHasher(300, 3, seed=-7).cell_indices(keys))

    def test_keyhasher_huge_seed_wraps_like_derive_seed(self):
        keys = np.arange(1, 101, dtype=np.uint64)
        a = KeyHasher(300, 3, seed=2**64 + 9).cell_indices(keys)
        b = KeyHasher(300, 3, seed=9).cell_indices(keys)
        assert np.array_equal(a, b)

    def test_iblt_round_trips_with_negative_seed(self):
        from repro.iblt import IBLT

        table = IBLT(300, 3, seed=-11)
        table.insert([5, 6, 7])
        result = table.decode(decoder="serial")
        assert result.success
        assert sorted(int(k) for k in result.recovered) == [5, 6, 7]


class TestChecksum:
    def test_checksum_differs_from_hash(self):
        keys = np.arange(1, 1000, dtype=np.uint64)
        assert not np.array_equal(checksum_keys(keys), splitmix64(keys))

    def test_checksum_deterministic(self):
        assert checksum_keys(42) == checksum_keys(42)

    def test_checksum_seed_sensitivity(self):
        assert checksum_keys(42, seed=1) != checksum_keys(42, seed=2)


class TestKeyHasher:
    def test_subtable_layout_column_ranges(self):
        hasher = KeyHasher(num_cells=300, r=3, layout="subtables", seed=0)
        keys = np.arange(1, 2001, dtype=np.uint64)
        cells = hasher.cell_indices(keys)
        assert cells.shape == (2000, 3)
        for j in range(3):
            assert (cells[:, j] >= j * 100).all()
            assert (cells[:, j] < (j + 1) * 100).all()

    def test_flat_layout_whole_range(self):
        hasher = KeyHasher(num_cells=100, r=3, layout="flat", seed=0)
        cells = hasher.cell_indices(np.arange(1, 5001, dtype=np.uint64))
        assert cells.min() >= 0 and cells.max() < 100

    def test_scalar_key(self):
        hasher = KeyHasher(num_cells=300, r=3, seed=0)
        out = hasher.cell_indices(7)
        assert out.shape == (3,)

    def test_deterministic_per_seed(self):
        keys = np.arange(1, 101, dtype=np.uint64)
        a = KeyHasher(300, 3, seed=1).cell_indices(keys)
        b = KeyHasher(300, 3, seed=1).cell_indices(keys)
        c = KeyHasher(300, 3, seed=2).cell_indices(keys)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_subtable_size(self):
        assert KeyHasher(300, 3).subtable_size == 100

    def test_subtable_size_flat_rejected(self):
        with pytest.raises(ValueError):
            _ = KeyHasher(300, 3, layout="flat").subtable_size

    def test_divisibility_required_for_subtables(self):
        with pytest.raises(ValueError):
            KeyHasher(301, 3, layout="subtables")

    def test_flat_no_divisibility_needed(self):
        KeyHasher(301, 3, layout="flat")

    def test_r_below_two_rejected(self):
        with pytest.raises(ValueError):
            KeyHasher(100, 1)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            KeyHasher(100, 2, layout="wavy")  # type: ignore[arg-type]

    def test_subtable_of_cell(self):
        hasher = KeyHasher(300, 3)
        assert hasher.subtable_of_cell(0) == 0
        assert hasher.subtable_of_cell(150) == 1
        assert np.array_equal(hasher.subtable_of_cell(np.array([0, 100, 299])), [0, 1, 2])

    def test_subtable_of_cell_flat_rejected(self):
        with pytest.raises(ValueError):
            KeyHasher(300, 3, layout="flat").subtable_of_cell(5)

    def test_cell_distribution_roughly_uniform(self):
        hasher = KeyHasher(num_cells=90, r=3, seed=4)
        keys = np.arange(1, 30_001, dtype=np.uint64)
        cells = hasher.cell_indices(keys)
        counts = np.bincount(cells.reshape(-1), minlength=90)
        # 90k hashes into 90 cells: each cell expects 1000; allow wide slack.
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_checksums_match_module_function(self):
        hasher = KeyHasher(90, 3, seed=5)
        keys = np.array([1, 2, 3], dtype=np.uint64)
        assert np.array_equal(hasher.checksums(keys), hasher.checksums(keys))
