"""Incremental IBLT decoding: the resident session and its checkpoints.

The golden contract: after any interleaving of inserts and deletes,
``decode(incremental=True)`` returns exactly the key sets a from-scratch
decode of the mutated table would — at *every* checkpoint, for every
decoder name — while re-peeling only the dirty neighbourhood.  The
decoder choice governs the bootstrap only; checkpoints run one shared
decoder-independent re-peel, so cross-decoder identity is structural and
these tests pin it stays that way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sparse_recovery import random_distinct_keys
from repro.iblt import IBLT, IncrementalDecodeResult, IncrementalDecodeSession

DECODERS = ("serial", "flat", "batched")


def make_table(num_cells=600, r=3, *, seed=5, layout="subtables"):
    return IBLT(num_cells, r, layout=layout, seed=seed)


def canonical(result):
    """(recovered, removed) as sorted int lists, decoder-order-independent."""
    return (
        sorted(map(int, np.asarray(result.recovered, dtype=np.uint64))),
        sorted(map(int, np.asarray(result.removed, dtype=np.uint64))),
    )


def scratch_decode(table, *, signed=True):
    """From-scratch decode of a byte-copy (never touches ``table``'s session)."""
    return IBLT.from_bytes(table.to_bytes()).decode(decoder="flat", signed=signed)


class TestBootstrap:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_bootstrap_recovers_everything(self, decoder):
        keys = random_distinct_keys(200, seed=1)
        table = make_table()
        table.insert(keys)
        result = table.decode(decoder=decoder, signed=True, incremental=True)
        assert isinstance(result, IncrementalDecodeResult)
        assert result.success
        assert result.resumed_from_round == 0
        assert result.rounds_incremental == result.rounds
        assert canonical(result)[0] == sorted(map(int, keys))

    def test_bootstrap_output_is_canonical_sorted(self):
        keys = random_distinct_keys(150, seed=2)
        table = make_table()
        table.insert(keys)
        result = table.decode(decoder="flat", signed=True, incremental=True)
        recovered = np.asarray(result.recovered, dtype=np.uint64)
        assert (recovered[:-1] <= recovered[1:]).all()

    def test_incremental_in_place_rejected(self):
        table = make_table()
        with pytest.raises(ValueError, match="in_place"):
            table.decode(incremental=True, in_place=True)

    def test_signed_mode_pinned_per_session(self):
        table = make_table()
        table.insert(random_distinct_keys(50, seed=3))
        table.decode(incremental=True, signed=True)
        with pytest.raises(ValueError, match="signed"):
            table.decode(incremental=True, signed=False)

    def test_in_place_decode_discards_session(self):
        keys = random_distinct_keys(50, seed=3)
        table = make_table()
        table.insert(keys)
        table.decode(incremental=True, signed=True)
        assert table._session is not None
        table.decode(in_place=True)  # drains the table; session can't observe it
        assert table._session is None


class TestCheckpointIdentity:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_every_checkpoint_matches_from_scratch(self, decoder):
        rng = np.random.default_rng(7)
        pool = random_distinct_keys(400, seed=4)
        current = pool[:200]
        table = make_table()
        table.insert(current)
        table.decode(decoder=decoder, signed=True, incremental=True)
        cursor = 200
        for _ in range(5):
            drop = rng.choice(current.size, size=6, replace=False)
            fresh = pool[cursor:cursor + 8]
            cursor += 8
            table.delete(current[drop])
            table.insert(fresh)
            current = np.concatenate([np.delete(current, drop), fresh])
            incr = table.decode(decoder=decoder, signed=True, incremental=True)
            want = scratch_decode(table)
            assert incr.success == want.success
            assert canonical(incr) == canonical(want)
            assert canonical(incr)[0] == sorted(map(int, current))

    def test_decoders_agree_at_every_checkpoint(self):
        # Same churn script against three sessions, one per decoder name:
        # the checkpoint sequences must be element-for-element identical.
        pool = random_distinct_keys(300, seed=5)
        tables = {d: make_table() for d in DECODERS}
        for t in tables.values():
            t.insert(pool[:150])
            t.decode(decoder=("serial" if t is tables["serial"] else "flat"), signed=True)
        sessions = {
            d: t.decode(decoder=d, signed=True, incremental=True)
            for d, t in tables.items()
        }
        assert len({tuple(canonical(r)[0]) for r in sessions.values()}) == 1
        rng = np.random.default_rng(9)
        current = pool[:150]
        cursor = 150
        for _ in range(3):
            drop = rng.choice(current.size, size=5, replace=False)
            fresh = pool[cursor:cursor + 5]
            cursor += 5
            deleted = current[drop]
            current = np.concatenate([np.delete(current, drop), fresh])
            checkpoints = []
            for d, t in tables.items():
                t.delete(deleted)
                t.insert(fresh)
                checkpoints.append(t.decode(decoder=d, signed=True, incremental=True))
            assert len({tuple(canonical(c)[0]) for c in checkpoints}) == 1
            assert len({tuple(canonical(c)[1]) for c in checkpoints}) == 1

    def test_net_delete_appears_as_removed(self):
        # Deleting a key that was never inserted leaves count -1 cells: the
        # signed session must report it in `removed`, same as from-scratch.
        keys = random_distinct_keys(80, seed=6)
        ghost = np.array([0xDEADBEEF], dtype=np.uint64)
        table = make_table()
        table.insert(keys)
        table.decode(decoder="flat", signed=True, incremental=True)
        table.delete(ghost)
        incr = table.decode(decoder="flat", signed=True, incremental=True)
        want = scratch_decode(table)
        assert canonical(incr) == canonical(want)
        assert int(ghost[0]) in canonical(incr)[1]

    def test_delete_of_recovered_key_cancels(self):
        # Churn-deleting an already-recovered key must drop it from the
        # recovered set, exactly as a decode that never saw it.
        keys = random_distinct_keys(100, seed=7)
        table = make_table()
        table.insert(keys)
        table.decode(decoder="serial", signed=True, incremental=True)
        table.delete(keys[:3])
        incr = table.decode(decoder="serial", signed=True, incremental=True)
        assert canonical(incr)[0] == sorted(map(int, keys[3:]))
        assert canonical(incr) == canonical(scratch_decode(table))

    def test_noop_checkpoint_is_cheap_and_stable(self):
        keys = random_distinct_keys(120, seed=8)
        table = make_table()
        table.insert(keys)
        first = table.decode(decoder="flat", signed=True, incremental=True)
        again = table.decode(decoder="flat", signed=True, incremental=True)
        assert canonical(again) == canonical(first)
        assert again.rounds_incremental == 0
        assert again.cells_scanned == 0
        assert again.resumed_from_round == first.rounds

    def test_incremental_rounds_scale_with_churn_not_size(self):
        num_cells = 30_000
        pool = random_distinct_keys(int(0.7 * num_cells) + 50, seed=9)
        current = pool[:int(0.7 * num_cells)]
        table = make_table(num_cells=num_cells)
        table.insert(current)
        bootstrap = table.decode(decoder="flat", signed=True, incremental=True)
        table.delete(current[:25])
        table.insert(pool[current.size:current.size + 25])
        incr = table.decode(decoder="flat", signed=True, incremental=True)
        assert incr.success
        # 50 churned keys touch a few hundred cells; a from-scratch re-peel
        # would scan every cell over `bootstrap.rounds` rounds.
        assert incr.cells_scanned < num_cells
        assert incr.rounds_incremental <= bootstrap.rounds

    def test_discard_session_forces_fresh_bootstrap(self):
        keys = random_distinct_keys(60, seed=10)
        table = make_table()
        table.insert(keys)
        table.decode(decoder="flat", signed=True, incremental=True)
        table.discard_session()
        fresh = table.decode(decoder="flat", signed=True, incremental=True)
        assert fresh.resumed_from_round == 0
        assert canonical(fresh)[0] == sorted(map(int, keys))


class TestSessionInternals:
    def test_residual_empties_once_everything_recovered(self):
        keys = random_distinct_keys(100, seed=11)
        table = make_table()
        table.insert(keys)
        table.decode(decoder="flat", signed=True, incremental=True)
        session = table._session
        assert isinstance(session, IncrementalDecodeSession)
        assert session.residual_is_empty()

    def test_mirror_tracks_mutations_applied_through_the_table(self):
        keys = random_distinct_keys(100, seed=12)
        table = make_table()
        table.insert(keys)
        table.decode(decoder="flat", signed=True, incremental=True)
        session = table._session
        assert not session._dirty
        table.insert(random_distinct_keys(5, seed=13))
        assert session._dirty
        assert not session.residual_is_empty()

    def test_apply_cell_delta_equivalent_to_mirror(self):
        # Shipping a table diff as raw cell deltas (the serve session path)
        # must land on the same answer as mirroring the key mutations.
        keys = random_distinct_keys(100, seed=14)
        fresh = random_distinct_keys(7, seed=15)
        mirrored, shipped = make_table(), make_table()
        for t in (mirrored, shipped):
            t.insert(keys)
            t.decode(decoder="flat", signed=True, incremental=True)
        mirrored.insert(fresh)
        mutated = make_table()
        mutated.insert(keys)
        mutated.insert(fresh)
        dirty = np.flatnonzero(
            (mutated.count != shipped.count)
            | (mutated.key_sum != shipped.key_sum)
            | (mutated.check_sum != shipped.check_sum)
        )
        shipped._session.apply_cell_delta(
            dirty,
            mutated.count[dirty] - shipped.count[dirty],
            mutated.key_sum[dirty] ^ shipped.key_sum[dirty],
            mutated.check_sum[dirty] ^ shipped.check_sum[dirty],
        )
        shipped.count[dirty] = mutated.count[dirty]
        shipped.key_sum[dirty] = mutated.key_sum[dirty]
        shipped.check_sum[dirty] = mutated.check_sum[dirty]
        a = mirrored.decode(decoder="flat", signed=True, incremental=True)
        b = shipped.decode(decoder="flat", signed=True, incremental=True)
        assert canonical(a) == canonical(b)
        assert canonical(a)[0] == sorted(map(int, np.concatenate([keys, fresh])))
