"""Tests for the threshold computation (Equation 2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.analysis.thresholds import (
    peeling_threshold,
    poisson_tail,
    survival_update,
    threshold_minimizer,
    threshold_objective,
)


class TestPoissonTail:
    @pytest.mark.parametrize("mean", [0.1, 0.7, 1.0, 3.5, 10.0])
    @pytest.mark.parametrize("threshold", [1, 2, 3, 5])
    def test_matches_scipy(self, mean, threshold):
        expected = stats.poisson.sf(threshold - 1, mean)
        assert poisson_tail(mean, threshold) == pytest.approx(expected, rel=1e-10)

    def test_threshold_zero_is_one(self):
        assert poisson_tail(2.3, 0) == 1.0
        assert poisson_tail(0.0, 0) == 1.0

    def test_zero_mean(self):
        assert poisson_tail(0.0, 1) == pytest.approx(0.0)
        assert poisson_tail(0.0, 3) == pytest.approx(0.0)

    def test_vectorized(self):
        means = np.array([0.5, 1.0, 2.0])
        out = poisson_tail(means, 2)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)  # monotone in the mean

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_tail(-0.1, 2)

    def test_monotone_in_threshold(self):
        assert poisson_tail(2.0, 1) > poisson_tail(2.0, 2) > poisson_tail(2.0, 5)


class TestSurvivalUpdate:
    def test_rho_one_gives_full_tail(self):
        # With rho=1 the mean is r*c and the update is Pr[Poisson(rc) >= k-1].
        value = survival_update(1.0, c=0.7, k=2, r=4)
        assert value == pytest.approx(stats.poisson.sf(0, 2.8), rel=1e-10)

    def test_rho_zero_gives_zero_for_k_ge_2(self):
        assert survival_update(0.0, c=0.7, k=2, r=4) == pytest.approx(0.0)

    def test_monotone_in_rho(self):
        rhos = np.linspace(0, 1, 11)
        values = survival_update(rhos, c=0.7, k=2, r=4)
        assert np.all(np.diff(values) >= 0)

    def test_below_threshold_contracts_to_zero(self):
        rho = 1.0
        for _ in range(200):
            rho = survival_update(rho, c=0.70, k=2, r=4)
        assert rho < 1e-6

    def test_above_threshold_has_positive_fixed_point(self):
        rho = 1.0
        for _ in range(500):
            rho = survival_update(rho, c=0.85, k=2, r=4)
        assert rho > 0.5


class TestThresholdValues:
    def test_paper_value_k2_r3(self):
        assert peeling_threshold(2, 3) == pytest.approx(0.818, abs=5e-4)

    def test_paper_value_k2_r4(self):
        assert peeling_threshold(2, 4) == pytest.approx(0.772, abs=5e-4)

    def test_paper_value_k3_r3(self):
        assert peeling_threshold(3, 3) == pytest.approx(1.553, abs=5e-4)

    def test_known_literature_value_k2_r5(self):
        # c*_{2,5} ≈ 0.70178 (cuckoo hashing / XORSAT literature).
        assert peeling_threshold(2, 5) == pytest.approx(0.7018, abs=1e-3)

    def test_known_literature_value_k2_r6(self):
        # c*_{2,6} ≈ 0.637 (XORSAT / peelability literature); the threshold
        # keeps decreasing in r for k = 2.
        assert peeling_threshold(2, 6) == pytest.approx(0.637, abs=2e-3)

    def test_threshold_increases_with_k(self):
        assert peeling_threshold(3, 3) > peeling_threshold(2, 3)
        assert peeling_threshold(4, 3) > peeling_threshold(3, 3)

    def test_threshold_decreases_with_r_for_k2(self):
        assert peeling_threshold(2, 3) > peeling_threshold(2, 4) > peeling_threshold(2, 5)

    def test_k2_r2_excluded(self):
        with pytest.raises(ValueError):
            peeling_threshold(2, 2)

    def test_k1_rejected(self):
        with pytest.raises(ValueError):
            peeling_threshold(1, 3)

    def test_minimizer_is_interior_minimum(self):
        x_star, c_star = threshold_minimizer(2, 4)
        for offset in (-0.05, 0.05):
            assert threshold_objective(x_star + offset, k=2, r=4) >= c_star - 1e-12

    def test_minimizer_x_star_at_least_k_minus_1(self):
        # Appendix C shows x* >= k - 1.
        for k, r in [(2, 3), (2, 4), (3, 3), (3, 4), (4, 3)]:
            x_star, _ = threshold_minimizer(k, r)
            assert x_star >= k - 1 - 1e-9

    def test_objective_at_threshold_matches(self):
        x_star, c_star = threshold_minimizer(2, 4)
        assert threshold_objective(x_star, k=2, r=4) == pytest.approx(c_star, rel=1e-12)

    def test_cache_returns_same_object(self):
        assert threshold_minimizer(2, 4) == threshold_minimizer(2, 4)


class TestThresholdSeparatesRegimes:
    """The threshold must actually separate empty from non-empty cores."""

    @pytest.mark.parametrize("k,r", [(2, 3), (2, 4)])
    def test_simulation_agrees_with_threshold(self, k, r):
        from repro.core import ParallelPeeler
        from repro.hypergraph import random_hypergraph

        c_star = peeling_threshold(k, r)
        n = 20_000
        below = random_hypergraph(n, c_star - 0.05, r, seed=1)
        above = random_hypergraph(n, c_star + 0.05, r, seed=2)
        assert ParallelPeeler(k).peel(below).success
        assert not ParallelPeeler(k).peel(above).success
