"""Integration tests: theory vs. simulation, end-to-end pipelines, public API."""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro
from repro import (
    IBLT,
    ParallelPeeler,
    SequentialPeeler,
    SubtablePeeler,
    SubtableParallelDecoder,
    iterate_recurrence,
    peel_to_kcore,
    peeling_threshold,
    predicted_survivors,
    random_hypergraph,
)
from repro.analysis.rounds import leading_constant_below, predict_rounds
from repro.hypergraph import partitioned_hypergraph


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        graph = random_hypergraph(10_000, 0.7, 4, seed=1)
        result = peel_to_kcore(graph, k=2)
        assert result.success
        assert round(peeling_threshold(2, 4), 3) == 0.772


class TestTheoremScaling:
    """The headline theorems, checked against the actual engines."""

    def test_theorem1_loglog_scaling_below_threshold(self):
        """Rounds below threshold grow ~ log log n: going from n=2k to n=128k
        (a 64x increase) should change the round count by at most ~2."""
        rounds = []
        for n in (2_000, 128_000):
            graph = random_hypergraph(n, 0.7, 4, seed=n)
            rounds.append(ParallelPeeler(2).peel(graph).num_rounds)
        assert abs(rounds[1] - rounds[0]) <= 2

    def test_theorem3_log_scaling_above_threshold(self):
        """Rounds above threshold grow ~ log n: a 64x increase in n should add
        clearly more rounds than the below-threshold case (averaged over a few
        trials to damp per-instance noise)."""
        averages = []
        for n in (2_000, 128_000):
            rounds = [
                ParallelPeeler(2, track_stats=False)
                .peel(random_hypergraph(n, 0.85, 4, seed=n + i))
                .num_rounds
                for i in range(3)
            ]
            averages.append(sum(rounds) / len(rounds))
        assert averages[1] - averages[0] >= 3.0

    def test_below_faster_than_above_asymmetry(self):
        """The paper's 'fortunate asymmetry': at the same n, peeling to an
        empty core (below threshold) needs far fewer rounds than finding a
        non-empty core (above threshold)."""
        n = 160_000
        below = ParallelPeeler(2).peel(random_hypergraph(n, 0.7, 4, seed=1)).num_rounds
        above = ParallelPeeler(2).peel(random_hypergraph(n, 0.85, 4, seed=2)).num_rounds
        assert below < above

    def test_rounds_match_recurrence_prediction(self):
        n = 100_000
        graph = random_hypergraph(n, 0.7, 4, seed=3)
        measured = ParallelPeeler(2).peel(graph).num_rounds
        predicted = predict_rounds(n, 0.7, 2, 4).rounds
        assert abs(measured - predicted) <= 2

    def test_theorem1_constant_consistency(self):
        # The recurrence-extinction round divided by log log n should be in
        # the same ballpark as the Theorem 1 constant (up to the additive
        # term; generous bounds).
        n = 10**6
        constant = leading_constant_below(2, 4)
        trace = iterate_recurrence(0.7, 2, 4, 200)
        extinction = trace.rounds_to_extinction(tol=1.0 / n)
        assert extinction is not None
        assert extinction >= constant * math.log(math.log(n)) - 1

    def test_theorem7_subround_scaling(self):
        """Subtable subrounds ≈ ratio × plain rounds with ratio ≪ r."""
        n = 80_000
        plain = ParallelPeeler(2).peel(random_hypergraph(n, 0.7, 4, seed=5)).num_rounds
        sub = SubtablePeeler(2).peel(partitioned_hypergraph(n, 0.7, 4, seed=5)).num_subrounds
        ratio = sub / plain
        assert 1.0 < ratio < 3.0  # paper observes ≈ 2.1, naive bound is 4


class TestSurvivorAccuracy:
    def test_lambda_prediction_tracks_simulation(self):
        n, c = 50_000, 0.7
        graph = random_hypergraph(n, c, 4, seed=7)
        result = ParallelPeeler(2).peel(graph)
        predicted = predicted_survivors(n, c, 2, 4, 8)
        for t in range(1, 9):
            measured = result.survivors_after_round(t)
            assert measured == pytest.approx(predicted[t - 1], rel=0.05, abs=50)


class TestEndToEndIBLT:
    def test_iblt_threshold_matches_hypergraph_threshold(self):
        """IBLT recovery success tracks c*_{2,r}: comfortably below succeeds,
        comfortably above fails."""
        c_star = peeling_threshold(2, 3)
        num_cells = 9000
        below = IBLT(num_cells, 3, seed=1)
        below.insert(np.arange(1, int((c_star - 0.07) * num_cells) + 1, dtype=np.uint64))
        above = IBLT(num_cells, 3, seed=1)
        above.insert(np.arange(1, int((c_star + 0.07) * num_cells) + 1, dtype=np.uint64))
        assert SubtableParallelDecoder().decode(below).success
        assert not SubtableParallelDecoder().decode(above).success

    def test_parallel_decode_rounds_are_small_below_threshold(self):
        num_cells = 30_000
        table = IBLT(num_cells, 3, seed=2)
        table.insert(np.arange(1, int(0.75 * num_cells) + 1, dtype=np.uint64))
        result = SubtableParallelDecoder().decode(table)
        assert result.success
        # O(log log n): double-digit rounds at most at this scale.
        assert result.rounds <= 20

    def test_iblt_peeling_is_hypergraph_peeling(self):
        """The IBLT-induced hypergraph peels exactly like the IBLT decodes.

        The *flat* round-synchronous decoder performs exactly the parallel
        peeling process on the hypergraph whose vertices are cells and whose
        edges are items, so its round count must match the hypergraph
        engine's (up to the trailing round in which the engine removes
        now-isolated vertices while the decoder has nothing left to recover).
        The subtable decoder is the Appendix-B variant and needs fewer
        rounds, which the ratio assertion captures.
        """
        from repro.hypergraph import Hypergraph
        from repro.iblt import FlatParallelDecoder

        num_cells, r = 600, 3
        table = IBLT(num_cells, r, seed=3)
        keys = np.arange(1, 401, dtype=np.uint64)
        table.insert(keys)
        cells = table.hasher.cell_indices(keys)
        graph = Hypergraph(num_cells, cells, allow_duplicate_vertices=True, validate=False)
        graph_result = ParallelPeeler(2).peel(graph)
        flat_result = FlatParallelDecoder().decode(table)
        subtable_result = SubtableParallelDecoder().decode(table)
        assert graph_result.success == flat_result.success == subtable_result.success
        assert abs(graph_result.num_rounds - flat_result.rounds) <= 1
        # Appendix B: subtables finish in fewer (full) rounds, never more.
        assert subtable_result.rounds <= flat_result.rounds


class TestCrossEngineConsistency:
    @pytest.mark.parametrize("c", [0.5, 0.7, 0.8, 0.9])
    def test_all_engines_one_core(self, c):
        n = 8_000
        graph = partitioned_hypergraph(n, c, 4, seed=int(c * 1000))
        par = ParallelPeeler(2).peel(graph)
        seq = SequentialPeeler(2).peel(graph)
        sub = SubtablePeeler(2).peel(graph)
        assert np.array_equal(par.core_edge_mask, seq.core_edge_mask)
        assert np.array_equal(par.core_edge_mask, sub.core_edge_mask)
