"""Tests for the residual-degree evolution analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.degree_evolution import (
    DegreeHistogram,
    distribution_distance,
    measured_degree_distribution,
    predicted_edge_survival,
    predicted_mean_residual_degree,
)
from repro.core import ParallelPeeler
from repro.hypergraph import Hypergraph, random_hypergraph


class TestPredictions:
    def test_round_zero_is_one(self):
        survival = predicted_edge_survival(0.7, 2, 4, 5)
        assert survival[0] == pytest.approx(1.0)
        assert survival.shape == (6,)

    def test_survival_monotone_decreasing_below_threshold(self):
        survival = predicted_edge_survival(0.7, 2, 4, 12)
        assert (np.diff(survival) <= 1e-12).all()
        assert survival[-1] < 1e-3

    def test_survival_positive_limit_above_threshold(self):
        survival = predicted_edge_survival(0.85, 2, 4, 80)
        assert survival[-1] > 0.3

    def test_mean_degree_is_rc_times_survival(self):
        mean = predicted_mean_residual_degree(0.7, 2, 4, 6)
        survival = predicted_edge_survival(0.7, 2, 4, 6)
        assert np.allclose(mean, 4 * 0.7 * survival)

    def test_zero_rounds(self):
        assert predicted_edge_survival(0.7, 2, 4, 0).shape == (1,)

    def test_invalid_parameters(self):
        with pytest.raises((ValueError, TypeError)):
            predicted_edge_survival(0.7, 0, 4, 3)


class TestMeasurement:
    @pytest.fixture(scope="class")
    def run(self):
        graph = random_hypergraph(50_000, 0.7, 4, seed=3)
        result = ParallelPeeler(2).peel(graph)
        return graph, result

    def test_round_zero_matches_raw_degrees(self, run):
        graph, result = run
        histogram = measured_degree_distribution(graph, result, 0)[0]
        assert histogram.mean == pytest.approx(graph.degrees().mean())
        assert histogram.edges_alive_fraction == pytest.approx(1.0)
        assert histogram.pmf.sum() == pytest.approx(1.0)

    def test_mean_degree_tracks_prediction(self, run):
        graph, result = run
        rounds = 7
        measured = measured_degree_distribution(graph, result, rounds)
        predicted = predicted_mean_residual_degree(0.7, 2, 4, rounds)
        for t in range(rounds + 1):
            assert measured[t].mean == pytest.approx(predicted[t], rel=0.05)

    def test_edge_survival_tracks_prediction(self, run):
        graph, result = run
        rounds = 7
        measured = measured_degree_distribution(graph, result, rounds)
        predicted = predicted_edge_survival(0.7, 2, 4, rounds)
        for t in range(rounds + 1):
            assert measured[t].edges_alive_fraction == pytest.approx(predicted[t], rel=0.05, abs=0.01)

    def test_survival_monotone_in_measurement(self, run):
        graph, result = run
        measured = measured_degree_distribution(graph, result, 10)
        fractions = [h.edges_alive_fraction for h in measured]
        assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_high_degrees_folded_into_last_bin(self, run):
        graph, result = run
        histogram = measured_degree_distribution(graph, result, 0, max_degree=3)[0]
        assert histogram.pmf.shape == (4,)
        assert histogram.pmf.sum() == pytest.approx(1.0)

    def test_empty_graph(self):
        graph = Hypergraph(10, np.empty((0, 3), dtype=np.int64))
        result = ParallelPeeler(2).peel(graph)
        histogram = measured_degree_distribution(graph, result, 2)
        assert all(h.mean == 0.0 for h in histogram)
        assert all(h.edges_alive_fraction == 0.0 for h in histogram)


class TestDistance:
    def test_identical_histograms(self):
        h = DegreeHistogram(0, np.array([0.5, 0.5]), mean=0.5, edges_alive_fraction=1.0)
        assert distribution_distance(h, h) == 0.0

    def test_disjoint_histograms(self):
        a = DegreeHistogram(0, np.array([1.0, 0.0]), mean=0.0, edges_alive_fraction=1.0)
        b = DegreeHistogram(0, np.array([0.0, 1.0]), mean=1.0, edges_alive_fraction=1.0)
        assert distribution_distance(a, b) == pytest.approx(1.0)

    def test_different_lengths(self):
        a = DegreeHistogram(0, np.array([1.0]), mean=0.0, edges_alive_fraction=1.0)
        b = DegreeHistogram(0, np.array([0.5, 0.5]), mean=0.5, edges_alive_fraction=1.0)
        assert distribution_distance(a, b) == pytest.approx(0.5)

    def test_measured_distribution_shifts_over_rounds(self):
        graph = random_hypergraph(20_000, 0.7, 4, seed=4)
        result = ParallelPeeler(2).peel(graph)
        measured = measured_degree_distribution(graph, result, 6)
        # Distribution keeps moving towards degree 0 as peeling progresses.
        assert distribution_distance(measured[0], measured[6]) > 0.2
        assert measured[6].pmf[0] > measured[0].pmf[0]
