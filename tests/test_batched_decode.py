"""Tests for batched lockstep IBLT recovery (decode_many / BatchedFlatDecoder).

The contract: ``IBLT.decode_many(tables)`` returns, for every table, exactly
what ``table.decode(decoder="flat")`` returns — recovered keys in the same
order, rounds, per-round statistics, conflict depths, scan work — while
running the whole batch through one lockstep pass per round.  The property
holds on mixed batches including failing and partially-decoding tables.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.set_reconciliation import SetReconciler, random_set_pair
from repro.apps.sparse_recovery import SparseRecovery, random_distinct_keys
from repro.iblt import IBLT, BatchedFlatDecoder, available_decoders, decode_many


def assert_same_decode(batched, solo):
    assert batched.success == solo.success
    assert batched.rounds == solo.rounds
    assert batched.subrounds == solo.subrounds
    assert batched.num_recovered == solo.num_recovered
    np.testing.assert_array_equal(batched.recovered, solo.recovered)
    np.testing.assert_array_equal(batched.removed, solo.removed)
    assert batched.decode.cells_scanned == solo.decode.cells_scanned
    assert batched.round_stats == solo.round_stats
    assert batched.conflict_depths == solo.conflict_depths


def _loaded_table(num_cells: int, load: float, *, r: int = 3, seed: int = 0) -> IBLT:
    table = IBLT(num_cells, r, seed=9)
    keys = random_distinct_keys(int(load * num_cells), seed=seed)
    if keys.size:
        table.insert(keys)
    return table


@pytest.fixture(scope="module")
def mixed_tables():
    """Decodable, partially-decodable, overloaded (failing) and empty tables."""
    tables = [
        _loaded_table(3000, 0.5, seed=1),
        _loaded_table(3000, 0.75, seed=2),
        _loaded_table(3000, 1.4, seed=3),   # far above threshold: fails
        _loaded_table(3000, 0.0, seed=4),   # empty: decodes in zero rounds
        _loaded_table(3000, 0.95, seed=5),
    ]
    # A signed difference digest with net deletions in the batch, too.
    a = IBLT(3000, 3, seed=9)
    b = IBLT(3000, 3, seed=9)
    a.insert(random_distinct_keys(400, seed=6))
    b.insert(random_distinct_keys(380, seed=7))
    tables.append(a.subtract(b))
    return tables


class TestDecodeManyMatchesPerTableFlat:
    def test_bitwise_parity_on_mixed_batch(self, mixed_tables):
        batch = decode_many(mixed_tables)
        assert len(batch) == len(mixed_tables)
        for table, got in zip(mixed_tables, batch):
            assert_same_decode(got, table.decode(decoder="flat"))

    def test_inputs_never_mutated(self, mixed_tables):
        before = [(t.count.copy(), t.key_sum.copy(), t.check_sum.copy()) for t in mixed_tables]
        decode_many(mixed_tables)
        for table, (count, key_sum, check_sum) in zip(mixed_tables, before):
            np.testing.assert_array_equal(table.count, count)
            np.testing.assert_array_equal(table.key_sum, key_sum)
            np.testing.assert_array_equal(table.check_sum, check_sum)

    def test_empty_batch(self):
        assert decode_many([]) == []

    def test_single_table_batch_matches_flat(self):
        table = _loaded_table(2001, 0.7, seed=11)
        assert_same_decode(decode_many([table])[0], table.decode(decoder="flat"))

    def test_unsigned_mode(self):
        tables = [_loaded_table(1500, 0.6, seed=s) for s in (21, 22)]
        batch = decode_many(tables, signed=False)
        for table, got in zip(tables, batch):
            assert_same_decode(got, table.decode(decoder="flat", signed=False))

    def test_flat_layout_tables(self):
        tables = []
        for s in (31, 32):
            table = IBLT(1000, 3, layout="flat", seed=4)
            table.insert(random_distinct_keys(500, seed=s))
            tables.append(table)
        batch = decode_many(tables)
        for table, got in zip(tables, batch):
            assert_same_decode(got, table.decode(decoder="flat"))

    def test_duplicate_keys_across_tables(self):
        # The same key in two tables must be recovered once per table —
        # dedup is per table, never global.
        keys = random_distinct_keys(600, seed=41)
        tables = []
        for _ in range(3):
            table = IBLT(1200, 3, seed=5)
            table.insert(keys)
            tables.append(table)
        for got in decode_many(tables):
            assert got.success
            np.testing.assert_array_equal(np.sort(got.recovered), np.sort(keys))

    def test_skewed_batch_with_straggler_matches_per_table_decode(self):
        # One near-threshold straggler among many quick tables: exercises
        # the mid-run compaction that drops closed tables out of the stack
        # while the straggler keeps decoding.
        tables = []
        for i in range(48):
            table = IBLT(1500, 3, seed=9)
            load = 0.8 if i == 20 else 0.3
            table.insert(random_distinct_keys(int(load * 1500), seed=300 + i))
            tables.append(table)
        batch = decode_many(tables)
        rounds = [got.rounds for got in batch]
        assert rounds[20] > max(r for i, r in enumerate(rounds) if i != 20)
        for table, got in zip(tables, batch):
            assert_same_decode(got, table.decode(decoder="flat"))

    @given(
        loads=st.lists(st.floats(min_value=0.0, max_value=1.3), min_size=1, max_size=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_random_batches_equal_per_table_decode(self, loads, seed):
        tables = [
            _loaded_table(300, load, seed=seed + i) for i, load in enumerate(loads)
        ]
        batch = decode_many(tables)
        for table, got in zip(tables, batch):
            assert_same_decode(got, table.decode(decoder="flat"))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_property_non_batched_decoders_loop_per_table(self, seed):
        tables = [_loaded_table(300, 0.6, seed=seed + i) for i in range(3)]
        for decoder in ("serial", "subtable"):
            batch = decode_many(tables, decoder=decoder)
            for table, got in zip(tables, batch):
                solo = table.decode(decoder=decoder)
                assert got.success == solo.success
                np.testing.assert_array_equal(
                    np.sort(got.recovered), np.sort(solo.recovered)
                )


class TestBatchedDecoderRegistry:
    def test_registered(self):
        assert "batched" in available_decoders()

    def test_single_table_decode_front_door(self):
        table = _loaded_table(1500, 0.7, seed=51)
        result = table.decode(decoder="batched")
        assert_same_decode(result, table.decode(decoder="flat"))

    def test_in_place_residual_matches_flat(self):
        overloaded = _loaded_table(900, 1.4, seed=52)
        via_batched = overloaded.copy()
        via_flat = overloaded.copy()
        res_b = BatchedFlatDecoder().decode(via_batched, in_place=True)
        res_f = via_flat.decode(decoder="flat", in_place=True)
        assert not res_b.success and not res_f.success
        np.testing.assert_array_equal(via_batched.count, via_flat.count)
        np.testing.assert_array_equal(via_batched.key_sum, via_flat.key_sum)
        np.testing.assert_array_equal(via_batched.check_sum, via_flat.check_sum)

    def test_mismatched_geometry_rejected(self):
        tables = [_loaded_table(900, 0.5, seed=1), _loaded_table(1200, 0.5, seed=2)]
        with pytest.raises(ValueError, match="sharing geometry"):
            decode_many(tables)

    def test_mismatched_seed_rejected(self):
        a = IBLT(900, 3, seed=1)
        b = IBLT(900, 3, seed=2)
        with pytest.raises(ValueError, match="hash seed"):
            decode_many([a, b])


class TestAppsUseBatchedDecoding:
    def test_sparse_recovery_recover_many(self):
        pipeline = SparseRecovery(1200, 3, seed=3)
        tables, truths = [], []
        for i, survivors in enumerate((300, 500, 800)):
            keys = random_distinct_keys(2000, seed=60 + i)
            surviving = keys[:survivors]
            tables.append(pipeline.build_table(keys, keys[survivors:]))
            truths.append(surviving)
        results = pipeline.recover_many(tables, truths)
        singles = [
            pipeline.recover(table, truth, decoder="flat")
            for table, truth in zip(tables, truths)
        ]
        for got, solo in zip(results, singles):
            assert got.success == solo.success
            assert got.rounds == solo.rounds
            assert got.fraction_recovered == solo.fraction_recovered

    def test_sparse_recovery_recover_many_length_mismatch(self):
        pipeline = SparseRecovery(600, 3, seed=3)
        with pytest.raises(ValueError, match="expected key sets"):
            pipeline.recover_many([], [np.empty(0, dtype=np.uint64)])

    def test_set_reconciliation_reconcile_many(self):
        reconciler = SetReconciler(600, 3, seed=12)
        pairs = [random_set_pair(800, 40, 30, seed=70 + i) for i in range(4)]
        many = reconciler.reconcile_many(pairs)
        singles = [reconciler.reconcile(a, b) for a, b in pairs]
        for got, solo in zip(many, singles):
            assert got.success and solo.success
            np.testing.assert_array_equal(np.sort(got.a_minus_b), np.sort(solo.a_minus_b))
            np.testing.assert_array_equal(np.sort(got.b_minus_a), np.sort(solo.b_minus_a))
