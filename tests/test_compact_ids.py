"""Compact columnar ids, arena buffer reuse and cross-trial CSR sharing.

Three properties of the compact-state work are pinned here:

1. **Bit-identity** — peeling with the compact 32-bit id layout produces
   results byte-for-byte equal to the wide ``int64`` layout, on every
   registered kernel backend, every engine schedule, the batched lockstep
   engine, the shm engine, and the awkward shapes (duplicate-endpoint
   edges, a CI-scale graph).  Result arrays are always widened back to
   ``int64`` so the golden fingerprints of ``test_kernel_parity.py`` keep
   hashing the same bytes.
2. **Dtype policy** — ``PeelState.from_graph`` picks ``uint32`` edge ids
   and signed ``int32`` degree/round columns whenever the graph fits
   (``Hypergraph.supports_compact_ids``), and ``wide_ids=True`` is the
   escape hatch back to ``int64``.
3. **Allocation behaviour** — a :class:`RoundArena` makes repeat trials
   reuse buffers (zero new arena allocations in steady state — the
   regression test for the per-round ``np.arange``/``zeros`` temporaries
   the batched engine used to allocate), and compact states share the
   graph's cached immutable columns instead of copying them per trial.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.engine import peel
from repro.hypergraph import (
    hypergraph_from_edges,
    partitioned_hypergraph,
    random_hypergraph,
)
from repro.kernels import (
    BatchedPeelState,
    KernelUnavailableError,
    PeelState,
    RoundArena,
    available_kernels,
    batched_peel,
    get_kernel,
)


def _kernel_or_skip(name):
    try:
        get_kernel(name)
    except KernelUnavailableError as exc:
        pytest.skip(f"kernel backend {name!r} unavailable: {exc}")
    return name


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


def _fingerprint(result) -> tuple:
    """Everything observable about a PeelingResult, hashed bit-exactly."""
    stats = tuple(
        (
            s.round_index,
            s.vertices_peeled,
            s.edges_peeled,
            s.vertices_remaining,
            s.edges_remaining,
            s.work,
            -1 if s.subtable is None else s.subtable,
        )
        for s in result.round_stats
    )
    return (
        result.num_rounds,
        result.num_subrounds,
        bool(result.success),
        result.total_work,
        _digest(result.vertex_peel_round),
        _digest(result.edge_peel_round),
        _digest(result.peel_order),
        stats,
    )


# --------------------------------------------------------------------- #
# dtype policy
# --------------------------------------------------------------------- #
def test_from_graph_selects_compact_dtypes_by_default():
    graph = random_hypergraph(2000, 0.7, 3, seed=1)
    assert graph.supports_compact_ids
    state = PeelState.from_graph(graph, attach_incidence=True)
    assert state.edges.dtype == np.uint32
    assert state.degrees.dtype == np.int32
    assert state.vertex_peel_round.dtype == np.int32
    assert state.edge_peel_round.dtype == np.int32
    assert state.incidence_ptr.dtype == np.int32
    assert state.incidence_edges.dtype == np.uint32


def test_wide_ids_escape_hatch_keeps_int64():
    graph = random_hypergraph(2000, 0.7, 3, seed=1)
    state = PeelState.from_graph(graph, wide_ids=True, attach_incidence=True)
    for arr in (
        state.edges,
        state.degrees,
        state.vertex_peel_round,
        state.edge_peel_round,
        state.incidence_ptr,
        state.incidence_edges,
    ):
        assert arr.dtype == np.int64


@pytest.mark.parametrize("wide_ids", [False, True], ids=["compact", "wide"])
def test_result_peel_rounds_always_widen_to_int64(wide_ids):
    graph = random_hypergraph(1500, 0.7, 3, seed=2)
    result = peel(graph, "parallel", k=2, wide_ids=wide_ids)
    assert result.vertex_peel_round.dtype == np.int64
    assert result.edge_peel_round.dtype == np.int64
    # The result arrays must be owned copies, never views of reusable
    # arena scratch: a later peel on the same thread must not rewrite them.
    before = result.vertex_peel_round.copy()
    peel(random_hypergraph(1500, 0.8, 3, seed=3), "parallel", k=2)
    assert np.array_equal(result.vertex_peel_round, before)


def test_degrees_into_fills_any_compatible_dtype():
    graph = random_hypergraph(800, 0.7, 3, seed=4)
    out64 = np.empty(graph.num_vertices, dtype=np.int64)
    out32 = np.empty(graph.num_vertices, dtype=np.int32)
    assert graph.degrees_into(out64) is out64
    graph.degrees_into(out32)
    assert np.array_equal(out64, graph.degrees())
    assert np.array_equal(out32, graph.degrees())
    with pytest.raises(ValueError):
        graph.degrees_into(np.empty(graph.num_vertices + 1, dtype=np.int64))


# --------------------------------------------------------------------- #
# compact vs wide bit-identity, every kernel x every engine schedule
# --------------------------------------------------------------------- #
ENGINE_CASES = [
    ("parallel", {"update": "full"}),
    ("parallel", {"update": "frontier"}),
    ("sequential", {}),
    ("subtable", {}),
]


@pytest.mark.parametrize("kernel", available_kernels())
@pytest.mark.parametrize(
    "engine,opts", ENGINE_CASES, ids=[f"{e}-{o.get('update', 'na')}" for e, o in ENGINE_CASES]
)
def test_compact_and_wide_runs_are_bit_identical(kernel, engine, opts):
    kernel = _kernel_or_skip(kernel)
    if engine == "subtable":
        graph = partitioned_hypergraph(3000, 0.75, 3, seed=22)
    else:
        graph = random_hypergraph(3000, 0.8, 3, seed=13)
    wide = peel(graph, engine, k=2, kernel=kernel, wide_ids=True, **opts)
    compact = peel(graph, engine, k=2, kernel=kernel, **opts)
    assert _fingerprint(compact) == _fingerprint(wide)


def _duplicate_endpoint_graph():
    rng = np.random.default_rng(97)
    n = 1200
    edges = rng.integers(0, n, size=(900, 3), dtype=np.int64)
    edges[::5, 1] = edges[::5, 0]
    edges[::11, 1] = edges[::11, 0]
    edges[::11, 2] = edges[::11, 0]
    return hypergraph_from_edges(n, edges, allow_duplicate_vertices=True)


@pytest.mark.parametrize("kernel", available_kernels())
def test_duplicate_endpoint_edges_compact_matches_wide(kernel):
    kernel = _kernel_or_skip(kernel)
    graph = _duplicate_endpoint_graph()
    wide = peel(graph, "parallel", k=2, kernel=kernel, wide_ids=True)
    compact = peel(graph, "parallel", k=2, kernel=kernel)
    assert _fingerprint(compact) == _fingerprint(wide)


@pytest.mark.parametrize("kernel", available_kernels())
def test_large_graph_compact_matches_wide(kernel):
    kernel = _kernel_or_skip(kernel)
    graph = random_hypergraph(100_000, 0.7, 3, seed=5)
    wide = peel(graph, "parallel", k=2, kernel=kernel, wide_ids=True)
    compact = peel(graph, "parallel", k=2, kernel=kernel)
    assert _fingerprint(compact) == _fingerprint(wide)


@pytest.mark.parametrize("kernel", available_kernels())
def test_batched_compact_matches_wide(kernel):
    kernel = get_kernel(_kernel_or_skip(kernel))
    graphs = [random_hypergraph(700, 0.75, 3, seed=40 + i) for i in range(4)]
    wide = batched_peel(kernel, graphs, 2, wide_ids=True)
    compact = batched_peel(kernel, graphs, 2)
    for w, c in zip(wide, compact):
        assert _fingerprint(c) == _fingerprint(w)


@pytest.mark.parametrize("num_workers", [1, 2])
def test_shm_compact_matches_wide(num_workers):
    graph = random_hypergraph(3000, 0.8, 3, seed=13)
    wide = peel(
        graph,
        "shm-parallel",
        k=2,
        num_workers=num_workers,
        barrier_timeout=30.0,
        wide_ids=True,
    )
    compact = peel(
        graph, "shm-parallel", k=2, num_workers=num_workers, barrier_timeout=30.0
    )
    assert _fingerprint(compact) == _fingerprint(wide)


# --------------------------------------------------------------------- #
# cross-trial CSR sharing
# --------------------------------------------------------------------- #
def test_compact_states_share_the_graphs_cached_columns():
    graph = random_hypergraph(2000, 0.7, 3, seed=6)
    s1 = PeelState.from_graph(graph, attach_incidence=True)
    s2 = PeelState.from_graph(graph, attach_incidence=True)
    # The immutable columns are one cached copy on the graph, not one per
    # trial; only the mutable working arrays are per-state.
    assert np.shares_memory(s1.edges, s2.edges)
    assert np.shares_memory(s1.incidence_ptr, s2.incidence_ptr)
    assert np.shares_memory(s1.incidence_edges, s2.incidence_edges)
    assert not np.shares_memory(s1.degrees, s2.degrees)
    assert not np.shares_memory(s1.vertex_peel_round, s2.vertex_peel_round)


def test_wide_states_share_the_graphs_arrays_too():
    graph = random_hypergraph(2000, 0.7, 3, seed=6)
    s1 = PeelState.from_graph(graph, wide_ids=True, attach_incidence=True)
    s2 = PeelState.from_graph(graph, wide_ids=True, attach_incidence=True)
    assert np.shares_memory(s1.edges, s2.edges)
    assert np.shares_memory(s1.incidence_edges, s2.incidence_edges)


def test_compact_columns_are_read_only_views():
    graph = random_hypergraph(500, 0.7, 3, seed=7)
    state = PeelState.from_graph(graph, attach_incidence=True)
    with pytest.raises((ValueError, RuntimeError)):
        state.edges[0, 0] = 1


# --------------------------------------------------------------------- #
# arena buffer reuse
# --------------------------------------------------------------------- #
def test_arena_take_reuses_and_grows():
    arena = RoundArena()
    a = arena.take("x", 100, np.int64)
    assert arena.allocations == 1
    b = arena.take("x", 80, np.int64)
    assert np.shares_memory(a, b)
    assert arena.allocations == 1  # smaller request: same buffer
    c = arena.take("x", 150, np.int64)
    assert arena.allocations == 2  # grow (doubling) counts as one allocation
    assert c.size == 150
    # Same name, different dtype: a distinct buffer, no reinterpretation.
    d = arena.take("x", 100, np.int32)
    assert d.dtype == np.int32
    assert arena.allocations == 3


def test_arena_flag_contract_all_false_in_all_false_out():
    arena = RoundArena()
    flag = arena.flag("f", 64)
    assert not flag.any()
    flag[[3, 9]] = True
    flag[[3, 9]] = False  # caller restores before the next borrow
    again = arena.flag("f", 64)
    assert np.shares_memory(flag, again)
    assert not again.any()


def test_arena_arange_is_a_cached_identity():
    arena = RoundArena()
    idx = arena.arange("i", 10)
    assert np.array_equal(idx, np.arange(10))
    allocations = arena.allocations
    longer = arena.arange("i", 10)
    assert np.shares_memory(idx, longer)
    assert arena.allocations == allocations


def test_batched_stacking_reuses_arena_buffers_across_same_shape_batches():
    arena = RoundArena()
    graphs = [random_hypergraph(500, 0.7, 3, seed=50 + i) for i in range(4)]
    b1 = BatchedPeelState.from_graphs(graphs, arena=arena)
    after_first = arena.allocations
    assert after_first > 0
    b2 = BatchedPeelState.from_graphs(graphs, arena=arena)
    assert arena.allocations == after_first
    assert np.shares_memory(b1.state.edges, b2.state.edges)
    assert np.shares_memory(b1.incidence_ptr, b2.incidence_ptr)


def test_batched_peel_steady_state_allocates_zero_new_arrays():
    """Regression: the lockstep loop used to allocate an ``arange(total_v)``
    and fresh ``zeros`` flag arrays every round; with an arena, a repeat
    sweep over the same shape must allocate nothing new at all."""
    kernel = get_kernel("numpy")
    graphs = [random_hypergraph(400, 0.75, 3, seed=60 + i) for i in range(8)]
    arena = RoundArena()
    first = batched_peel(kernel, graphs, 2, arena=arena)
    warm = arena.allocations
    assert warm > 0
    second = batched_peel(kernel, graphs, 2, arena=arena)
    assert arena.allocations == warm, "steady-state trial allocated new arena buffers"
    for a, b in zip(first, second):
        assert _fingerprint(a) == _fingerprint(b)


def test_engine_repeat_trials_reuse_the_thread_local_arena():
    graph = random_hypergraph(2000, 0.75, 3, seed=8)
    from repro.kernels import default_arena

    peel(graph, "parallel", k=2)  # warm the thread-local arena
    arena = default_arena()
    warm = arena.allocations
    result = peel(graph, "parallel", k=2)
    assert arena.allocations == warm, "steady-state peel allocated new arena buffers"
    solo = peel(graph, "parallel", k=2, wide_ids=True)
    assert _fingerprint(result) == _fingerprint(solo)


def test_memory_bench_trial_records_compact_savings():
    """The bench ``memory`` section must show the acceptance numbers: the
    compact layout's fully-attached working set is well under the wide one
    (asymptotically ~2x; >= 1.5x is the gate) and a warm peel allocates
    zero new arena buffers in steady state."""
    from repro.bench import _bench_memory_trial

    records = {}
    for mode in ("compact", "wide"):
        records[mode] = _bench_memory_trial(
            {"section": "memory", "mode": mode, "kernel": "numpy",
             "n": 20_000, "c": 0.7, "r": 4, "k": 2, "seed": 1, "repeats": 1},
            np.random.default_rng(0),
        )
    ratio = records["wide"]["state_bytes"] / records["compact"]["state_bytes"]
    assert ratio >= 1.5
    for record in records.values():
        assert record["arena_allocations_steady"] == 0
        assert record["steady_peel_traced_bytes"] > 0
        assert record["seconds"] > 0.0


def test_compact_first_access_never_materializes_the_wide_csr():
    """Regression: the compact cache used to be narrowed from a freshly
    built int64 CSR, leaving *both* layouts resident — ~1.5x the pre-compact
    per-graph footprint and a measurable cache-pressure slowdown on large
    batched sweeps.  A compact-only workload must build the 32-bit CSR
    directly, and both build orders must agree bit-for-bit."""
    g1 = random_hypergraph(3000, 0.7, 4, seed=7)
    g2 = random_hypergraph(3000, 0.7, 4, seed=7)
    c1 = (g1.compact_edges, g1.compact_incidence_ptr,
          g1.compact_incidence_edges, g1.compact_degrees_view)
    assert g1._incidence_edges is None, "compact-first access built the wide CSR"
    _ = g2.incidence_ptr  # wide first, compact narrowed from it
    c2 = (g2.compact_edges, g2.compact_incidence_ptr,
          g2.compact_incidence_edges, g2.compact_degrees_view)
    for direct, narrowed in zip(c1, c2):
        assert direct.dtype == narrowed.dtype
        assert np.array_equal(direct, narrowed)
    # The wide CSR stays available on demand and matches the other order.
    assert np.array_equal(g1.incidence_edges, g2.incidence_edges)
    assert np.array_equal(g1.degrees_view, g2.degrees_view)
