"""Seed-for-seed golden pins for the experiment harness.

These rows were captured from the pre-sweep-refactor implementations of
``run_table1``/``run_table2``/``run_table34``/``run_table5``/``run_table6``
and ``run_figure1`` (commit a4b1f37) and pin the refactored sweep-based
implementations to the exact same outputs: same per-cell seed derivation,
same trial RNG spawning, same aggregation.  Any change to seed plumbing or
trial scheduling that alters results — however plausible — must show up
here as an explicit golden update.

Wall-clock fields (``measured_*_seconds`` of Tables 3/4) are not pinned.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import (
    run_figure1,
    run_table1,
    run_table1_cell,
    run_table2,
    run_table34,
    run_table5,
    run_table6,
)

GOLDEN = {'table1': [{'n': 2000,
             'c': 0.7,
             'r': 4,
             'k': 2,
             'trials': 3,
             'failed': 0,
             'avg_rounds': 11.333333333333334,
             'std_rounds': 0.4714045207910317},
            {'n': 4000,
             'c': 0.7,
             'r': 4,
             'k': 2,
             'trials': 3,
             'failed': 0,
             'avg_rounds': 12.333333333333334,
             'std_rounds': 0.4714045207910317},
            {'n': 2000,
             'c': 0.85,
             'r': 4,
             'k': 2,
             'trials': 3,
             'failed': 3,
             'avg_rounds': 9.0,
             'std_rounds': 0.0},
            {'n': 4000,
             'c': 0.85,
             'r': 4,
             'k': 2,
             'trials': 3,
             'failed': 3,
             'avg_rounds': 9.666666666666666,
             'std_rounds': 0.4714045207910317}],
 'table1_cell': [{'n': 3000,
                  'c': 0.7,
                  'r': 4,
                  'k': 2,
                  'trials': 4,
                  'failed': 0,
                  'avg_rounds': 12.5,
                  'std_rounds': 0.5}],
 'table2': [{'t': 1, 'prediction': 7689.217620241718, 'experiment': 7680.0},
            {'t': 2, 'prediction': 6736.468501282305, 'experiment': 6719.333333333333},
            {'t': 3, 'prediction': 6080.756783539938, 'experiment': 6051.666666666667},
            {'t': 4, 'prediction': 5530.637311435456, 'experiment': 5508.333333333333},
            {'t': 5, 'prediction': 5004.663196903981, 'experiment': 4977.666666666667},
            {'t': 6, 'prediction': 4448.279087004264, 'experiment': 4425.333333333333},
            {'t': 7, 'prediction': 3808.725856482162, 'experiment': 3798.0},
            {'t': 8, 'prediction': 3025.3119971619512, 'experiment': 3017.0}],
 'table34': [{'r': 3,
              'load': 0.5,
              'num_cells': 6000,
              'fraction_recovered': 1.0,
              'parallel_recovery_time': 1257.0,
              'serial_recovery_time': 18000.0,
              'parallel_insert_time': 254.0,
              'serial_insert_time': 12000.0,
              'rounds': 3},
             {'r': 3,
              'load': 0.75,
              'num_cells': 6000,
              'fraction_recovered': 1.0,
              'parallel_recovery_time': 2816.0,
              'serial_recovery_time': 24000.0,
              'parallel_insert_time': 333.0,
              'serial_insert_time': 18000.0,
              'rounds': 8}],
 'table5': [{'n': 2000,
             'c': 0.7,
             'r': 4,
             'k': 2,
             'trials': 3,
             'failed': 0,
             'avg_subrounds': 26.666666666666668,
             'avg_rounds': 7.0},
            {'n': 4000,
             'c': 0.7,
             'r': 4,
             'k': 2,
             'trials': 3,
             'failed': 0,
             'avg_subrounds': 26.0,
             'avg_rounds': 7.0}],
 'table6': [{'round_index': 1,
             'subtable': 1,
             'prediction': 7537.843524048343,
             'experiment': 7526.666666666667},
            {'round_index': 1,
             'subtable': 2,
             'prediction': 7014.452205697312,
             'experiment': 7020.0},
            {'round_index': 1,
             'subtable': 3,
             'prediction': 6414.842524584691,
             'experiment': 6414.0},
            {'round_index': 1,
             'subtable': 4,
             'prediction': 5718.998673809819,
             'experiment': 5716.0},
            {'round_index': 2,
             'subtable': 1,
             'prediction': 5430.136402719592,
             'experiment': 5433.666666666667},
            {'round_index': 2,
             'subtable': 2,
             'prediction': 5144.56140280231,
             'experiment': 5123.0},
            {'round_index': 2,
             'subtable': 3,
             'prediction': 4877.487728253801,
             'experiment': 4856.0},
            {'round_index': 2,
             'subtable': 4,
             'prediction': 4655.296955417863,
             'experiment': 4626.666666666667},
            {'round_index': 3,
             'subtable': 1,
             'prediction': 4435.215945429829,
             'experiment': 4407.0},
            {'round_index': 3,
             'subtable': 2,
             'prediction': 4218.680900141508,
             'experiment': 4198.0},
            {'round_index': 3,
             'subtable': 3,
             'prediction': 4003.7498738703744,
             'experiment': 3981.6666666666665},
            {'round_index': 3,
             'subtable': 4,
             'prediction': 3779.756086926225,
             'experiment': 3755.0},
            {'round_index': 4,
             'subtable': 1,
             'prediction': 3542.99075850342,
             'experiment': 3515.3333333333335},
            {'round_index': 4,
             'subtable': 2,
             'prediction': 3287.6612657294595,
             'experiment': 3250.0},
            {'round_index': 4,
             'subtable': 3,
             'prediction': 3006.1637261769,
             'experiment': 2966.3333333333335},
            {'round_index': 4,
             'subtable': 4,
             'prediction': 2691.6620582593214,
             'experiment': 2647.0}],
 'figure1': {'0.75': {'nu': 0.022279839802508472,
                      'beta_first8': [3.0,
                                      3.0,
                                      2.5738549248669615,
                                      2.364815141944881,
                                      2.231278488709511,
                                      2.133560560307764,
                                      2.0554832920904307,
                                      1.9889527856944191],
                      'beta_len': 401,
                      'rounds_to_extinction': 25,
                      'plateau_rounds': 13},
             '0.77': {'nu': 0.0022798398025084543,
                      'beta_first8': [3.08,
                                      3.08,
                                      2.674554689815754,
                                      2.485920259038985,
                                      2.373039806634538,
                                      2.296622256616198,
                                      2.240846816529222,
                                      2.197992880657965],
                      'beta_len': 401,
                      'rounds_to_extinction': 75,
                      'plateau_rounds': 62}}}


def _assert_rows_match(rows, expected):
    got = [dataclasses.asdict(row) for row in rows]
    assert len(got) == len(expected)
    for actual, want in zip(got, expected):
        for key, value in want.items():
            if isinstance(value, float):
                assert actual[key] == pytest.approx(value, rel=1e-12, abs=1e-12), key
            else:
                assert actual[key] == value, key


class TestGoldenRows:
    def test_table1(self):
        rows = run_table1(sizes=(2000, 4000), densities=(0.7, 0.85), trials=3, seed=3)
        _assert_rows_match(rows, GOLDEN["table1"])

    def test_table1_cell(self):
        row = run_table1_cell(3000, 0.7, trials=4, seed=11)
        _assert_rows_match([row], GOLDEN["table1_cell"])

    def test_table2(self):
        rows = run_table2(n=10_000, c=0.7, rounds=8, trials=3, seed=7)
        _assert_rows_match(rows, GOLDEN["table2"])

    def test_table34(self):
        rows = run_table34(3, loads=(0.5, 0.75), num_cells=6000, seed=4)
        _assert_rows_match(rows, GOLDEN["table34"])

    def test_table5(self):
        rows = run_table5(sizes=(2000, 4000), densities=(0.7,), trials=3, seed=2)
        _assert_rows_match(rows, GOLDEN["table5"])

    def test_table6(self):
        rows = run_table6(n=8_000, c=0.7, rounds=4, trials=3, seed=5)
        _assert_rows_match(rows, GOLDEN["table6"])

    def test_figure1(self):
        series = run_figure1((0.75, 0.77), k=2, r=4, max_rounds=400)
        for c_str, want in GOLDEN["figure1"].items():
            s = series[float(c_str)]
            assert s.nu == pytest.approx(want["nu"], rel=1e-12)
            assert s.beta[:8].tolist() == pytest.approx(want["beta_first8"], rel=1e-12)
            assert int(s.beta.size) == want["beta_len"]
            assert s.rounds_to_extinction == want["rounds_to_extinction"]
            assert s.gap.plateau_rounds == want["plateau_rounds"]
