"""Tests for the SubtablePeeler (Appendix B variant)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParallelPeeler, SubtablePeeler, peel_to_kcore
from repro.hypergraph import Hypergraph, kcore, partitioned_hypergraph


class TestValidation:
    def test_requires_partitioned_graph(self, tiny_graph):
        with pytest.raises(ValueError, match="partitioned"):
            SubtablePeeler(2).peel(tiny_graph)

    def test_partition_count_must_match_edge_size(self):
        # 2 partitions but 3-vertex edges.
        partition = np.array([0, 0, 1, 1])
        graph = Hypergraph(
            4, [[0, 1, 2]], vertex_partition=partition, num_partitions=2
        )
        with pytest.raises(ValueError, match="subtables"):
            SubtablePeeler(2).peel(graph)

    def test_invalid_k(self):
        with pytest.raises((ValueError, TypeError)):
            SubtablePeeler(0)


class TestCorrectness:
    def test_same_core_as_kcore(self, small_partitioned):
        result = SubtablePeeler(2).peel(small_partitioned)
        reference = kcore(small_partitioned, 2)
        assert np.array_equal(result.core_edge_mask, reference.edge_mask)
        assert result.success == reference.is_empty

    def test_same_core_as_parallel_peeler(self, small_partitioned):
        sub = SubtablePeeler(2).peel(small_partitioned)
        par = ParallelPeeler(2).peel(small_partitioned)
        assert np.array_equal(sub.core_edge_mask, par.core_edge_mask)

    @pytest.mark.parametrize("c", [0.5, 0.7, 0.9])
    def test_core_matches_at_various_densities(self, c):
        graph = partitioned_hypergraph(2000, c, 4, seed=int(c * 100))
        sub = SubtablePeeler(2).peel(graph)
        ref = kcore(graph, 2)
        assert np.array_equal(sub.core_edge_mask, ref.edge_mask)

    def test_k3(self):
        graph = partitioned_hypergraph(3000, 1.3, 3, seed=5)
        sub = SubtablePeeler(3).peel(graph)
        ref = kcore(graph, 3)
        assert np.array_equal(sub.core_edge_mask, ref.edge_mask)

    def test_empty_partitioned_graph(self):
        graph = partitioned_hypergraph(40, 0.5, 4, num_edges=0, seed=1)
        result = SubtablePeeler(2).peel(graph)
        assert result.success
        # All vertices are isolated; the first round's subrounds remove them.
        assert result.num_rounds <= 1


class TestSubroundAccounting:
    def test_subrounds_at_most_r_times_rounds(self, small_partitioned):
        result = SubtablePeeler(2).peel(small_partitioned)
        r = small_partitioned.num_partitions
        assert result.num_subrounds <= r * result.num_rounds
        assert result.num_subrounds >= result.num_rounds

    def test_subrounds_fewer_than_r_times_parallel_rounds(self):
        """The headline of Appendix B: subrounds ≪ r × plain parallel rounds."""
        graph = partitioned_hypergraph(40_000, 0.7, 4, seed=9)
        sub = SubtablePeeler(2).peel(graph)
        par = ParallelPeeler(2).peel(graph)
        assert sub.success and par.success
        # Paper: ratio of subrounds to plain rounds ≈ 2, certainly below r=4.
        assert sub.num_subrounds < 4 * par.num_rounds
        assert sub.num_subrounds <= 3 * par.num_rounds

    def test_subtable_rounds_not_more_than_parallel_rounds(self):
        # Each subtable round peels at least as much as a plain round, so the
        # number of full rounds can only be smaller or equal.
        graph = partitioned_hypergraph(20_000, 0.7, 4, seed=4)
        sub = SubtablePeeler(2).peel(graph)
        par = ParallelPeeler(2).peel(graph)
        assert sub.num_rounds <= par.num_rounds

    def test_stats_have_subtable_indices(self, small_partitioned):
        result = SubtablePeeler(2).peel(small_partitioned)
        assert all(s.subtable is not None for s in result.round_stats)
        assert {s.subtable for s in result.round_stats} <= set(range(4))

    def test_stats_survivors_monotone(self, small_partitioned):
        result = SubtablePeeler(2).peel(small_partitioned)
        survivors = [s.vertices_remaining for s in result.round_stats]
        assert all(a >= b for a, b in zip(survivors, survivors[1:]))

    def test_stats_length_matches_subrounds(self, small_partitioned):
        result = SubtablePeeler(2).peel(small_partitioned)
        assert len(result.round_stats) == result.num_subrounds

    def test_track_stats_false(self, small_partitioned):
        result = SubtablePeeler(2, track_stats=False).peel(small_partitioned)
        assert result.round_stats == []
        assert result.num_subrounds > 0

    def test_convenience_api(self, small_partitioned):
        result = peel_to_kcore(small_partitioned, 2, mode="subtable")
        assert result.mode == "subtable"
