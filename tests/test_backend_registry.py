"""Tests for the execution-backend registry and the process-pool backend."""

from __future__ import annotations

import functools
import gc
import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.runner import run_trials
from repro.parallel.backend import (
    BatchedBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    _consume_future_exception,
    _stream_completions,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)


def _square(x: int) -> int:
    # Module-level so the process pool can pickle it.
    return x * x


def _square_or_boom(x: int) -> int:
    if x % 3 == 2:
        raise ValueError(f"boom on {x}")
    return x * x


def _slow_square(x: int) -> int:
    time.sleep(0.05)
    return x * x


def _rng_draw(rng) -> float:
    return float(rng.random())


class TestRegistry:
    def test_builtin_backends(self):
        assert set(available_backends()) == {"serial", "batched", "threads", "processes"}

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("batched"), BatchedBackend)
        assert isinstance(get_backend("threads"), ThreadPoolBackend)
        assert isinstance(get_backend("processes"), ProcessPoolBackend)

    def test_batched_backend_maps_opaque_callables_serially(self):
        # The marker backend degrades to serial execution for work it
        # cannot fuse, so it is safe anywhere a backend name is accepted.
        with get_backend("batched") as backend:
            assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_get_backend_passes_instances_through(self):
        instance = SerialBackend()
        assert get_backend(instance) is instance

    def test_max_workers_forwarded_to_pools(self):
        with get_backend("threads", max_workers=2) as backend:
            assert backend.max_workers == 2
        with get_backend("processes", max_workers=2) as backend:
            assert backend.max_workers == 2

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'.*'processes'"):
            get_backend("gpu")

    def test_register_backend(self):
        class LoudSerial(SerialBackend):
            name = "loud"

        register_backend("loud", LoudSerial)
        try:
            assert "loud" in available_backends()
            assert isinstance(get_backend("loud"), LoudSerial)
            with pytest.raises(ValueError, match="already registered"):
                register_backend("loud", SerialBackend)
        finally:
            unregister_backend("loud")
        assert "loud" not in available_backends()

    def test_max_workers_forwarded_to_registered_pool_backends(self):
        # Third-party backends whose factory takes max_workers get the
        # caller's worker count, same as the built-in pools.
        class CustomPool(ThreadPoolBackend):
            name = "custom-pool"

        register_backend("custom-pool", CustomPool)
        try:
            with get_backend("custom-pool", max_workers=3) as backend:
                assert backend.max_workers == 3
        finally:
            unregister_backend("custom-pool")

    def test_register_rejects_bad_arguments(self):
        with pytest.raises(TypeError):
            register_backend("", SerialBackend)
        with pytest.raises(TypeError):
            register_backend("thing", "not-callable")


class TestBackendsAgree:
    @pytest.mark.parametrize("name", sorted(available_backends()))
    def test_map_preserves_order(self, name):
        items = list(range(12))
        with get_backend(name, max_workers=2) as backend:
            assert backend.map(_square, items) == [x * x for x in items]

    def test_close_is_idempotent(self):
        for name in available_backends():
            backend = get_backend(name, max_workers=2)
            backend.map(_square, [1, 2])
            backend.close()
            backend.close()

    def test_context_manager_closes(self):
        with ProcessPoolBackend(max_workers=1) as backend:
            assert backend.map(_square, [3]) == [9]
        assert backend._executor is None


class TestRunTrialsBackendNames:
    @pytest.mark.parametrize("name", sorted(available_backends()))
    def test_run_trials_accepts_names(self, name):
        values = run_trials(_rng_draw, 6, seed=42, backend=name, max_workers=2)
        assert values == run_trials(_rng_draw, 6, seed=42)

    def test_run_trials_leaves_instances_open(self):
        backend = ThreadPoolBackend(max_workers=2)
        run_trials(_rng_draw, 3, seed=1, backend=backend)
        assert backend._executor is not None  # not closed by run_trials
        backend.close()


class TestThreadPoolDefaults:
    def test_default_tracks_host_cores(self):
        # Regression: the thread pool used to hardcode max_workers=4 while
        # the process pool followed the host; both now track os.cpu_count().
        assert ThreadPoolBackend().max_workers == (os.cpu_count() or 1)
        assert ThreadPoolBackend().max_workers == ProcessPoolBackend().max_workers

    def test_explicit_worker_count_still_honoured(self):
        assert ThreadPoolBackend(max_workers=3).max_workers == 3

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ThreadPoolBackend(max_workers=0)


class _RecordingExecutor:
    """Pass-through executor that remembers every future it handed out."""

    def __init__(self, inner):
        self.inner = inner
        self.futures = []

    def submit(self, work, *args):
        future = self.inner.submit(work, *args)
        self.futures.append(future)
        return future


class TestStreamCompletionExceptionHygiene:
    """Regression: abandoned futures must never hold unretrieved exceptions."""

    def test_exception_consumer_runs_on_every_future(self, monkeypatch):
        # The consumer fires exactly once per submitted future — including
        # the ones cancelled after the first failure aborts the iteration.
        import repro.parallel.backend as backend_mod

        seen = []
        real = backend_mod._consume_future_exception
        monkeypatch.setattr(
            backend_mod, "_consume_future_exception",
            lambda future: (seen.append(future), real(future))[-1],
        )
        with ThreadPoolExecutor(max_workers=1) as inner:
            recorder = _RecordingExecutor(inner)
            with pytest.raises(ValueError, match="boom"):
                list(_stream_completions(recorder, _square_or_boom, list(range(9))))
        # Executor shutdown has drained the queue: every future — completed,
        # failed or cancelled — has notified its callbacks by now.
        assert len(recorder.futures) == 9
        assert set(seen) == set(recorder.futures)

    def test_worker_failure_leaves_no_unretrieved_exceptions(self):
        # Futures that completed with an exception no consumer pulled (the
        # iteration stopped at the first failure) have it retrieved by the
        # done-callback; a full GC pass must not surface anything.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with ThreadPoolBackend(max_workers=2) as backend:
                with pytest.raises(ValueError, match="boom"):
                    for _ in backend.imap_unordered(_square_or_boom, list(range(12))):
                        pass
            gc.collect()

    def test_early_close_cancels_pending_futures(self):
        with ThreadPoolExecutor(max_workers=1) as inner:
            recorder = _RecordingExecutor(inner)
            stream = _stream_completions(recorder, _slow_square, list(range(20)))
            index, value = next(stream)
            assert value == index**2
            stream.close()  # consumer abandons the iterator mid-stream
            # With one worker, items queued behind the in-flight one are
            # cancelled the moment the generator is closed.
            assert any(future.cancelled() for future in recorder.futures)

    def test_early_close_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with ThreadPoolBackend(max_workers=2) as backend:
                iterator = backend.imap_unordered(_square_or_boom, [0, 1, 3, 4, 6, 7])
                next(iterator)
                iterator.close()
            gc.collect()

    def test_consumer_skips_cancelled_futures(self):
        with ThreadPoolExecutor(max_workers=1) as executor:
            blocker = executor.submit(time.sleep, 0.2)
            cancelled = executor.submit(_square, 3)
            assert cancelled.cancel()
            _consume_future_exception(cancelled)  # must not raise CancelledError
            blocker.result()


class TestProcessPool:
    def test_defaults_to_cpu_count(self):
        assert ProcessPoolBackend().max_workers >= 1

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)

    def test_partial_work_functions(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            add = functools.partial(int.__add__, 10)
            assert backend.map(add, [1, 2, 3]) == [11, 12, 13]

    def test_is_execution_backend(self):
        assert issubclass(ProcessPoolBackend, ExecutionBackend)
